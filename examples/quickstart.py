"""Quickstart: the four resilience programming models in ~80 lines.

Runs a miniature tour of the toolkit:

1. SkP  -- detect an injected bit flip in a GMRES solve with cheap checks.
2. RBSP -- overlap a global reduction with local work on the simulated runtime.
3. LFLR -- kill a rank mid-way through a distributed heat solve and recover
           locally from the neighbour-mirrored persistent state.
4. SRP  -- solve with FT-GMRES: unreliable (fault-injected) inner solves
           wrapped in a reliable outer iteration.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.reliability import FailurePlan
from repro.reliability.bitflip import flip_bit_array
from repro.ftgmres import ft_gmres
from repro.lflr import run_lflr_heat
from repro.linalg import poisson_2d
from repro.machine import MachineModel
from repro.rbsp import overlapped_allreduce
from repro.simmpi import run_spmd
from repro.skeptical import sdc_detecting_gmres


def demo_skeptical():
    print("== SkP: skeptical GMRES detects an injected exponent-bit flip ==")
    matrix = poisson_2d(16)
    b = np.random.default_rng(0).standard_normal(matrix.n_rows)

    def flip_once(state, done=[False]):
        if not done[0] and state.total_iteration == 6:
            flip_bit_array(np.asarray(state.basis[state.inner + 1]), 5, 61, inplace=True)
            done[0] = True

    result = sdc_detecting_gmres(matrix, b, tol=1e-8, fault_hook=flip_once)
    residual = np.linalg.norm(matrix.matvec(np.asarray(result.x)) - b) / np.linalg.norm(b)
    print(f"  converged={result.converged}  detections={result.detected_faults}  "
          f"relative residual={residual:.2e}\n")


def demo_rbsp():
    print("== RBSP: overlapping an allreduce with local work ==")

    def program(comm):
        _, _, report = overlapped_allreduce(
            comm, float(comm.rank), work=lambda: comm.compute(5e6)
        )
        return report.exposed_latency

    exposed = run_spmd(4, program, machine=MachineModel(latency=5e-6))
    print(f"  exposed collective latency per rank: {exposed} (fully hidden if 0)\n")


def demo_lflr():
    print("== LFLR: losing a rank mid-run and recovering locally ==")
    machine = MachineModel(flop_rate=1e9, latency=1e-7, bandwidth=1e9,
                           local_recovery_overhead=1e-4)
    clean = run_lflr_heat(4, n_global=64, n_steps=40, machine=machine)
    plan = FailurePlan.single(clean.virtual_time * 0.5, 2)
    faulty = run_lflr_heat(4, n_global=64, n_steps=40, machine=machine,
                           failure_plan=plan)
    match = np.allclose(faulty.field, clean.field, atol=1e-13)
    print(f"  recoveries={faulty.n_recoveries}  rolled-back steps={faulty.steps_rolled_back}")
    print(f"  final field identical to the failure-free run: {match}\n")


def demo_srp():
    print("== SRP: FT-GMRES with an unreliable inner solver ==")
    import warnings

    warnings.simplefilter("ignore", RuntimeWarning)
    matrix = poisson_2d(16)
    b = np.random.default_rng(1).standard_normal(matrix.n_rows)
    result = ft_gmres(matrix, b, tol=1e-8, fault_probability=0.1, seed=3)
    residual = np.linalg.norm(matrix.matvec(np.asarray(result.x)) - b) / np.linalg.norm(b)
    frac = result.info["unreliable_fraction_flops"]
    print(f"  converged={result.converged}  relative residual={residual:.2e}")
    print(f"  fraction of flops run unreliably: {frac:.1%}")
    print(f"  faults injected into the inner solves: {result.detected_faults}\n")


if __name__ == "__main__":
    demo_skeptical()
    demo_rbsp()
    demo_lflr()
    demo_srp()
