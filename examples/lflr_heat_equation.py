"""LFLR example: locally restarted explicit heat equation.

Runs the distributed heat solver three times -- failure free, with one
rank failure, and with two spaced failures -- verifying that local
recovery reproduces the failure-free answer exactly, and reports the
virtual-time overhead of each recovery (compare with the cost of a
global restart reported by the E4 experiment).

Run with:  python examples/lflr_heat_equation.py
"""

import numpy as np

from repro.reliability import FailurePlan
from repro.lflr import run_lflr_heat
from repro.machine import MachineModel

if __name__ == "__main__":
    machine = MachineModel(flop_rate=1e9, latency=1e-7, bandwidth=1e9,
                           local_recovery_overhead=1e-4)
    clean = run_lflr_heat(6, n_global=96, n_steps=60, machine=machine)
    print(f"failure-free run: virtual time {clean.virtual_time:.3e}s")

    one = FailurePlan.single(clean.virtual_time * 0.4, 3)
    spacing = clean.virtual_time * 0.3 + 200 * machine.local_recovery_overhead
    two = FailurePlan([(clean.virtual_time * 0.25, 1),
                       (clean.virtual_time * 0.25 + spacing, 4)])

    for label, plan in [("one failure", one), ("two failures", two)]:
        result = run_lflr_heat(6, n_global=96, n_steps=60, machine=machine,
                               failure_plan=plan)
        correct = np.allclose(result.field, clean.field, atol=1e-13)
        overhead = result.virtual_time - clean.virtual_time
        print(f"{label:>12}: recoveries={result.n_recoveries}  "
              f"rolled-back steps={result.steps_rolled_back}  "
              f"correct={correct}  recovery overhead={overhead:.3e}s")
