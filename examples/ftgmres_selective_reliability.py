"""SRP example: FT-GMRES under increasing fault rates.

Sweeps the per-operation fault probability of the unreliable domain and
shows that the reliable outer iteration keeps converging while nearly
all the work stays in the cheap, unreliable domain -- a miniature
version of experiment E6.

Run with:  python examples/ftgmres_selective_reliability.py
"""

import warnings

import numpy as np

from repro.ftgmres import ft_gmres
from repro.linalg import convection_diffusion_2d
from repro.utils.tables import Table

if __name__ == "__main__":
    warnings.simplefilter("ignore", RuntimeWarning)
    matrix = convection_diffusion_2d(14, peclet=10.0)
    b = np.random.default_rng(7).standard_normal(matrix.n_rows)
    table = Table(["fault_prob", "converged", "outer_iters", "true_residual",
                   "unreliable_flops_pct", "faults_injected"],
                  title="FT-GMRES under increasing unreliable-domain fault rates")
    for prob in (0.0, 0.02, 0.05, 0.1, 0.2):
        result = ft_gmres(matrix, b, tol=1e-8, fault_probability=prob, seed=11)
        residual = np.linalg.norm(matrix.matvec(np.asarray(result.x)) - b) / np.linalg.norm(b)
        table.add_row(prob, result.converged, result.iterations, residual,
                      100.0 * result.info["unreliable_fraction_flops"],
                      result.detected_faults)
    print(table.render())
