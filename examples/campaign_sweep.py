"""Campaign example: declarative sweeps, parallel execution, reporting.

Declares a small grid sweep over two experiments (E1 check-period
ablation x problem size, E7 machine-reliability grid), runs it on two
worker processes with results memoized in a JSONL store, then renders
the aggregate report.  Run the script twice: the second run skips every
scenario ("cached") because the store already holds their keys.

Run with:  python examples/campaign_sweep.py
"""

import tempfile
import os

from repro.campaign import CampaignRunner, ResultStore, Sweep, render_report

if __name__ == "__main__":
    sweeps = [
        Sweep(
            "E1",
            axes={"check_period": (1, 2), "grid": (8, 10)},
            base={"n_trials": 3, "inject_at": 5},
            tag="example",
        ),
        Sweep(
            "E7",
            axes={"node_mtbf_years": (1.0, 5.0), "checkpoint_time": (60.0, 300.0)},
            tag="example",
        ),
    ]
    scenarios = [s for sweep in sweeps for s in sweep.expand()]
    print(f"expanded {len(scenarios)} scenarios from {len(sweeps)} sweeps\n")

    store_path = os.path.join(tempfile.gettempdir(), "repro_campaign_example.jsonl")
    store = ResultStore(store_path)

    def progress(outcome):
        print(f"  [{outcome.status:>9}] {outcome.key} {outcome.scenario.experiment} "
              f"{outcome.scenario.describe()}")

    runner = CampaignRunner(store, workers=2, progress=progress)
    runner.run(scenarios)

    print()
    print(render_report(store, tag="example"))
    print(f"\n(re-run this script: everything will be cached; "
          f"delete {store_path} to start fresh)")
