"""SkP example: sweep bit positions and compare plain vs skeptical GMRES.

For each class of flipped bit (low/high mantissa, exponent, sign) the
driver injects a single flip into the Arnoldi basis of a GMRES solve and
reports what plain GMRES does with it versus the SDC-detecting solver --
a miniature version of experiment E1.  The run goes through the
campaign registry and runner rather than calling the driver directly,
so the same sweep can be extended declaratively (add an axis) or
persisted (pass a ResultStore).

Run with:  python examples/sdc_detection_gmres.py
"""

from repro.campaign import CampaignRunner, Scenario

if __name__ == "__main__":
    # check_period=1 checks every iteration; 4 amortizes the checks.
    scenarios = [
        Scenario("E1", {"grid": 16, "n_trials": 10, "inject_at": 8,
                        "check_period": period}, tag="example")
        for period in (1, 4)
    ]
    outcomes = CampaignRunner().run(scenarios)
    for outcome in outcomes:
        if outcome.status == "failed":
            raise SystemExit(f"scenario {outcome.key} failed:\n{outcome.error}")
        print(outcome.experiment_result().render())
        print()
    print("Reading the table: 'sdc' is the dangerous column (silently wrong")
    print("answers); the skeptical solver should drive it to zero while adding")
    print("only the overhead shown in the last column.")
