"""SkP example: sweep bit positions and compare plain vs skeptical GMRES.

For each class of flipped bit (low/high mantissa, exponent, sign) the
script injects a single flip into the Arnoldi basis of a GMRES solve and
reports what plain GMRES does with it versus the SDC-detecting solver --
a miniature version of experiment E1.

Run with:  python examples/sdc_detection_gmres.py
"""

import numpy as np

from repro.experiments import e1_sdc_detection

if __name__ == "__main__":
    result = e1_sdc_detection.run(grid=16, n_trials=10, inject_at=8)
    print(result.render())
    print()
    print("Reading the table: 'sdc' is the dangerous column (silently wrong")
    print("answers); the skeptical solver should drive it to zero while adding")
    print("only the overhead shown in the last column.")
