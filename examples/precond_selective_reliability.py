"""Preconditioner walkthrough: the declarative axis + selective reliability.

Three stops, mirroring the paper's argument (Heroux, HPDC'13):

1. *Sweepable preconditioners*: every registered solver accepts
   ``precond=`` by registry name or compact spec string
   (``"jacobi"``, ``"ssor:omega=1.2"``, ``"poly:k=4"``,
   ``"bjacobi:bs=8"``), resolved through ``repro.precond`` exactly
   like solvers and fault models are resolved through their
   registries.
2. *Selective reliability*: wrapping the preconditioner with
   ``reliability.unreliable(...).preconditioner(...)`` runs only
   ``M^{-1} v`` in the unreliable domain.  FGMRES -- whose reliable
   outer iteration vets what the preconditioner returns -- keeps
   converging to the reliable answer while faults hit every apply.
3. *The control*: the same fault rate on the *operator* (data the
   solver must trust) degrades or destroys the solve.

Run with:  PYTHONPATH=src python examples/precond_selective_reliability.py
"""

import warnings

import numpy as np

from repro import precond, reliability
from repro.krylov import default_solver_registry
from repro.linalg import poisson_2d
from repro.utils.tables import Table

if __name__ == "__main__":
    warnings.simplefilter("ignore", RuntimeWarning)
    matrix = poisson_2d(10)
    b = np.random.default_rng(7).standard_normal(matrix.n_rows)
    fgmres = default_solver_registry().get("fgmres")

    # -- 1. the declarative preconditioner axis ------------------------
    table = Table(["precond", "iterations", "converged", "true_residual"],
                  title="FGMRES, preconditioner resolved by spec (fault-free)")
    for spec in ("none", "jacobi", "ssor:omega=1.2", "poly:k=4", "bjacobi:bs=8"):
        result = fgmres.solve(matrix, b, precond=spec, tol=1e-8, maxiter=300)
        residual = float(
            np.linalg.norm(matrix.matvec(np.asarray(result.x)) - b)
            / np.linalg.norm(b)
        )
        table.add_row(spec, result.iterations, result.converged, f"{residual:.2e}")
    print(table.render())
    print()

    # -- 2. selective reliability: only M^{-1} v is unreliable ---------
    x_ref = np.asarray(
        fgmres.solve(matrix, b, precond="ssor:omega=1.2", tol=1e-10,
                     maxiter=300).x
    )
    table = Table(["fault_prob", "faults", "iterations", "converged",
                   "error_vs_reliable"],
                  title="FGMRES, SSOR preconditioner in the UNRELIABLE domain "
                        "(outer iteration reliable)")
    ssor = precond.resolve_preconds("ssor:omega=1.2", matrix=matrix)
    for prob in (0.0, 0.05, 0.2, 0.5):
        with reliability.unreliable(f"bitflip:p={prob},bits=52..62",
                                    seed=11) as dom:
            unreliable_ssor = dom.preconditioner(ssor,
                                                 flops_per_call=matrix.nnz)
            result = fgmres.solve(matrix, b, precond=unreliable_ssor,
                                  tol=1e-8, maxiter=300)
        error = float(np.linalg.norm(np.asarray(result.x) - x_ref)
                      / np.linalg.norm(x_ref))
        table.add_row(prob, dom.faults_injected(), result.iterations,
                      result.converged, f"{error:.2e}")
    print(table.render())
    print()

    # -- 3. the control: the same faults on the trusted operator ------
    table = Table(["fault_prob", "faults", "iterations", "converged",
                   "error_vs_reliable"],
                  title="FGMRES, same fault rates on the OPERATOR "
                        "(reliable-path data)")
    for prob in (0.0, 0.05, 0.2, 0.5):
        with reliability.unreliable(f"bitflip:p={prob},bits=52..62",
                                    seed=11) as dom:
            operator = dom.operator(matrix.matvec,
                                    flops_per_call=2.0 * matrix.nnz)
            with np.errstate(over="ignore", invalid="ignore"):
                result = fgmres.solve(operator, b, precond=ssor,
                                      tol=1e-8, maxiter=300)
        x = np.asarray(result.x)
        error = (
            float(np.linalg.norm(x - x_ref) / np.linalg.norm(x_ref))
            if np.all(np.isfinite(x)) else float("inf")
        )
        table.add_row(prob, dom.faults_injected(), result.iterations,
                      result.converged, f"{error:.2e}")
    print(table.render())
