"""RBSP example: latency-tolerant Krylov solvers and the scaling model.

First verifies, on the simulated runtime, that the pipelined solvers
converge exactly like their synchronous counterparts while issuing far
fewer reduction waves; then evaluates the analytic weak-scaling model at
large process counts under performance variability -- a miniature
version of experiment E3.

Run with:  python examples/pipelined_gmres_scaling.py
"""

import numpy as np

from repro.krylov import cg, gmres, pipelined_cg, pipelined_gmres
from repro.linalg import poisson_2d
from repro.machine import EccStallNoise, MachineModel
from repro.rbsp import IterationTimeModel, scaling_study

if __name__ == "__main__":
    matrix = poisson_2d(20)
    b = np.random.default_rng(3).standard_normal(matrix.n_rows)

    print("Convergence (simulated, small scale):")
    for name, solver in [("cg", cg), ("pipelined_cg", pipelined_cg),
                         ("gmres", gmres), ("pipelined_gmres", pipelined_gmres)]:
        result = solver(matrix, b, tol=1e-8, maxiter=2000)
        print(f"  {name:>16}: converged={result.converged}  iterations={result.iterations}")

    print()
    noise = EccStallNoise(event_rate=10.0, stall=50e-6, rng=0)
    machine = MachineModel.leadership_class(noise=noise)
    model = IterationTimeModel(local_flops=2e5, n_reductions=3, pipeline_waves=1)
    table = scaling_study(machine, model, (16, 256, 4096, 65536, 1048576))
    print(table.render())
