"""Tests for repro.machine (model, noise, collective costs, efficiency)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import (
    BoundedParetoNoise,
    CollectiveCostModel,
    CompositeNoise,
    EccStallNoise,
    ExponentialNoise,
    MachineModel,
    NoNoise,
    allreduce_time,
    barrier_time,
    broadcast_time,
    cpr_efficiency,
    daly_optimal_interval,
    efficiency_crossover_mtbf,
    lflr_efficiency,
    neighbor_exchange_time,
    point_to_point_time,
)


class TestMachineModel:
    def test_compute_time_scales_with_flops(self):
        machine = MachineModel(flop_rate=1e9)
        assert machine.compute_time(1e9) == pytest.approx(1.0)
        assert machine.compute_time(0.0) == 0.0

    def test_message_time_alpha_beta(self):
        machine = MachineModel(latency=1e-6, bandwidth=1e9)
        assert machine.message_time(0) == pytest.approx(1e-6)
        assert machine.message_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_spmv_time_roofline(self):
        machine = MachineModel(flop_rate=1e12, memory_bandwidth=1e9)
        # Memory bound: time follows bytes.
        assert machine.spmv_time(1000, 100) == pytest.approx((12000 + 800) / 1e9)

    def test_checkpoint_and_restart_times(self):
        machine = MachineModel(checkpoint_bandwidth=1e6, restart_overhead=2.0)
        assert machine.checkpoint_time(1e6) == pytest.approx(1.0)
        assert machine.restart_time(1e6) == pytest.approx(3.0)

    def test_local_recovery_time(self):
        machine = MachineModel(local_recovery_overhead=0.1, latency=0.0, bandwidth=1e6)
        assert machine.local_recovery_time(1e6) == pytest.approx(1.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(flop_rate=0.0)
        with pytest.raises(ValueError):
            MachineModel(bandwidth=-1.0)
        with pytest.raises(TypeError):
            MachineModel(noise="loud")

    def test_convenience_constructors(self):
        assert MachineModel.ideal().latency == 0.0
        assert MachineModel.commodity_cluster().flop_rate > 0
        assert MachineModel.leadership_class().collective_latency_factor > 1.0

    def test_noise_is_added_to_compute(self):
        noisy = MachineModel(flop_rate=1e9, noise=EccStallNoise(1e6, 1e-3, rng=0))
        base = MachineModel(flop_rate=1e9)
        samples = [noisy.compute_time(1e6) for _ in range(50)]
        assert max(samples) > base.compute_time(1e6)


class TestNoiseModels:
    def test_no_noise(self):
        assert NoNoise().sample(1.0) == 0.0
        assert NoNoise().mean_overhead(1.0) == 0.0

    def test_exponential_noise_mean(self):
        noise = ExponentialNoise(0.5, 2.0, rng=0)
        assert noise.mean_overhead(1.0) == pytest.approx(1.0)
        samples = [noise.sample(1.0) for _ in range(4000)]
        assert abs(np.mean(samples) - 1.0) < 0.2

    def test_exponential_noise_zero_probability(self):
        assert ExponentialNoise(0.0, 2.0, rng=0).sample(1.0) == 0.0

    def test_bounded_pareto_range(self):
        noise = BoundedParetoNoise(1.0, minimum=1e-3, maximum=1e-1, rng=0)
        samples = [noise.sample(1.0) for _ in range(200)]
        assert all(1e-3 <= s <= 1e-1 for s in samples)
        assert noise.mean_overhead(1.0) > 0

    def test_bounded_pareto_validation(self):
        with pytest.raises(ValueError):
            BoundedParetoNoise(0.5, minimum=1.0, maximum=0.5)

    def test_ecc_stall_scales_with_interval(self):
        noise = EccStallNoise(event_rate=100.0, stall=1e-3, rng=0)
        assert noise.mean_overhead(2.0) == pytest.approx(0.2)
        assert noise.sample(0.0) == 0.0

    def test_composite_sums_means(self):
        composite = CompositeNoise([EccStallNoise(10.0, 1e-3, rng=0),
                                    ExponentialNoise(0.1, 1e-2, rng=1)])
        expected = 10.0 * 1.0 * 1e-3 + 0.1 * 1e-2
        assert composite.mean_overhead(1.0) == pytest.approx(expected)

    def test_composite_validation(self):
        with pytest.raises(ValueError):
            CompositeNoise([])
        with pytest.raises(TypeError):
            CompositeNoise([42])


class TestCollectiveCosts:
    def test_allreduce_log_scaling(self):
        machine = MachineModel(latency=1e-6, bandwidth=1e9)
        t2 = allreduce_time(machine, 2, 8)
        t1024 = allreduce_time(machine, 1024, 8)
        assert t1024 == pytest.approx(10 * t2, rel=1e-6)

    def test_single_rank_collectives_free(self):
        machine = MachineModel()
        assert allreduce_time(machine, 1, 8) == 0.0
        assert barrier_time(machine, 1) == 0.0
        assert broadcast_time(machine, 1, 8) == 0.0

    def test_barrier_is_zero_byte_allreduce(self):
        machine = MachineModel()
        assert barrier_time(machine, 64) == allreduce_time(machine, 64, 0.0)

    def test_point_to_point_matches_machine(self):
        machine = MachineModel(latency=1e-6, bandwidth=1e9)
        assert point_to_point_time(machine, 1000) == machine.message_time(1000)

    def test_neighbor_exchange(self):
        machine = MachineModel(latency=1e-6, bandwidth=1e9)
        assert neighbor_exchange_time(machine, 0, 100) == 0.0
        t2 = neighbor_exchange_time(machine, 2, 1000)
        t4 = neighbor_exchange_time(machine, 4, 1000)
        assert t4 > t2

    def test_collective_latency_factor(self):
        slow = MachineModel(latency=1e-6, collective_latency_factor=2.0)
        fast = MachineModel(latency=1e-6, collective_latency_factor=1.0)
        assert allreduce_time(slow, 16, 8) > allreduce_time(fast, 16, 8)

    def test_synchronous_phase_straggler_grows_with_p(self):
        machine = MachineModel(noise=NoNoise())
        model = CollectiveCostModel(machine, noise_mean=1e-4)
        t_small = model.synchronous_phase_time(4, 1e-3)
        t_large = model.synchronous_phase_time(4096, 1e-3)
        assert t_large > t_small

    def test_asynchronous_phase_hides_latency(self):
        machine = MachineModel(latency=1e-5)
        model = CollectiveCostModel(machine, noise_mean=0.0)
        sync = model.synchronous_phase_time(1024, 1e-3)
        relaxed = model.asynchronous_phase_time(1024, 1e-3, overlap_time=1.0)
        # Fully overlapped: only compute + overlap remains.
        assert relaxed == pytest.approx(1e-3 + 1.0)
        assert sync > 1e-3

    def test_asynchronous_phase_exposes_remainder(self):
        machine = MachineModel(latency=1e-3)
        model = CollectiveCostModel(machine, noise_mean=0.0)
        compute = 1e-3
        short_overlap = 1e-6
        long_overlap = 10.0
        partially = model.asynchronous_phase_time(1024, compute, overlap_time=short_overlap)
        fully = model.asynchronous_phase_time(1024, compute, overlap_time=long_overlap)
        # With a short overlap window some collective latency stays exposed;
        # with a long one it is fully hidden.
        assert partially - (compute + short_overlap) > 0.0
        assert fully - (compute + long_overlap) == pytest.approx(0.0)


class TestEfficiencyModels:
    def test_daly_interval_monotone_in_mtbf(self):
        short = daly_optimal_interval(60.0, 3600.0)
        long = daly_optimal_interval(60.0, 360000.0)
        assert long > short

    def test_daly_degenerate_regime(self):
        assert daly_optimal_interval(100.0, 10.0) == 100.0

    def test_cpr_efficiency_decreases_with_failure_rate(self):
        high_mtbf = cpr_efficiency(60.0, 1e6)
        low_mtbf = cpr_efficiency(60.0, 1e3)
        assert 0 <= low_mtbf < high_mtbf <= 1.0

    def test_cpr_efficiency_zero_floor(self):
        assert cpr_efficiency(300.0, 400.0, restart_time=600.0) == 0.0

    def test_lflr_efficiency_bounds_and_monotonicity(self):
        assert lflr_efficiency(1.0, 1e6) <= 1.0
        assert lflr_efficiency(1.0, 100.0) < lflr_efficiency(1.0, 1e5)
        with pytest.raises(ValueError):
            lflr_efficiency(1.0, 100.0, redundancy_overhead=1.5)

    def test_lflr_beats_cpr_at_low_mtbf(self):
        mtbf = 600.0  # ten minutes
        assert lflr_efficiency(2.0, mtbf) > cpr_efficiency(300.0, mtbf, 600.0)

    def test_crossover_is_bracketed(self):
        crossover = efficiency_crossover_mtbf(300.0, 2.0, 600.0)
        assert 1.0 <= crossover <= 1e9

    def test_crossover_validation(self):
        with pytest.raises(ValueError):
            efficiency_crossover_mtbf(300.0, 2.0, lo=10.0, hi=1.0)
