"""Tests for the mixed-precision layer (``repro.reliability.precision``).

Five contract surfaces, mirroring ``tests/test_precond.py``:

* :class:`PrecisionSpec` -- string/dict round-trips (hypothesis-driven),
  kind/storage validation, the ``is_default`` identity.
* The registry -- named precisions resolve, :func:`parse_precision`
  accepts every wire form, experiment lists drive the benchmark filter.
* Casting and domains -- ``cast_operator``/``cast_vector`` dtype
  contracts, :func:`lowprecision` wrappers keeping the caller in fp64.
* fp64 parity -- ``precision="fp64"`` through every registered solver
  (and through ``batch_solve``) is bit-identical to the default path;
  the default path records no ``info["precision"]`` at all, which is
  what keeps every pre-E10 golden byte-identical.
* The selective-precision claim -- E10's executable form: a reduced-
  precision *inner* stage still reaches the fp64-accurate answer,
  while the same precision on the *whole* solve stalls at the fp32
  residual floor.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import e10_precision
from repro.krylov import batch_solve, default_solver_registry, solver_names
from repro.linalg import poisson_2d
from repro.reliability.precision import (
    PRECISION_KINDS,
    LowPrecisionOperator,
    LowPrecisionPreconditioner,
    PrecisionDomain,
    PrecisionSpec,
    cast_operator,
    cast_vector,
    default_precision_registry,
    lowprecision,
    parse_precision,
    precision_names,
)

REGISTRY = default_solver_registry()
PRECISIONS = default_precision_registry()


def _problem(grid: int = 8, seed: int = 17):
    matrix = poisson_2d(grid)
    rng = np.random.default_rng(seed)
    return matrix, rng.standard_normal(matrix.n_rows)


def _solver_params(solver, tol: float = 1e-8) -> dict:
    if solver.name == "ft_gmres":
        return {"tol": tol, "outer_maxiter": 30, "inner_maxiter": 10}
    return {"tol": tol, "maxiter": 400}


# ---------------------------------------------------------------------------
# PrecisionSpec round-trips and validation
# ---------------------------------------------------------------------------

def _spec_strategy():
    def params_for(kind):
        # Valid storage dtypes are bounded above by the compute dtype.
        storages = {"fp64": ["fp16", "fp32", "fp64"], "fp32": ["fp16", "fp32"]}
        return st.fixed_dictionaries(
            {}, optional={"storage": st.sampled_from(storages[kind])}
        )

    return st.sampled_from(sorted(PRECISION_KINDS)).flatmap(
        lambda kind: params_for(kind).map(lambda p: PrecisionSpec(kind, p))
    )


class TestPrecisionSpec:
    @settings(max_examples=100, deadline=None)
    @given(_spec_strategy())
    def test_string_roundtrip_exact(self, spec):
        assert PrecisionSpec.parse(spec.to_string()) == spec

    @settings(max_examples=100, deadline=None)
    @given(_spec_strategy())
    def test_dict_roundtrip_exact(self, spec):
        assert PrecisionSpec.from_dict(spec.to_dict()) == spec

    def test_parse_examples(self):
        assert PrecisionSpec.parse("fp64") == PrecisionSpec("fp64")
        assert PrecisionSpec.parse("fp32").compute_dtype == np.float32
        spec = PrecisionSpec.parse("fp32:storage=fp16")
        assert spec.compute_dtype == np.float32
        assert spec.storage_dtype == np.float16
        assert spec.to_string() == "fp32:storage=fp16"

    def test_loose_dict_form(self):
        assert PrecisionSpec.from_dict({"kind": "fp32", "storage": "fp16"}) == (
            PrecisionSpec("fp32", {"storage": "fp16"})
        )

    def test_unknown_kind_rejected_with_known_kinds(self):
        with pytest.raises(ValueError, match="fp32"):
            PrecisionSpec("fp8")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="storage"):
            PrecisionSpec("fp32", {"sotrage": "fp16"})

    def test_unknown_storage_dtype_rejected(self):
        with pytest.raises(ValueError, match="fp16"):
            PrecisionSpec("fp32", {"storage": "bf16"})

    def test_storage_wider_than_compute_rejected(self):
        with pytest.raises(ValueError, match="wider"):
            PrecisionSpec("fp32", {"storage": "fp64"})

    def test_case_insensitive(self):
        spec = PrecisionSpec("FP32", {"storage": "FP16"})
        assert spec.kind == "fp32"
        assert spec.storage_dtype == np.float16

    def test_is_default_identity(self):
        assert PrecisionSpec("fp64").is_default
        assert PrecisionSpec("fp64", {"storage": "fp64"}).is_default
        assert not PrecisionSpec("fp64", {"storage": "fp32"}).is_default
        assert not PrecisionSpec("fp32").is_default


# ---------------------------------------------------------------------------
# Registry and parse_precision
# ---------------------------------------------------------------------------

class TestPrecisionRegistry:
    def test_names_cover_the_builtin_set(self):
        assert {"fp64", "fp32", "fp32_fp16"} <= set(precision_names())

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="fp32"):
            PRECISIONS.get("bf16")

    def test_lookup_is_case_insensitive(self):
        assert PRECISIONS.get("FP32").name == "fp32"

    def test_entries_name_e10(self):
        for entry in PRECISIONS:
            assert "E10" in entry.experiments

    def test_parse_precision_wire_forms(self):
        assert parse_precision(None) == PrecisionSpec("fp64")
        assert parse_precision("fp32_fp16") == PrecisionSpec.parse(
            "fp32:storage=fp16"
        )
        assert parse_precision("fp32:storage=fp16").storage_dtype == np.float16
        assert parse_precision({"kind": "fp32"}) == PrecisionSpec("fp32")
        spec = PrecisionSpec("fp32")
        assert parse_precision(spec) is spec

    def test_e10_solvers_list_e10_in_the_solver_registry(self):
        # The benchmark --solver/--precision intersection relies on the
        # E10 default solvers advertising E10.
        for name in ("gmres", "fgmres", "cg"):
            assert "E10" in REGISTRY.get(name).experiments


# ---------------------------------------------------------------------------
# Casting helpers and lowprecision domains
# ---------------------------------------------------------------------------

class TestCastingAndDomains:
    def test_cast_vector_dtypes(self):
        x = np.ones(4)
        assert cast_vector(x, parse_precision("fp32")).dtype == np.float32
        assert cast_vector(x, parse_precision("fp64")).dtype == np.float64

    def test_cast_operator_identity_for_default_spec(self):
        matrix, _ = _problem()
        assert cast_operator(matrix, parse_precision("fp64")) is matrix

    def test_cast_operator_csr_dtypes(self):
        matrix, _ = _problem()
        low = cast_operator(matrix, parse_precision("fp32:storage=fp16"))
        assert low.dtype == np.float32
        assert low.storage_dtype == np.float16
        x = np.ones(matrix.n_cols, dtype=np.float32)
        assert low.matvec(x).dtype == np.float32

    def test_cast_operator_callable_rounds_results(self):
        low = cast_operator(lambda x: x * 3.0, parse_precision("fp32"))
        assert low(np.ones(3)).dtype == np.float32

    def test_low_precision_operator_keeps_caller_in_fp64(self):
        matrix, b = _problem()
        with lowprecision("fp32") as dom:
            wrapped = dom.operator(matrix)
            result = wrapped(b)
        assert isinstance(wrapped, LowPrecisionOperator)
        assert result.dtype == np.float64
        assert wrapped.applications == 1
        exact = matrix.matvec(b)
        # Bounded rounding error, not silent passthrough.
        scale = np.linalg.norm(exact)
        assert 0 < np.linalg.norm(result - exact) <= 1e-5 * scale

    def test_low_precision_preconditioner_protocol(self):
        domain = PrecisionDomain("fp32")
        ident = domain.preconditioner(None)
        assert isinstance(ident, LowPrecisionPreconditioner)
        v = np.full(5, 1.0 + 2.0**-40)  # rounds away in fp32
        out = ident.apply(v)
        assert out.dtype == np.float64
        assert np.all(out == 1.0)
        assert ident.applications == 1
        assert domain.operations == 1

    def test_inner_solve_wrapper_hands_down_rounded_input(self):
        seen = {}

        def inner(v):
            seen["dtype"] = v.dtype
            return v

        domain = PrecisionDomain("fp32")
        out = domain.inner_solve(inner)(np.ones(3))
        assert seen["dtype"] == np.float32
        assert out.dtype == np.float64


# ---------------------------------------------------------------------------
# fp64 parity: precision="fp64" is the default path, bit for bit
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", solver_names())
class TestFp64Parity:
    def test_fp64_is_bitwise_the_default_path(self, name):
        solver = REGISTRY.get(name)
        matrix, b = _problem()
        params = _solver_params(solver)
        default = solver.solve(matrix, b, **params)
        explicit = solver.solve(matrix, b, precision="fp64", **params)
        assert np.array_equal(np.asarray(default.x), np.asarray(explicit.x))
        assert default.iterations == explicit.iterations
        assert default.residual_norms == explicit.residual_norms
        assert default.converged == explicit.converged

    def test_precision_recorded_only_when_passed(self, name):
        # The golden-stability contract: E1-E9 never pass precision=,
        # so their info dicts (and hence the pinned tables) are
        # untouched by the precision layer.
        solver = REGISTRY.get(name)
        matrix, b = _problem(grid=6)
        params = _solver_params(solver)
        default = solver.solve(matrix, b, **params)
        explicit = solver.solve(matrix, b, precision="fp64", **params)
        assert "precision" not in default.info
        assert explicit.info["precision"] == "fp64"


class TestBatchPrecision:
    def test_batch_fp64_matches_sequential_bitwise(self):
        matrix, _ = _problem()
        rng = np.random.default_rng(5)
        bs = [rng.standard_normal(matrix.n_rows) for _ in range(4)]
        batched = batch_solve(
            "gmres", matrix, bs, precision="fp64", tol=1e-8, maxiter=400
        )
        for b, result in zip(bs, batched):
            solo = REGISTRY.get("gmres").solve(
                matrix, b, precision="fp64", tol=1e-8, maxiter=400
            )
            assert np.array_equal(np.asarray(result.x), np.asarray(solo.x))
            assert result.residual_norms == solo.residual_norms
            assert result.info["precision"] == "fp64"

    def test_per_lane_precision_matches_sequential_bitwise(self):
        matrix, _ = _problem()
        rng = np.random.default_rng(5)
        bs = [rng.standard_normal(matrix.n_rows) for _ in range(3)]
        lane_params = [{}, {"precision": "fp32"}, {"precision": "fp32:storage=fp16"}]
        batched = batch_solve(
            "gmres", matrix, bs, lane_params=lane_params, tol=1e-5, maxiter=400
        )
        for b, extra, result in zip(bs, lane_params, batched):
            solo = REGISTRY.get("gmres").solve(
                matrix, b, tol=1e-5, maxiter=400, **extra
            )
            assert np.array_equal(np.asarray(result.x), np.asarray(solo.x))
            assert result.info.get("precision") == solo.info.get("precision")

    def test_fp32_results_are_fp64_arrays(self):
        matrix, b = _problem()
        result = REGISTRY.get("gmres").solve(
            matrix, b, precision="fp32", tol=1e-5, maxiter=400
        )
        assert result.info["precision"] == "fp32"
        assert np.asarray(result.x).dtype == np.float64
        assert result.converged


# ---------------------------------------------------------------------------
# The selective-precision claim (E10 in executable form)
# ---------------------------------------------------------------------------

class TestSelectivePrecisionClaim:
    def test_fp32_inner_reaches_fp64_answer_fp32_outer_does_not(self):
        kwargs = dict(
            grid=8,
            solvers=("gmres", "fgmres"),
            precisions=("fp64", "fp32"),
            preconds=("jacobi",),
            faults=None,
            tol=1e-8,
            error_tolerance=1e-5,
            seed=2013,
        )
        inner = e10_precision.run(target="inner", **kwargs)
        outer = e10_precision.run(target="outer", **kwargs)

        # Selective placement: every reduced-precision inner stage still
        # reaches the fp64-accurate answer.
        assert inner.summary["n_lowprecision_runs"] > 0
        assert (
            inner.summary["n_lowprecision_correct"]
            == inner.summary["n_lowprecision_runs"]
        )

        # Whole-solve placement: the fp32 residual floor sits above the
        # fp64 tolerance, so the same sweep fails for the GMRES family.
        assert (
            outer.summary["n_lowprecision_correct"]
            < outer.summary["n_lowprecision_runs"]
        )
        by_cell = {
            (row[0], row[2]): row[-1] for row in outer.table.rows
        }
        assert by_cell[("gmres", "fp32")] == "crash"
        assert by_cell[("fgmres", "fp32")] == "crash"

    def test_run_batch_matches_run(self):
        base = dict(
            grid=6,
            solvers=("gmres", "cg"),
            precisions=("fp64", "fp32"),
            preconds=("none", "jacobi"),
            faults="bitflip:p=0.05,bits=52..62",
            target="inner",
        )
        params_list = [dict(base, seed=seed) for seed in (2013, 2014, 2015)]
        batched = e10_precision.run_batch(params_list)
        for params, result in zip(params_list, batched):
            sequential = e10_precision.run(**params)
            assert result.table.rows == sequential.table.rows
            assert result.summary == sequential.summary
