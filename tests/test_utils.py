"""Tests for repro.utils (rng, validation, timing, tables, logging)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    Counter,
    Event,
    EventLog,
    RngFactory,
    Stopwatch,
    Table,
    check_array_1d,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
    check_square_matrix,
    require,
    spawn_rng,
)
from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_same_shape


class TestRngFactory:
    def test_same_name_same_stream(self):
        a = RngFactory(7).spawn("x").standard_normal(5)
        b = RngFactory(7).spawn("x").standard_normal(5)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        a = RngFactory(7).spawn("x").standard_normal(5)
        b = RngFactory(7).spawn("y").standard_normal(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(7).spawn("x").standard_normal(5)
        b = RngFactory(8).spawn("x").standard_normal(5)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        factory1 = RngFactory(3)
        _ = factory1.spawn("a")
        x1 = factory1.spawn("b").standard_normal(3)
        factory2 = RngFactory(3)
        x2 = factory2.spawn("b").standard_normal(3)
        assert np.array_equal(x1, x2)

    def test_sequential_streams_differ(self):
        factory = RngFactory(1)
        a = factory.spawn_sequential().standard_normal(4)
        b = factory.spawn_sequential().standard_normal(4)
        assert not np.array_equal(a, b)

    def test_child_factory_reproducible(self):
        a = RngFactory(5).child("sub").spawn("s").standard_normal(3)
        b = RngFactory(5).child("sub").spawn("s").standard_normal(3)
        assert np.array_equal(a, b)

    def test_spawn_rng_helper(self):
        assert np.array_equal(
            spawn_rng(2, "k").standard_normal(2), spawn_rng(2, "k").standard_normal(2)
        )

    def test_seed_property(self):
        assert RngFactory(42).seed == 42

    def test_as_generator_accepts_all_forms(self):
        assert isinstance(as_generator(None), np.random.Generator)
        assert isinstance(as_generator(3), np.random.Generator)
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_rejects_bad_type(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestValidation:
    def test_require_passes_and_fails(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_check_positive(self):
        assert check_positive(2.5, "x") == 2.5
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (-0.01, 1.01):
            with pytest.raises(ValueError):
                check_probability(bad, "p")

    def test_check_in(self):
        assert check_in("a", ("a", "b"), "mode") == "a"
        with pytest.raises(ValueError):
            check_in("c", ("a", "b"), "mode")

    def test_check_integer(self):
        assert check_integer(3, "n") == 3
        with pytest.raises(TypeError):
            check_integer(3.5, "n")
        with pytest.raises(TypeError):
            check_integer(True, "n")

    def test_check_array_1d(self):
        arr = check_array_1d([1, 2, 3], "v")
        assert arr.shape == (3,)
        with pytest.raises(ValueError):
            check_array_1d(np.zeros((2, 2)), "v")

    def test_check_square_matrix(self):
        assert check_square_matrix(np.eye(3), "A").shape == (3, 3)
        with pytest.raises(ValueError):
            check_square_matrix(np.zeros((2, 3)), "A")

    def test_check_same_shape(self):
        check_same_shape(np.zeros(3), np.ones(3), ("a", "b"))
        with pytest.raises(ValueError):
            check_same_shape(np.zeros(3), np.zeros(4), ("a", "b"))


class TestStopwatch:
    def test_start_stop(self):
        sw = Stopwatch()
        sw.start()
        assert sw.stop() >= 0.0

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager(self):
        with Stopwatch() as sw:
            pass
        assert sw.elapsed >= 0.0

    def test_laps_and_reset(self):
        sw = Stopwatch().start()
        sw.lap()
        sw.lap()
        assert len(sw.laps) == 2
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0 and sw.laps == []


class TestCounter:
    def test_add_and_get(self):
        counter = Counter()
        counter.add("flops", 10)
        counter.add("flops", 5)
        assert counter.get("flops") == 15
        assert counter["missing"] == 0

    def test_merge(self):
        a = Counter({"x": 1})
        b = Counter({"x": 2, "y": 3})
        merged = a.merge(b)
        assert merged.get("x") == 3 and merged.get("y") == 3
        assert a.get("x") == 1  # original untouched

    def test_contains_and_reset(self):
        counter = Counter()
        counter.add("messages")
        assert "messages" in counter
        counter.reset()
        assert "messages" not in counter

    def test_as_dict_is_copy(self):
        counter = Counter({"a": 1})
        d = counter.as_dict()
        d["a"] = 99
        assert counter.get("a") == 1


class TestTable:
    def test_positional_rows_and_render(self):
        table = Table(["n", "err"], title="t")
        table.add_row(10, 0.5)
        text = table.render()
        assert "n" in text and "err" in text and "10" in text

    def test_named_rows(self):
        table = Table(["a", "b"])
        table.add_row(a=1, b=2)
        assert table.to_dicts() == [{"a": 1, "b": 2}]

    def test_column_access(self):
        table = Table(["a", "b"])
        table.add_rows([(1, 2), (3, 4)])
        assert table.column("b") == [2, 4]
        with pytest.raises(KeyError):
            table.column("c")

    def test_wrong_cell_count(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_unknown_named_column(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(b=2)

    def test_mixing_positional_and_named_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1, b=2)

    def test_bool_formatting(self):
        table = Table(["ok"])
        table.add_row(True)
        assert "yes" in table.render()

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_len(self):
        table = Table(["a"])
        assert len(table) == 0
        table.add_row(1)
        assert len(table) == 1

    def test_to_dict_round_trip(self):
        table = Table(["n", "err", "ok"], title="demo", float_fmt=".6g")
        table.add_row(10, 0.5, True)
        table.add_row(20, 3.25e-4, False)
        data = table.to_dict()
        import json

        json.dumps(data)  # must be JSON-clean
        rebuilt = Table.from_dict(data)
        assert rebuilt.columns == table.columns
        assert rebuilt.title == table.title
        assert rebuilt.float_fmt == table.float_fmt
        assert rebuilt.rows == table.rows
        assert rebuilt.render() == table.render()

    def test_to_dict_normalizes_numpy_cells(self):
        table = Table(["x"])
        table.add_row(np.float64(1.5))
        table.add_row(np.int32(7))
        data = table.to_dict()
        assert data["rows"] == [[1.5], [7]]
        assert isinstance(data["rows"][0][0], float)
        assert isinstance(data["rows"][1][0], int)


class TestJsonify:
    def test_scalars_and_containers(self):
        from repro.utils import jsonify

        assert jsonify({"a": (1, 2), "b": np.float64(0.5)}) == {"a": [1, 2], "b": 0.5}
        assert jsonify(np.arange(3)) == [0, 1, 2]
        assert jsonify({1: "x"}) == {"1": "x"}
        assert jsonify({True, False}) == [False, True]
        assert jsonify(np.bool_(True)) is True

    def test_mixed_type_set_serializes(self):
        from repro.utils import jsonify

        assert jsonify({1, "auto"}) == sorted([1, "auto"], key=repr)

    def test_unknown_objects_stringified(self):
        from repro.utils import jsonify

        class Weird:
            def __str__(self):
                return "weird"

        assert jsonify(Weird()) == "weird"

    def test_float_precision_preserved(self):
        import json

        from repro.utils import jsonify

        value = 0.1 + 0.2  # not exactly 0.3
        assert json.loads(json.dumps(jsonify(value))) == value


class TestExperimentResult:
    def _result(self, **overrides):
        from repro.experiments.common import ExperimentResult

        table = Table(["a", "b"], title="t")
        table.add_row(1, 2.5)
        fields = dict(
            experiment="E1",
            claim="claim text",
            table=table,
            summary={"rate": 0.5, "ok": True},
            parameters={"grid": 10, "seed": 2013},
        )
        fields.update(overrides)
        return ExperimentResult(**fields)

    def test_to_dict_round_trip(self):
        import json

        result = self._result()
        data = result.to_dict()
        json.dumps(data)
        from repro.experiments.common import ExperimentResult

        rebuilt = ExperimentResult.from_dict(data)
        assert rebuilt.experiment == result.experiment
        assert rebuilt.claim == result.claim
        assert rebuilt.summary == result.summary
        assert rebuilt.parameters == result.parameters
        assert rebuilt.table.render() == result.table.render()
        assert rebuilt.render() == result.render()

    def test_round_trip_normalizes_tuples_and_numpy(self):
        from repro.experiments.common import ExperimentResult

        result = self._result(
            parameters={"sizes": (8, 16)}, summary={"rate": np.float64(0.25)}
        )
        rebuilt = ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.parameters == {"sizes": [8, 16]}
        assert rebuilt.summary == {"rate": 0.25}
        assert isinstance(rebuilt.summary["rate"], float)

    def test_render_escapes_multiline_parameter_values(self):
        result = self._result(parameters={"note": "line1\nline2", "grid": 10})
        text = result.render()
        # The embedded newline must not produce a stray physical line.
        assert "line1\\nline2" in text
        for line in text.splitlines():
            assert not line.startswith("line2")

    def test_render_aligns_long_parameter_lists(self):
        params = {f"param_{i}": "v" * 20 for i in range(6)}
        result = self._result(parameters=params)
        text = result.render()
        lines = text.splitlines()
        assert "parameters:" in lines
        start = lines.index("parameters:")
        block = lines[start + 1 : start + 1 + len(params)]
        assert len(block) == len(params)
        # Keys are left-aligned to a common "=" column.
        eq_columns = {line.index("=") for line in block}
        assert len(eq_columns) == 1

    def test_render_escapes_multiline_summary_values(self):
        result = self._result(summary={"nested": "a\nb", "rate": 0.5})
        text = result.render()
        assert "a\\nb" in text

    def test_render_compact_when_short(self):
        text = self._result().render()
        assert "parameters: grid=10, seed=2013" in text
        assert "summary: ok=True, rate=0.5" in text


class TestEventLog:
    def test_record_and_select(self):
        log = EventLog()
        log.record("bitflip", rank=1, time=0.5, bit=3)
        log.record("recovery", rank=2)
        assert log.count("bitflip") == 1
        assert log.count(rank=2) == 1
        assert log.select("bitflip")[0].details["bit"] == 3

    def test_kinds_order(self):
        log = EventLog()
        log.record("a")
        log.record("b")
        log.record("a")
        assert log.kinds() == ["a", "b"]

    def test_predicate_filter(self):
        log = EventLog()
        log.record("x", value=1)
        log.record("x", value=5)
        big = log.select("x", predicate=lambda e: e.details["value"] > 2)
        assert len(big) == 1

    def test_append_type_checked(self):
        log = EventLog()
        with pytest.raises(TypeError):
            log.append("not an event")
        log.append(Event(kind="ok"))
        assert len(log) == 1

    def test_extend_and_clear(self):
        a, b = EventLog(), EventLog()
        a.record("x")
        b.record("y")
        a.extend(b)
        assert len(a) == 2
        a.clear()
        assert len(a) == 0

    def test_getitem_and_iter(self):
        log = EventLog()
        log.record("x")
        assert log[0].kind == "x"
        assert [e.kind for e in log] == ["x"]

    def test_event_matches(self):
        event = Event(kind="a", rank=3)
        assert event.matches(kind="a")
        assert event.matches(rank=3)
        assert not event.matches(kind="b")
        assert not event.matches(rank=1)
