"""Engine parity suite: the refactored solvers are bit-for-bit stable.

The fixture ``tests/data/engine_parity.json`` was captured from the
pre-refactor (hand-rolled loop) implementations of the six public
solvers, on both the dense and the distributed backend, including the
resilience compositions (FT-GMRES under injected faults, SDC-detecting
GMRES with a fault hook).  Every case records content hashes of the
solution vector and the full residual history plus the exact iteration
/ convergence / fault counters.

The suite asserts the current solvers reproduce those fixtures
*exactly* -- any reordering of floating-point operations inside the
:mod:`repro.krylov.engine` core loop or its strategy objects shows up
here as a hash mismatch, one solver at a time.

Regenerating after an *intentional* numerical change::

    PYTHONPATH=src python -m pytest tests/test_engine_parity.py --update-parity
    git diff tests/data/engine_parity.json   # review before committing
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.ftgmres import ft_gmres
from repro.krylov import cg, fgmres, gmres, pipelined_cg, pipelined_gmres
from repro.linalg import (
    DistributedRowMatrix,
    DistributedVector,
    JacobiPreconditioner,
    NeumannPolynomialPreconditioner,
    poisson_2d,
)
from repro.linalg.matgen import convection_diffusion_2d
from repro.simmpi import run_spmd
from repro.skeptical.gmres_sdc import sdc_detecting_gmres

DATA_PATH = pathlib.Path(__file__).parent / "data" / "engine_parity.json"


def _hash(array) -> str:
    data = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    return hashlib.sha256(data.tobytes()).hexdigest()[:24]


def _digest(result, x=None) -> dict:
    """Bitwise content digest of a SolveResult."""
    x = result.x if x is None else x
    return {
        "converged": bool(result.converged),
        "breakdown": bool(result.breakdown),
        "iterations": int(result.iterations),
        "detected_faults": int(result.detected_faults),
        "x_hash": _hash(x),
        "residual_hash": _hash(result.residual_norms),
        "final_residual": repr(float(result.final_residual)),
    }


def _problem(n_grid: int = 10, seed: int = 7):
    matrix = poisson_2d(n_grid)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(matrix.n_rows)
    return matrix, b


# ----------------------------------------------------------------------
# Dense-backend cases.
# ----------------------------------------------------------------------

def _case_gmres_restarted():
    matrix, b = _problem()
    return _digest(gmres(matrix, b, tol=1e-9, restart=12, maxiter=300))


def _case_gmres_preconditioned():
    matrix, b = _problem()
    M = NeumannPolynomialPreconditioner(matrix, degree=2)
    return _digest(gmres(matrix, b, tol=1e-9, restart=20, maxiter=300, preconditioner=M))


def _case_gmres_classical():
    matrix, b = _problem()
    return _digest(gmres(matrix, b, tol=1e-8, restart=25, maxiter=200, gram_schmidt="classical"))


def _case_gmres_modified():
    matrix, b = _problem(n_grid=8)
    return _digest(gmres(matrix, b, tol=1e-8, restart=15, maxiter=200, gram_schmidt="modified"))


def _case_gmres_nonsymmetric():
    matrix = convection_diffusion_2d(8, peclet=8.0)
    rng = np.random.default_rng(11)
    b = rng.standard_normal(matrix.n_rows)
    return _digest(gmres(matrix, b, tol=1e-9, restart=18, maxiter=400))


def _case_fgmres_unpreconditioned():
    matrix, b = _problem()
    return _digest(fgmres(matrix, b, tol=1e-9, restart=15, maxiter=200))


def _case_fgmres_inner_gmres():
    matrix, b = _problem()

    def inner(v):
        return gmres(matrix, v, tol=1e-2, restart=6, maxiter=6).x

    return _digest(fgmres(matrix, b, tol=1e-9, restart=20, maxiter=120, inner_solve=inner))


def _case_fgmres_hostile_inner():
    # Inner solves that return garbage (non-finite / enormous) must be
    # discarded by the reliable outer iteration, deterministically.
    matrix, b = _problem(n_grid=8)
    calls = {"n": 0}

    def inner(v):
        calls["n"] += 1
        if calls["n"] % 3 == 0:
            return np.full_like(np.asarray(v), np.inf)
        if calls["n"] % 5 == 0:
            return np.asarray(v) * 1e140
        return np.asarray(v)

    return _digest(fgmres(matrix, b, tol=1e-8, restart=12, maxiter=120, inner_solve=inner))


def _case_pipelined_gmres_reorth():
    matrix, b = _problem()
    return _digest(pipelined_gmres(matrix, b, tol=1e-9, restart=14, maxiter=300))


def _case_pipelined_gmres_single_wave():
    matrix, b = _problem()
    return _digest(
        pipelined_gmres(matrix, b, tol=1e-8, restart=20, maxiter=200, reorthogonalize=False)
    )


def _case_cg_plain():
    matrix, b = _problem()
    return _digest(cg(matrix, b, tol=1e-10, maxiter=500))


def _case_cg_jacobi():
    matrix, b = _problem()
    return _digest(cg(matrix, b, tol=1e-10, maxiter=500, preconditioner=JacobiPreconditioner(matrix)))


def _case_pipelined_cg():
    matrix, b = _problem()
    return _digest(pipelined_cg(matrix, b, tol=1e-10, maxiter=500))


def _case_ft_gmres_faulty():
    matrix, b = _problem(n_grid=8)
    result = ft_gmres(
        matrix,
        b,
        tol=1e-8,
        outer_maxiter=30,
        outer_restart=30,
        inner_tol=1e-2,
        inner_maxiter=8,
        inner_restart=8,
        fault_probability=0.05,
        seed=42,
    )
    digest = _digest(result)
    digest["faults_injected"] = int(result.info["srp_summary"]["faults_injected"])
    digest["z_norms_hash"] = _hash(result.info["z_norms"])
    return digest


def _case_sdc_gmres_detected_fault():
    matrix, b = _problem(n_grid=8)
    injected = {"done": False}

    def fault_hook(state):
        if not injected["done"] and state.total_iteration == 5:
            injected["done"] = True
            # Corrupt the newest basis vector in place (exponent-scale hit).
            state.basis[state.inner + 1][3] += 1.0e6

    result = sdc_detecting_gmres(
        matrix, b, tol=1e-8, restart=20, maxiter=300, fault_hook=fault_hook
    )
    digest = _digest(result)
    digest["detection_restarts"] = int(result.info["detection_restarts"])
    digest["checks_run"] = int(result.info["checks_run"])
    return digest


# ----------------------------------------------------------------------
# Distributed-backend cases (simulated MPI runtime, 4 ranks).
# ----------------------------------------------------------------------

def _distributed_case(solver_name: str):
    matrix_global = poisson_2d(8)
    rng = np.random.default_rng(5)
    b_global = rng.standard_normal(matrix_global.n_rows)

    def program(comm):
        matrix = DistributedRowMatrix.from_global(comm, matrix_global)
        b = DistributedVector.from_global(comm, b_global)
        if solver_name == "gmres":
            result = gmres(matrix, b, tol=1e-9, restart=10, maxiter=200)
        elif solver_name == "fgmres":
            result = fgmres(matrix, b, tol=1e-9, restart=12, maxiter=200)
        elif solver_name == "pipelined_gmres":
            result = pipelined_gmres(matrix, b, tol=1e-9, restart=10, maxiter=200)
        elif solver_name == "cg":
            result = cg(matrix, b, tol=1e-10, maxiter=400)
        elif solver_name == "pipelined_cg":
            result = pipelined_cg(matrix, b, tol=1e-10, maxiter=400)
        else:  # pragma: no cover - defensive
            raise ValueError(solver_name)
        return _digest(result, x=result.x.gather_global())

    digests = run_spmd(4, program)
    # All ranks compute the same global answer; rank 0's digest is the case.
    assert all(d == digests[0] for d in digests[1:])
    return digests[0]


_CASES = {
    "gmres_restarted": _case_gmres_restarted,
    "gmres_preconditioned": _case_gmres_preconditioned,
    "gmres_classical": _case_gmres_classical,
    "gmres_modified": _case_gmres_modified,
    "gmres_nonsymmetric": _case_gmres_nonsymmetric,
    "fgmres_unpreconditioned": _case_fgmres_unpreconditioned,
    "fgmres_inner_gmres": _case_fgmres_inner_gmres,
    "fgmres_hostile_inner": _case_fgmres_hostile_inner,
    "pipelined_gmres_reorth": _case_pipelined_gmres_reorth,
    "pipelined_gmres_single_wave": _case_pipelined_gmres_single_wave,
    "cg_plain": _case_cg_plain,
    "cg_jacobi": _case_cg_jacobi,
    "pipelined_cg": _case_pipelined_cg,
    "ft_gmres_faulty": _case_ft_gmres_faulty,
    "sdc_gmres_detected_fault": _case_sdc_gmres_detected_fault,
    "distributed_gmres": lambda: _distributed_case("gmres"),
    "distributed_fgmres": lambda: _distributed_case("fgmres"),
    "distributed_pipelined_gmres": lambda: _distributed_case("pipelined_gmres"),
    "distributed_cg": lambda: _distributed_case("cg"),
    "distributed_pipelined_cg": lambda: _distributed_case("pipelined_cg"),
}


def _load_fixture() -> dict:
    assert DATA_PATH.exists(), (
        f"missing parity fixture {DATA_PATH}; generate it with "
        f"pytest tests/test_engine_parity.py --update-parity"
    )
    return json.loads(DATA_PATH.read_text(encoding="utf-8"))


def test_update_parity_fixture(update_parity):
    """Regenerates the fixture when ``--update-parity`` is passed."""
    if not update_parity:
        pytest.skip("pass --update-parity to regenerate the fixture")
    payload = {name: case() for name, case in sorted(_CASES.items())}
    DATA_PATH.parent.mkdir(exist_ok=True)
    DATA_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                         encoding="utf-8")


@pytest.mark.parametrize("name", sorted(_CASES))
def test_solver_matches_prerefactor_fixture(name, update_parity):
    if update_parity:
        pytest.skip("fixture being regenerated")
    expected = _load_fixture()[name]
    actual = _CASES[name]()
    assert actual == expected, (
        f"solver case {name!r} drifted from the pre-refactor fixture "
        f"(bitwise parity broken).\nexpected: {expected}\nactual:   {actual}"
    )
