"""Tests of the static-analysis layer (``repro.analysis``).

Every rule gets at least one true-positive fixture and one
suppressed/allow-listed fixture, exercised through the same
:func:`repro.analysis.runner.run_analysis` entry point the CLI and the
verify gate use.  The suite also self-hosts: the final test runs the
full pass over this repository and asserts it is clean against the
checked-in baseline, which is exactly the contract scripts/verify.sh
enforces.
"""

import json
import pathlib
import textwrap

import pytest

from repro.analysis.cli import main as cli_main
from repro.analysis.core import SUPPRESSION_RE, Baseline, Finding, Rule, SourceFile
from repro.analysis.registry import (
    RuleRegistry,
    default_rule_registry,
    resolve_rules,
    rule_names,
)
from repro.analysis.runner import find_repo_root, run_analysis

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

EXPECTED_RULES = [
    "deprecated-import",
    "determinism",
    "doc-links",
    "driver-contract",
    "dtype-flow",
    "process-safety",
    "spec-strings",
]


def run_rules(tmp_path, files, rule_ids, baseline=None):
    """Write fixture ``files`` under ``tmp_path`` and run ``rule_ids``."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    registry = default_rule_registry()
    rules = [registry.get(rule_id) for rule_id in rule_ids]
    return run_analysis([tmp_path], rules, baseline=baseline, repo_root=tmp_path)


# ---------------------------------------------------------------------------
# Suppression grammar
# ---------------------------------------------------------------------------


class TestSuppressionGrammar:
    @pytest.mark.parametrize(
        "comment,expected",
        [
            ("# repro: allow(determinism)", {"determinism"}),
            ("#repro:allow(dtype-flow)", {"dtype-flow"}),
            ("x = 1  # repro: allow(a, b-c) -- why", {"a", "b-c"}),
            ("# repro: deny(determinism)", None),
            ("# allow(determinism)", None),
        ],
    )
    def test_regex(self, comment, expected):
        match = SUPPRESSION_RE.search(comment)
        if expected is None:
            assert match is None
        else:
            assert match is not None
            assert {p.strip() for p in match.group(1).split(",")} == expected

    def test_comment_covers_own_line_and_line_below(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "x = 1  # repro: allow(some-rule)\n"
            "# repro: allow(other-rule)\n"
            "y = 2\n",
            encoding="utf-8",
        )
        source = SourceFile(path, "mod.py")
        assert source.allows(1, "some-rule")
        assert source.allows(2, "some-rule")  # the line below line 1
        assert source.allows(2, "other-rule")  # its own line
        assert source.allows(3, "other-rule")  # the line below
        assert not source.allows(4, "other-rule")
        assert not source.allows(3, "some-rule")
        assert not source.allows(1, "other-rule")


# ---------------------------------------------------------------------------
# Rule: determinism
# ---------------------------------------------------------------------------


class TestDeterminismRule:
    def test_global_numpy_rng_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import numpy as np

                def draw():
                    return np.random.rand(4)

                def seeded():
                    return np.random.default_rng(7).random(4)
                """
            },
            ["determinism"],
        )
        assert len(report.findings) == 1
        assert "np.random.rand" in report.findings[0].message
        assert report.findings[0].line == 4

    def test_wall_clock_flagged_but_wall_time_keyword_allowed(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import time

                def stamp(record):
                    record(wall_time=time.time())
                    return time.time()
                """
            },
            ["determinism"],
        )
        assert [f.line for f in report.findings] == [5]
        assert "wall-clock read" in report.findings[0].message

    def test_stdlib_random_and_set_iteration_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import random

                def pick():
                    out = []
                    for item in {"a", "b"}:
                        out.append(item)
                    for item in sorted({"a", "b"}):
                        out.append(item)
                    return out
                """
            },
            ["determinism"],
        )
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 2
        assert "hash order" in messages[0]
        assert "stdlib 'random'" in messages[1]

    def test_unsorted_listing_flagged_sorted_accepted(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import glob

                def scan(pattern):
                    unsorted_hits = glob.glob(pattern)
                    ordered = sorted(glob.glob(pattern))
                    return unsorted_hits, ordered
                """
            },
            ["determinism"],
        )
        assert [f.line for f in report.findings] == [4]

    def test_suppression_comment_above(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import time

                def now():
                    # repro: allow(determinism) -- ledger metadata only
                    return time.time()
                """
            },
            ["determinism"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# Rule: spec-strings
# ---------------------------------------------------------------------------


class TestSpecStringsRule:
    def test_invalid_keyword_spec_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                def configure(solver):
                    return solver.solve(precond="ilu")
                """
            },
            ["spec-strings"],
        )
        assert len(report.findings) == 1
        assert "invalid precond spec 'ilu'" in report.findings[0].message

    def test_valid_specs_pass(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                def configure(solver):
                    return solver.solve(
                        precond="ssor:omega=1.2",
                        faults="bitflip:p=0.02",
                        precision="fp32",
                        chaos="worker_crash:p=0.5",
                    )

                SWEEP = {"preconds": ["jacobi", "poly:k=4"]}
                """
            },
            ["spec-strings"],
        )
        assert report.findings == []

    def test_dict_literal_sweep_values_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": 'SWEEP = {"faults": ["none", "warpdrive:p=0.1"]}\n'
            },
            ["spec-strings"],
        )
        assert len(report.findings) == 1
        assert "warpdrive" in report.findings[0].message

    def test_markdown_grammar_tables_validated(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "GRAMMAR.md": """\
                The smoke sweep uses `poly:k=4` everywhere.

                A stale example: `poly:q=4` no longer parses.
                """
            },
            ["spec-strings"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].path == "GRAMMAR.md"
        assert report.findings[0].line == 3

    def test_suppression(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                def configure(solver):
                    # repro: allow(spec-strings) -- negative fixture
                    return solver.solve(precond="ilu")
                """
            },
            ["spec-strings"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# Rule: driver-contract
# ---------------------------------------------------------------------------


class TestDriverContractRule:
    def test_conforming_driver_passes(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "experiments/e3_demo.py": """\
                SPEC = ExperimentSpec(
                    experiment="E3",
                    smoke={"n": 2},
                    golden={"n": 4, "tol": 1e-8},
                )

                def run(n=8, tol=1e-6):
                    return n, tol

                def run_batch(params_list, check=True):
                    return [run(**p) for p in params_list]
                """
            },
            ["driver-contract"],
        )
        assert report.findings == []

    def test_smoke_keys_must_name_run_parameters(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "experiments/e1_demo.py": """\
                SPEC = ExperimentSpec(
                    experiment="E1",
                    smoke={"n": 4},
                )

                def run(m=1):
                    return m
                """
            },
            ["driver-contract"],
        )
        assert len(report.findings) == 1
        assert "smoke= keys ['n']" in report.findings[0].message

    def test_run_parameters_need_defaults_and_id_must_match(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "experiments/e2_demo.py": """\
                SPEC = ExperimentSpec(experiment="E7")

                def run(n, *extras):
                    return n
                """
            },
            ["driver-contract"],
        )
        messages = "\n".join(f.message for f in report.findings)
        assert "does not match the module filename prefix 'e2'" in messages
        assert "have no defaults" in messages
        assert "*args/**kwargs" in messages

    def test_missing_spec_and_non_driver_files(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "experiments/e4_demo.py": "def run(n=1):\n    return n\n",
                "helpers/e4_demo.py": "x = 1\n",
                "experiments/common.py": "x = 1\n",
            },
            ["driver-contract"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].path == "experiments/e4_demo.py"
        assert "SPEC = ExperimentSpec" in report.findings[0].message

    def test_suppression(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "experiments/e1_demo.py": """\
                SPEC = ExperimentSpec(
                    experiment="E1",
                    smoke={"n": 4},  # repro: allow(driver-contract) -- fixture
                )

                def run(m=1):
                    return m
                """
            },
            ["driver-contract"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# Rule: dtype-flow
# ---------------------------------------------------------------------------


class TestDtypeFlowRule:
    def test_dtypeless_allocation_flagged_in_kernel_path_only(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "linalg/kern.py": """\
                import numpy as np

                def alloc(n):
                    return np.zeros(n)

                def alloc_typed(n, dtype):
                    return np.zeros(n, dtype=dtype)
                """,
                "campaign/kern.py": """\
                import numpy as np

                def alloc(n):
                    return np.zeros(n)
                """,
            },
            ["dtype-flow"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].path == "linalg/kern.py"
        assert "np.zeros() without dtype=" in report.findings[0].message

    def test_mixed_dtype_product_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "krylov/engine/prod.py": """\
                import numpy as np

                def mixed(a, b):
                    return np.dot(a.astype(np.float32), b)

                def both_cast(a, b):
                    return np.dot(a.astype(np.float32), b.astype(np.float32))
                """
            },
            ["dtype-flow"],
        )
        assert [f.line for f in report.findings] == [4]
        assert "silently promotes" in report.findings[0].message

    def test_bare_float_literal_in_template_kernel_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "linalg/lit.py": """\
                def halve(x, dtype):
                    return 0.5 * x

                def untemplated(x):
                    return 0.5 * x
                """
            },
            ["dtype-flow"],
        )
        assert [f.line for f in report.findings] == [2]
        assert "bare float literal" in report.findings[0].message

    def test_suppression(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "linalg/kern.py": """\
                import numpy as np

                def alloc(n):
                    return np.zeros(n)  # repro: allow(dtype-flow) -- fp64 intended
                """
            },
            ["dtype-flow"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# Rule: process-safety
# ---------------------------------------------------------------------------


class TestProcessSafetyRule:
    def test_shared_queue_and_bare_pool_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import multiprocessing

                def build():
                    return multiprocessing.Queue(), multiprocessing.Pool(2)
                """
            },
            ["process-safety"],
        )
        messages = "\n".join(f.message for f in report.findings)
        assert len(report.findings) == 2
        assert "orphans its writer lock" in messages
        assert "bypasses SupervisedExecutor" in messages

    def test_unbounded_ipc_blocking_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import multiprocessing
                from multiprocessing.connection import wait

                def drain(conn, conns):
                    ready = wait(conns)
                    bounded = wait(conns, timeout=1.0)
                    if conn.poll(None):
                        pass
                    if conn.poll(0.1):
                        pass
                    return conn.recv()
                """
            },
            ["process-safety"],
        )
        assert [f.line for f in report.findings] == [5, 7, 11]

    def test_gated_on_multiprocessing_import(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                def build(factory):
                    return factory.Queue(), factory.recv()
                """
            },
            ["process-safety"],
        )
        assert report.findings == []

    def test_suppression(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import multiprocessing

                def drain(conn):
                    return conn.recv()  # repro: allow(process-safety) -- gated by wait()
                """
            },
            ["process-safety"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# Rule: doc-links
# ---------------------------------------------------------------------------


class TestDocLinksRule:
    def test_dangling_relative_link_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "DOC.md": """\
                [good](exists.md) and [external](https://example.com/x)
                [anchor](#section) and [sub](sub/other.md#part)
                [bad](missing.md)
                """,
                "exists.md": "ok\n",
                "sub/other.md": "ok\n",
            },
            ["doc-links"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].line == 3
        assert "missing.md" in report.findings[0].message

    def test_baseline_allowlists_doc_finding(self, tmp_path):
        # Markdown has no suppression comments; the baseline is the
        # allow-listing mechanism, and its fingerprint is line-free.
        grandfathered = Finding(
            rule="doc-links",
            path="DOC.md",
            line=0,
            message="dangling relative link -> missing.md",
        )
        baseline = Baseline(fingerprints=frozenset({grandfathered.fingerprint}))
        report = run_rules(
            tmp_path,
            {"DOC.md": "intro\n\n[bad](missing.md)\n"},
            ["doc-links"],
            baseline=baseline,
        )
        assert report.findings == []
        assert len(report.baselined) == 1


# ---------------------------------------------------------------------------
# Rule: deprecated-import
# ---------------------------------------------------------------------------


class TestDeprecatedImportRule:
    def test_shim_imports_flagged(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": """\
                import repro.faults
                from repro.srp import region
                from repro.reliability import injector
                """
            },
            ["deprecated-import"],
        )
        assert [f.line for f in report.findings] == [1, 2]
        assert all("repro.reliability instead" in f.message for f in report.findings)

    def test_shim_modules_may_self_reference(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "src/repro/faults/__init__.py": "from repro.faults import bitflip\n",
                "src/repro/srp/__init__.py": "import repro.srp.region\n",
            },
            ["deprecated-import"],
        )
        assert report.findings == []

    def test_suppression(self, tmp_path):
        report = run_rules(
            tmp_path,
            {
                "mod.py": "import repro.faults  # repro: allow(deprecated-import)\n"
            },
            ["deprecated-import"],
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# Runner mechanics
# ---------------------------------------------------------------------------


class TestRunnerMechanics:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        report = run_rules(
            tmp_path,
            {"broken.py": "def broken(:\n"},
            ["determinism"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].rule == "parse-error"
        assert "does not parse" in report.findings[0].message

    def test_fingerprint_is_line_independent(self):
        first = Finding(rule="r", path="p.py", line=3, message="m")
        second = Finding(rule="r", path="p.py", line=30, message="m")
        assert first.fingerprint == second.fingerprint
        assert first.render() == "p.py:3: [r] m"

    def test_baseline_roundtrip(self, tmp_path):
        finding = Finding(rule="r", path="p.py", line=3, message="m")
        target = tmp_path / "baseline.json"
        Baseline.dump([finding], target)
        loaded = Baseline.load(target)
        assert loaded.contains(finding)
        assert not loaded.contains(
            Finding(rule="r", path="p.py", line=3, message="other")
        )

    def test_find_repo_root(self, tmp_path):
        (tmp_path / "ROADMAP.md").write_text("x\n", encoding="utf-8")
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_repo_root(nested) == tmp_path.resolve()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRuleRegistry:
    def test_default_registry_names(self):
        assert rule_names() == EXPECTED_RULES

    def test_duplicate_and_anonymous_rules_rejected(self):
        class Dummy(Rule):
            id = "dummy"
            title = "dummy"

        class Anonymous(Rule):
            pass

        registry = RuleRegistry([])
        registry.add(Dummy())
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(Dummy())
        with pytest.raises(ValueError, match="no id"):
            registry.add(Anonymous())

    def test_resolve_rules_subset_order_and_unknown(self):
        rules = resolve_rules("dtype-flow, determinism")
        assert [rule.id for rule in rules] == ["dtype-flow", "determinism"]
        assert [rule.id for rule in resolve_rules(None)] == EXPECTED_RULES
        with pytest.raises(KeyError, match="unknown analysis rule"):
            resolve_rules("no-such-rule")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_list_text(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "registered analysis rules (7):" in out
        for name in EXPECTED_RULES:
            assert name in out

    def test_list_json(self, capsys):
        assert cli_main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["id"] for entry in payload] == EXPECTED_RULES
        assert all(entry["title"] and entry["rationale"] for entry in payload)

    def test_run_json_baseline_roundtrip(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("import repro.faults\n", encoding="utf-8")

        code = cli_main(["run", str(pkg), "--format", "json", "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["counts"]["active"] == 1
        assert payload["findings"][0]["rule"] == "deprecated-import"

        baseline_path = tmp_path / "baseline.json"
        code = cli_main(
            ["run", str(pkg), "--baseline", str(baseline_path), "--update-baseline"]
        )
        assert code == 0
        assert "1 findings recorded" in capsys.readouterr().out

        code = cli_main(
            ["run", str(pkg), "--format", "json", "--baseline", str(baseline_path)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["counts"]["baselined"] == 1

    def test_run_text_summary(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n", encoding="utf-8")
        assert cli_main(["run", str(pkg), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "analysis OK: 0 finding(s)" in out

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        assert cli_main(["run", str(tmp_path / "nope")]) == 2
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        assert cli_main(["run", str(tmp_path), "--rules", "no-such-rule"]) == 2
        assert (
            cli_main(
                ["run", str(tmp_path), "--baseline", str(tmp_path / "missing.json")]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "no such path" in err
        assert "unknown analysis rule" in err
        assert "not found" in err


# ---------------------------------------------------------------------------
# Self-hosting: the repository passes its own lint
# ---------------------------------------------------------------------------


class TestSelfRun:
    def test_repo_tree_clean_against_checked_in_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "scripts" / "analysis_baseline.json")
        report = run_analysis(
            [REPO_ROOT / "src" / "repro", REPO_ROOT / "tests"],
            list(default_rule_registry()),
            baseline=baseline,
            repo_root=REPO_ROOT,
        )
        assert report.findings == [], "\n".join(f.render() for f in report.findings)
        # Suppressions in the tree are deliberate and justified; the
        # executor's two recv() sites must stay among them.
        suppressed_paths = {f.path for f in report.suppressed}
        assert "src/repro/campaign/executor.py" in suppressed_paths
        # The verify gate budgets 10s for the whole pass.
        assert report.elapsed < 10.0
