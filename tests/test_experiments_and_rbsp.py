"""Smoke and claim tests for the experiment drivers and the RBSP helpers.

Each experiment is run in a reduced configuration; the assertions check
the *qualitative* claim recorded in EXPERIMENTS.md (who wins, in which
direction), not absolute numbers.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.experiments import (
    e1_sdc_detection,
    e2_abft,
    e3_pipelined,
    e4_lflr_vs_cpr,
    e5_coarse_recovery,
    e6_ftgmres,
    e7_efficiency,
)
from repro.experiments.common import ExperimentResult
from repro.machine import EccStallNoise, MachineModel
from repro.rbsp import (
    IterationTimeModel,
    LazyNorm,
    overlapped_allreduce,
    pipelined_iteration_time,
    scaling_study,
    synchronous_iteration_time,
)
from repro.simmpi import run_spmd


class TestRbspHelpers:
    def test_overlapped_allreduce_hides_latency(self):
        def program(comm):
            value, work, report = overlapped_allreduce(
                comm, float(comm.rank), work=lambda: comm.advance(0.1)
            )
            return value, report.exposed_latency, report.hidden_latency

        machine = MachineModel(latency=1e-3)
        for value, exposed, hidden in run_spmd(4, program, machine=machine):
            assert value == 6.0
            assert exposed == pytest.approx(0.0, abs=1e-9)

    def test_lazy_norm_defers_reduction(self):
        def program(comm):
            lazy = LazyNorm(comm, local_square=float(comm.rank + 1))
            comm.compute(1000.0)
            return lazy.value()

        expected = np.sqrt(1 + 2 + 3)
        for value in run_spmd(3, program):
            assert value == pytest.approx(expected)

    def test_lazy_norm_sequential(self):
        lazy = LazyNorm(None, 16.0)
        assert lazy.available
        assert lazy.value() == 4.0

    def test_iteration_time_model_validation(self):
        with pytest.raises(ValueError):
            IterationTimeModel(local_flops=1.0, pipeline_waves=0)
        with pytest.raises(ValueError):
            IterationTimeModel(local_flops=1.0, overlap_fraction=2.0)

    def test_pipelined_never_slower_than_synchronous(self):
        noise = EccStallNoise(10.0, 50e-6, rng=0)
        machine = MachineModel.leadership_class(noise=noise)
        model = IterationTimeModel(local_flops=2e5, n_reductions=3, pipeline_waves=1)
        for p in (16, 1024, 65536):
            sync = synchronous_iteration_time(machine, model, p)
            pipe = pipelined_iteration_time(machine, model, p)
            assert pipe <= sync

    def test_scaling_study_table_shape(self):
        machine = MachineModel.leadership_class()
        model = IterationTimeModel(local_flops=1e5)
        table = scaling_study(machine, model, (4, 64, 1024))
        assert len(table) == 3
        assert table.column("ranks") == [4, 64, 1024]
        with pytest.raises(ValueError):
            scaling_study(machine, model, ())


class TestExperimentE1:
    def test_skeptical_eliminates_sdc_and_crash_for_severe_flips(self):
        result = e1_sdc_detection.run(grid=12, n_trials=4, inject_at=6)
        assert isinstance(result, ExperimentResult)
        rows = result.table.to_dicts()
        for row in rows:
            if row["solver"] == "skeptical" and row["bit_class"] in ("exponent", "sign"):
                assert row["sdc"] == 0.0
                assert row["crash"] == 0.0
                assert row["detected"] > 0.0
        # Plain GMRES must never be credited with detection.
        assert all(row["detected"] == 0.0 for row in rows if row["solver"] == "plain")
        assert "baseline_iterations" in result.summary


class TestExperimentE2:
    def test_detection_and_correction_dominate(self):
        result = e2_abft.run(sizes=(16,), n_trials=15)
        rows = [r for r in result.table.to_dicts() if r["kernel"] == "matmul"]
        for row in rows:
            assert row["detection_rate"] >= 0.5
            assert row["correction_rate"] == row["detection_rate"]
            assert row["false_positive_rate"] == 0.0
            assert row["checksum_overhead"] < 0.5


class TestExperimentE3:
    def test_pipelined_wins_and_gap_grows_with_scale(self):
        result = e3_pipelined.run(rank_counts=(16, 1024, 65536))
        speedups = result.table.column("speedup")
        assert all(s >= 1.0 for s in speedups)
        assert speedups[-1] > 1.5
        # Convergence is not traded away: iteration counts match closely.
        assert abs(result.summary["cg_iterations"]
                   - result.summary["pipelined_cg_iterations"]) <= 3
        assert (result.summary["pipe_efficiency_at_largest_p"]
                > result.summary["sync_efficiency_at_largest_p"])


class TestExperimentE4:
    def test_lflr_correct_and_cheaper_than_cpr(self):
        result = e4_lflr_vs_cpr.run(n_ranks=4, n_global=40, n_steps=25,
                                    failure_counts=(0, 1))
        rows = {row["n_failures"]: row for row in result.table.to_dicts()}
        assert rows[0]["lflr_correct"] and rows[1]["lflr_correct"]
        assert rows[1]["lflr_recoveries"] == 1
        assert rows[1]["cpr_restarts"] == 1
        # The paper's claim: local recovery costs much less than a global
        # restart with recomputation.
        assert rows[1]["overhead_ratio"] > 1.0


class TestExperimentE5:
    def test_coarse_model_beats_naive_bootstraps(self):
        result = e5_coarse_recovery.run(n_points=96, coarsening_factors=(4,))
        summary = result.summary
        assert summary["coarse_4_error"] < summary["zero_bootstrap_error"]
        assert summary["coarse_4_error"] < summary["neighbor_average_error"]
        assert summary["coarse_4_extra_iters"] <= summary["zero_bootstrap_extra_iters"]


class TestExperimentE6:
    def test_ftgmres_converges_under_faults_with_unreliable_bulk(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = e6_ftgmres.run(grid=10, fault_probabilities=(0.0, 0.1),
                                    n_trials=2)
        assert result.summary["ftgmres_0.1_converged"] == 1.0
        assert result.summary["ftgmres_0.1_unreliable_fraction"] > 0.5


class TestExperimentE7:
    def test_cpr_collapses_while_lflr_stays_high(self):
        result = e7_efficiency.run(node_counts=(1_000, 100_000, 1_000_000))
        assert result.summary["cpr_eff_1000"] > result.summary["cpr_eff_1000000"]
        assert result.summary["lflr_eff_1000000"] > 0.9
        assert result.summary["lflr_eff_1000000"] > result.summary["cpr_eff_1000000"]
        assert result.summary["cpr_below_half_at_nodes"] > 0

    def test_render_contains_table(self):
        result = e7_efficiency.run(node_counts=(1_000,))
        text = result.render()
        assert "E7" in text and "cpr_efficiency" in text
