"""Batched-vs-sequential differential suite (lockstep batch execution).

The batch layer's contract is bit-identity: ``batch_solve`` must equal
``S`` separate ``solve()`` calls, driver ``run_batch`` must equal ``S``
separate ``run()`` calls, and a batched campaign must persist exactly
what a sequential campaign persists.  This module pins that contract at
every layer:

* engine -- the solver x policy x preconditioner x fault-hook matrix,
  including mid-batch divergence (mixed per-lane tolerances) and a
  non-converging lane;
* drivers -- E1/E8/E9 ``run_batch`` against sequential ``run``;
* runner -- ``CampaignRunner(batch=...)`` store contents against the
  scenario-at-a-time run, mixed batchable/non-batchable campaigns
  included;
* properties (Hypothesis) -- ``plan_batch_groups`` partitions without
  dropping or duplicating scenarios, and the lockstep convergence mask
  freezes finished lanes' iterates for good;
* ledger -- a quarantined key completed later (e.g. by a batch
  sibling's unit) leaves ``failed_keys()`` once the store holds it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.executor import AttemptRecord, FailureLedger
from repro.campaign.registry import default_registry
from repro.campaign.runner import CampaignRunner, plan_batch_groups
from repro.campaign.spec import Scenario, canonical_json
from repro.campaign.store import ResultStore
from repro.experiments import e1_sdc_detection, e8_solvers, e9_precond
from repro.krylov.engine.batch import CgLaneSpec, run_cg_batch
from repro.krylov.registry import batch_solve, default_solver_registry
from repro.linalg.matgen import poisson_2d
from repro.reliability.models import BasisBitflipFaults
from repro.reliability.spec import FaultSpec


@pytest.fixture(scope="module")
def matrix():
    return poisson_2d(12)


@pytest.fixture(scope="module")
def rhs(matrix):
    return [
        np.random.default_rng(100 + i).standard_normal(matrix.n_rows)
        for i in range(5)
    ]


def assert_lane_parity(results, seq_results):
    """Bit-identity of a batched result list against sequential solves."""
    assert len(results) == len(seq_results)
    for r, s in zip(results, seq_results):
        assert r.x.tobytes() == s.x.tobytes()
        assert r.residual_norms == s.residual_norms
        assert r.iterations == s.iterations
        assert r.converged == s.converged
        assert r.breakdown == s.breakdown
        r_info = {k: v for k, v in r.info.items() if k != "kernels"}
        s_info = {k: v for k, v in s.info.items() if k != "kernels"}
        assert r_info == s_info
        # Wall-clock seconds differ; the call counts must not.
        assert r.info["kernels"]["counts"] == s.info["kernels"]["counts"]


# ----------------------------------------------------------------------
# Engine layer: batch_solve vs S sequential solve() calls.
# ----------------------------------------------------------------------
class TestEngineParity:
    @pytest.mark.parametrize(
        "solver,kwargs",
        [
            ("gmres", dict(tol=1e-8, restart=30, maxiter=600)),
            ("gmres", dict(tol=1e-8, restart=25, maxiter=500, policy="residual_guard")),
            ("gmres", dict(tol=1e-8, restart=30, maxiter=600, gram_schmidt="classical")),
            ("gmres", dict(tol=1e-8, restart=30, maxiter=600, precond="jacobi")),
            ("cg", dict(tol=1e-10, maxiter=400)),
            ("cg", dict(tol=1e-10, maxiter=400, precond="jacobi")),
            ("cg", dict(tol=1e-10, maxiter=400, policy="residual_guard")),
            ("sdc_gmres", dict(policy="skeptical_restart", tol=1e-8, restart=30,
                               maxiter=600, check_period=2)),
            # Sequential-fallback configurations must agree too.
            ("pipelined_gmres", dict(tol=1e-8, maxiter=400)),
            ("fgmres", dict(tol=1e-8, maxiter=300, precond="jacobi")),
        ],
        ids=["gmres", "gmres-guard", "gmres-mgs", "gmres-jacobi", "cg",
             "cg-jacobi", "cg-guard", "sdc", "pipelined-fallback",
             "fgmres-fallback"],
    )
    def test_solver_policy_precond_matrix(self, matrix, rhs, solver, kwargs):
        registry = default_solver_registry()
        batched = batch_solve(solver, matrix, rhs, **kwargs)
        sequential = [registry.get(solver).solve(matrix, b, **kwargs) for b in rhs]
        assert_lane_parity(batched, sequential)

    def test_fault_hooks_draw_identical_streams(self, matrix, rhs):
        registry = default_solver_registry()
        model = BasisBitflipFaults(FaultSpec("basis_bitflip", {"bits": (30, 55)}))

        def hook(seed):
            h, _info = model.iteration_hook(np.random.default_rng(seed), at=5)
            return h

        kwargs = dict(policy="skeptical_restart", tol=1e-8, restart=30,
                      maxiter=600, check_period=1)
        batched = batch_solve(
            "sdc_gmres", matrix, rhs, **kwargs,
            lane_params=[{"fault_hook": hook(7 + i)} for i in range(len(rhs))],
        )
        sequential = [
            registry.get("sdc_gmres").solve(
                matrix, b, **kwargs, policy_options={"fault_hook": hook(7 + i)}
            )
            for i, b in enumerate(rhs)
        ]
        assert_lane_parity(batched, sequential)

    def test_mid_batch_divergence_mixed_tolerances(self, matrix):
        # Per-lane tolerances force staggered exits: the tightest lane
        # keeps iterating long after the loosest froze.
        registry = default_solver_registry()
        tols = [1e-4, 1e-6, 1e-8, 1e-10, 1e-12]
        lane_params = [{"tol": tols[i % 5]} for i in range(10)]
        bs = [
            np.random.default_rng(40 + i).standard_normal(matrix.n_rows)
            for i in range(10)
        ]
        for solver, kwargs in [
            ("gmres", dict(restart=30, maxiter=600)),
            ("sdc_gmres", dict(policy="skeptical_restart", restart=30,
                               maxiter=600, check_period=1)),
        ]:
            batched = batch_solve(solver, matrix, bs, **kwargs,
                                  lane_params=lane_params)
            sequential = [
                registry.get(solver).solve(matrix, b, **kwargs, **lane_params[i])
                for i, b in enumerate(bs)
            ]
            iterations = {r.iterations for r in batched}
            assert len(iterations) > 1, "tolerance mix should stagger exits"
            assert_lane_parity(batched, sequential)

    def test_non_converging_lane(self, matrix, rhs):
        # A lane that exhausts maxiter must report non-convergence with
        # the exact sequential history, without stalling its siblings.
        registry = default_solver_registry()
        kwargs = dict(tol=1e-14, restart=20, maxiter=40, precond="jacobi")
        batched = batch_solve("gmres", matrix, rhs, **kwargs)
        sequential = [registry.get("gmres").solve(matrix, b, **kwargs) for b in rhs]
        assert any(not r.converged for r in batched)
        assert_lane_parity(batched, sequential)


# ----------------------------------------------------------------------
# Driver layer: run_batch vs S sequential run() calls.
# ----------------------------------------------------------------------
def assert_driver_parity(module, config, seeds):
    batched = module.run_batch([dict(config, seed=s) for s in seeds])
    sequential = [module.run(**dict(config, seed=s)) for s in seeds]
    assert len(batched) == len(sequential)
    for b, s in zip(batched, sequential):
        assert canonical_json(b.to_dict()) == canonical_json(s.to_dict())


class TestDriverParity:
    def test_e1_matches_sequential(self):
        assert_driver_parity(
            e1_sdc_detection,
            dict(grid=6, n_trials=2, inject_at=4),
            seeds=[101, 102, 103],
        )

    def test_e8_matches_sequential(self):
        assert_driver_parity(
            e8_solvers,
            dict(grid=6, solvers=("gmres", "cg", "sdc_gmres"),
                 policy="skeptical", faults="bitflip:p=0.02,bits=52..62"),
            seeds=[101, 102, 103],
        )

    def test_e8_fallback_solvers_match_sequential(self):
        # Non-batchable solvers (pipelined, flexible, ft_gmres) take
        # the sequential-fallback path inside the batch driver.
        assert_driver_parity(
            e8_solvers,
            dict(grid=6, solvers=("pipelined_gmres", "fgmres", "ft_gmres"),
                 policy="guard", faults="bitflip:p=0.02,bits=52..62"),
            seeds=[101, 102],
        )

    @pytest.mark.parametrize("target", ["precond", "operator"])
    def test_e9_matches_sequential(self, target):
        assert_driver_parity(
            e9_precond,
            dict(grid=6, solvers=("gmres", "cg"), preconds=("none", "jacobi"),
                 faults="bitflip:p=0.05,bits=52..62", target=target),
            seeds=[101, 102, 103],
        )

    def test_empty_and_singleton_batches(self):
        assert e8_solvers.run_batch([]) == []
        config = dict(grid=6, solvers=("gmres",), policy="none", seed=77)
        single = e8_solvers.run_batch([config])
        assert canonical_json(single[0].to_dict()) == canonical_json(
            e8_solvers.run(**config).to_dict()
        )

    def test_incompatible_scenarios_fall_back(self):
        # Differing non-seed parameters cannot share a lockstep batch;
        # the driver must fall back to per-scenario runs, not group them.
        params = [
            dict(grid=6, solvers=("gmres",), policy="none", seed=1),
            dict(grid=6, solvers=("cg",), policy="none", seed=1),
        ]
        batched = e8_solvers.run_batch(params)
        sequential = [e8_solvers.run(**p) for p in params]
        for b, s in zip(batched, sequential):
            assert canonical_json(b.to_dict()) == canonical_json(s.to_dict())


# ----------------------------------------------------------------------
# Runner layer: batched campaigns persist exactly the sequential stores.
# ----------------------------------------------------------------------
def _replica_scenarios():
    base = {"grid": 6, "solvers": ("gmres", "cg"), "policy": "none"}
    scenarios = [
        Scenario("E8", dict(base, seed=200 + i)) for i in range(4)
    ]
    # A non-batchable driver mixed in: grouped as singletons, results
    # unchanged.
    scenarios.append(Scenario("E7", {"node_mtbf_years": 1.0}))
    return scenarios


def _store_contents(path):
    return {
        record.key: canonical_json(record.result)
        for record in ResultStore(str(path)).records()
    }


class TestRunnerBatchMode:
    def test_batched_store_matches_sequential(self, tmp_path):
        scenarios = _replica_scenarios()
        CampaignRunner(ResultStore(str(tmp_path / "seq.jsonl"))).run(scenarios)
        CampaignRunner(
            ResultStore(str(tmp_path / "bat.jsonl")), batch=0
        ).run(scenarios)
        sequential = _store_contents(tmp_path / "seq.jsonl")
        batched = _store_contents(tmp_path / "bat.jsonl")
        assert sequential == batched

    def test_batch_cap_chunks_groups(self, tmp_path):
        scenarios = _replica_scenarios()
        groups = plan_batch_groups(scenarios, limit=3)
        assert sorted(len(g) for g in groups) == [1, 1, 3]
        CampaignRunner(ResultStore(str(tmp_path / "seq.jsonl"))).run(scenarios)
        CampaignRunner(
            ResultStore(str(tmp_path / "cap.jsonl")), batch=3
        ).run(scenarios)
        assert _store_contents(tmp_path / "seq.jsonl") == _store_contents(
            tmp_path / "cap.jsonl"
        )

    def test_batched_outcomes_report_per_scenario(self):
        scenarios = _replica_scenarios()
        outcomes = CampaignRunner(batch=0).run(scenarios)
        assert len(outcomes) == len(scenarios)
        assert all(o.status == "completed" for o in outcomes)
        keys = {o.key for o in outcomes}
        assert len(keys) == len(scenarios)

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(batch=-1)


# ----------------------------------------------------------------------
# Properties: grouping partitions; convergence masks freeze lanes.
# ----------------------------------------------------------------------
_experiment = st.sampled_from(["E1", "E7", "E8", "E9"])
_params = st.fixed_dictionaries(
    {"seed": st.integers(0, 5)},
    optional={"grid": st.sampled_from([6, 8]), "policy": st.sampled_from(["none", "guard"])},
)


@st.composite
def _scenario_lists(draw):
    pairs = draw(
        st.lists(st.tuples(_experiment, _params), min_size=0, max_size=20)
    )
    return [Scenario(experiment, params) for experiment, params in pairs]


class TestBatchGroupingProperties:
    @settings(max_examples=60, deadline=None)
    @given(scenarios=_scenario_lists(), limit=st.sampled_from([0, 1, 2, 3]))
    def test_groups_partition_scenarios(self, scenarios, limit):
        registry = default_registry()
        groups = plan_batch_groups(scenarios, limit=limit)
        flat = [index for group in groups for index in group]
        # Nothing dropped, nothing duplicated.
        assert sorted(flat) == list(range(len(scenarios)))
        for group in groups:
            if limit:
                assert len(group) <= limit
            members = [scenarios[i] for i in group]
            driver = registry.get(members[0].experiment)
            if len(members) > 1:
                # Only shape-compatible scenarios of a batch-capable
                # driver share a group: same experiment, same params
                # except the seed.
                assert driver.supports_batch
                reference = {
                    k: v for k, v in members[0].params.items() if k != "seed"
                }
                for member in members[1:]:
                    assert member.experiment == members[0].experiment
                    assert {
                        k: v for k, v in member.params.items() if k != "seed"
                    } == reference

    @settings(max_examples=30, deadline=None)
    @given(scenarios=_scenario_lists())
    def test_grouping_is_deterministic(self, scenarios):
        assert plan_batch_groups(scenarios) == plan_batch_groups(scenarios)

    @settings(max_examples=30, deadline=None)
    @given(scenarios=_scenario_lists())
    def test_non_batchable_drivers_stay_singleton(self, scenarios):
        registry = default_registry()
        for group in plan_batch_groups(scenarios):
            driver = registry.get(scenarios[group[0]].experiment)
            if not driver.supports_batch:
                assert len(group) == 1


class TestMaskFreezeProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        lanes=st.lists(
            st.tuples(
                st.integers(0, 10_000),          # rhs seed
                st.integers(2, 10),              # tolerance exponent
                st.sampled_from([5, 30, 200]),   # maxiter
            ),
            min_size=2,
            max_size=6,
        )
    )
    def test_converged_lane_rows_never_change(self, lanes):
        # Once a lane leaves the advancing set (converged, broken down
        # or out of budget), its rows of the stacked iterate/residual
        # arrays must stay frozen for the rest of the lockstep run.
        matrix = poisson_2d(5)
        specs = [
            CgLaneSpec(
                b=np.random.default_rng(seed).standard_normal(matrix.n_rows),
                tol=10.0 ** -exponent,
                maxiter=maxiter,
            )
            for seed, exponent, maxiter in lanes
        ]
        snapshots = {}

        def trace(step, advanced, X, R):
            advancing = set(advanced)
            for lane in range(len(specs)):
                if lane in advancing:
                    snapshots[lane] = (X[lane].copy(), R[lane].copy())
                elif lane in snapshots:
                    x_frozen, r_frozen = snapshots[lane]
                    assert np.array_equal(X[lane], x_frozen)
                    assert np.array_equal(R[lane], r_frozen)

        results = run_cg_batch(matrix, specs, trace=trace)
        # The frozen rows are exactly what each lane returned.
        for lane, result in enumerate(results):
            if lane in snapshots:
                assert np.array_equal(result.x, snapshots[lane][0])


# ----------------------------------------------------------------------
# Ledger reconciliation: the store is authoritative for completion.
# ----------------------------------------------------------------------
class TestLedgerReconciliation:
    def test_quarantined_key_cleared_by_cached_store_hit(self, tmp_path):
        # A scenario quarantined in one run (e.g. its batch unit was
        # killed) but whose result reached the store -- a sibling's
        # unit completed it, or a later solo run journaled elsewhere --
        # must not linger in failed_keys() forever.
        store_path = tmp_path / "s.jsonl"
        scenarios = [Scenario("E7", {"node_mtbf_years": 1.0})]
        outcomes = CampaignRunner(ResultStore(str(store_path))).run(scenarios)
        key = outcomes[0].key

        ledger_path = FailureLedger.path_for(str(store_path))
        FailureLedger(ledger_path).record(
            AttemptRecord(key=key, experiment="E7", attempt=3,
                          status="crashed", outcome="quarantined")
        )
        assert key in FailureLedger(ledger_path).failed_keys()

        rerun = CampaignRunner(ResultStore(str(store_path))).run(scenarios)
        assert rerun[0].status == "cached"
        reconciled = FailureLedger(ledger_path)
        assert key not in reconciled.failed_keys()
        assert reconciled.records()[-1].status == "reconciled"

    def test_mark_completed_clears_failed_key(self, tmp_path):
        ledger = FailureLedger(str(tmp_path / "ledger.jsonl"))
        ledger.record(
            AttemptRecord(key="k1", experiment="E8", attempt=2,
                          status="timeout", outcome="timeout")
        )
        assert ledger.failed_keys() == ["k1"]
        ledger.mark_completed("k1", "E8")
        assert ledger.failed_keys() == []
        # Append-only history survives the reconciliation.
        assert [r.outcome for r in ledger.records()] == ["timeout", "completed"]
