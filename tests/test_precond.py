"""Tests for the declarative preconditioning layer (``repro.precond``).

Four contract surfaces, mirroring ``tests/test_solver_registry.py``:

* :class:`PrecondSpec` -- string/dict round-trips (hypothesis-driven),
  kind/parameter validation.
* The registry -- lookup semantics, the builder contract for every
  named entry, actionable error messages that name the offending spec
  string.
* Solver wiring -- ``precond=`` on every registered solver is bitwise
  the explicitly-constructed preconditioner path.
* Selective reliability -- the paper's claim as an executable
  assertion: FGMRES with an ``unreliable(...)``-wrapped preconditioner
  converges to the reliable answer while the same fault model on the
  reliable-path operator degrades it.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import precond, reliability
from repro.krylov import default_solver_registry
from repro.krylov.fgmres import fgmres
from repro.krylov.gmres import gmres
from repro.linalg import poisson_2d
from repro.linalg.precond import (
    BlockJacobiPreconditioner,
    JacobiPreconditioner,
    Preconditioner,
    SsorPreconditioner,
)
from repro.precond import (
    PRECOND_KINDS,
    PrecondRegistry,
    PrecondSpec,
    build_preconditioner,
    default_precond_registry,
    parse_precond,
    precond_names,
    resolve_preconds,
)

REGISTRY = default_precond_registry()


def _problem(grid: int = 8, seed: int = 17):
    matrix = poisson_2d(grid)
    rng = np.random.default_rng(seed)
    return matrix, rng.standard_normal(matrix.n_rows)


# ---------------------------------------------------------------------------
# PrecondSpec round-trips and validation
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=64,
              min_value=-1e12, max_value=1e12),
)


def _spec_strategy():
    def params_for(kind):
        names = PRECOND_KINDS[kind]
        if not names:
            return st.just({})
        return st.fixed_dictionaries(
            {}, optional={name: _scalars for name in names}
        )

    return st.sampled_from(sorted(PRECOND_KINDS)).flatmap(
        lambda kind: params_for(kind).map(lambda p: PrecondSpec(kind, p))
    )


class TestPrecondSpec:
    @settings(max_examples=200, deadline=None)
    @given(_spec_strategy())
    def test_string_roundtrip_exact(self, spec):
        assert PrecondSpec.parse(spec.to_string()) == spec

    @settings(max_examples=200, deadline=None)
    @given(_spec_strategy())
    def test_dict_roundtrip_exact(self, spec):
        assert PrecondSpec.from_dict(spec.to_dict()) == spec

    def test_parse_examples(self):
        assert PrecondSpec.parse("none") == PrecondSpec("none")
        assert PrecondSpec.parse("ssor:omega=1.2") == PrecondSpec(
            "ssor", {"omega": 1.2}
        )
        assert PrecondSpec.parse("poly:k=4").get("k") == 4
        assert PrecondSpec.parse("bjacobi:bs=8").to_string() == "bjacobi:bs=8"

    def test_loose_dict_form(self):
        assert PrecondSpec.from_dict({"kind": "ssor", "omega": 1.5}) == (
            PrecondSpec("ssor", {"omega": 1.5})
        )

    def test_unknown_kind_rejected_with_known_kinds(self):
        with pytest.raises(ValueError, match="bjacobi"):
            PrecondSpec("ilu")

    def test_unknown_parameter_rejected_with_valid_set(self):
        with pytest.raises(ValueError, match="omega"):
            PrecondSpec("ssor", {"omeag": 1.2})

    def test_with_params_drops_none_overrides(self):
        spec = PrecondSpec("ssor", {"omega": 1.0})
        assert spec.with_params(omega=None) == spec
        assert spec.with_params(omega=1.5).get("omega") == 1.5

    def test_case_insensitive_kind(self):
        assert PrecondSpec("SSOR", {"omega": 1.0}).kind == "ssor"


# ---------------------------------------------------------------------------
# Registry contract (mirrors test_solver_registry.TestRegistryLookup)
# ---------------------------------------------------------------------------

class TestRegistryLookup:
    def test_names_cover_the_builtin_set(self):
        assert {"none", "jacobi", "ssor", "ssor_over", "poly2", "poly4",
                "bjacobi8"} <= set(precond_names())

    def test_unknown_precond_raises_with_known_names(self):
        with pytest.raises(KeyError, match="jacobi"):
            REGISTRY.get("ilu0")

    def test_lookup_is_case_insensitive(self):
        assert REGISTRY.get("JACOBI").name == "jacobi"

    def test_duplicate_names_rejected(self):
        registry = PrecondRegistry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(REGISTRY.get("jacobi"))

    def test_every_entry_round_trips_and_builds(self):
        matrix, _ = _problem()
        for entry in REGISTRY:
            assert PrecondSpec.parse(entry.spec.to_string()) == entry.spec
            assert PrecondSpec.from_dict(entry.spec.to_dict()) == entry.spec
            built = entry.build(matrix)
            if entry.spec.kind == "none":
                assert built is None
                continue
            assert isinstance(built, Preconditioner)
            z = built.apply(np.ones(matrix.n_rows))
            assert z.shape == (matrix.n_rows,)
            assert np.all(np.isfinite(z))

    def test_every_entry_names_an_experiment(self):
        for entry in REGISTRY:
            assert entry.experiments, entry.name


class TestResolution:
    def test_none_resolves_to_no_preconditioner(self):
        matrix, _ = _problem()
        assert resolve_preconds(None, matrix=matrix) is None
        assert resolve_preconds("none", matrix=matrix) is None

    def test_registry_names_and_inline_specs_resolve(self):
        matrix, _ = _problem()
        assert isinstance(resolve_preconds("jacobi", matrix=matrix),
                          JacobiPreconditioner)
        assert isinstance(resolve_preconds("ssor:omega=1.2", matrix=matrix),
                          SsorPreconditioner)
        assert isinstance(resolve_preconds({"kind": "bjacobi", "bs": 4},
                                           matrix=matrix),
                          BlockJacobiPreconditioner)

    def test_built_objects_pass_through(self):
        matrix, _ = _problem()
        built = JacobiPreconditioner(matrix)
        assert resolve_preconds(built, matrix=matrix) is built
        with pytest.raises(ValueError, match="already-built"):
            resolve_preconds(built, matrix=matrix, omega=1.2)

    def test_overrides_merge_and_ignore_none(self):
        matrix, _ = _problem()
        ssor = resolve_preconds("ssor", matrix=matrix, omega=1.5)
        assert ssor._omega == 1.5
        assert parse_precond("ssor").get("omega") == 1.0

    def test_parse_precond_prefers_registry_names(self):
        assert parse_precond("bjacobi8") == PrecondSpec("bjacobi", {"bs": 8})
        assert parse_precond("bjacobi:bs=16").get("bs") == 16

    def test_building_without_matrix_is_actionable(self):
        with pytest.raises(ValueError, match="precond_matrix"):
            build_preconditioner("jacobi", None)
        with pytest.raises(ValueError, match="jacobi"):
            build_preconditioner("jacobi", lambda v: v)

    def test_validation_errors_name_the_offending_spec(self):
        matrix, _ = _problem()
        with pytest.raises(ValueError, match=r"ssor:omega=2\.5"):
            resolve_preconds("ssor:omega=2.5", matrix=matrix)
        with pytest.raises(ValueError, match=r"ssor:omega=-1\.0"):
            resolve_preconds("ssor:omega=-1.0", matrix=matrix)
        with pytest.raises(ValueError, match="bjacobi:bs=0"):
            resolve_preconds("bjacobi:bs=0", matrix=matrix)
        with pytest.raises(ValueError, match="poly:k=-1"):
            resolve_preconds("poly:k=-1", matrix=matrix)

    def test_bjacobi_block_size_maps_to_block_count(self):
        matrix, _ = _problem(grid=8)  # 64 rows
        built = resolve_preconds("bjacobi:bs=8", matrix=matrix)
        assert len(built.block_ranges) == 8
        whole = resolve_preconds("bjacobi:bs=100000", matrix=matrix)
        assert len(whole.block_ranges) == 1


# ---------------------------------------------------------------------------
# Solver wiring: precond= by spec on every registered solver
# ---------------------------------------------------------------------------

class TestSolverWiring:
    def test_spec_path_is_bitwise_the_explicit_path(self):
        matrix, b = _problem()
        solvers = default_solver_registry()
        via_spec = solvers.get("gmres").solve(matrix, b, precond="jacobi",
                                              tol=1e-9, maxiter=300)
        direct = gmres(matrix, b, preconditioner=JacobiPreconditioner(matrix),
                       tol=1e-9, maxiter=300)
        assert np.array_equal(np.asarray(via_spec.x), np.asarray(direct.x))
        assert via_spec.residual_norms == direct.residual_norms
        assert via_spec.info["precond"] == "jacobi"

    def test_fgmres_precond_is_the_inner_solve(self):
        matrix, b = _problem()
        solvers = default_solver_registry()
        via_spec = solvers.get("fgmres").solve(matrix, b,
                                               precond="ssor:omega=1.2",
                                               tol=1e-9, maxiter=300)
        direct = fgmres(matrix, b, tol=1e-9, maxiter=300,
                        inner_solve=SsorPreconditioner(matrix, omega=1.2))
        assert np.array_equal(np.asarray(via_spec.x), np.asarray(direct.x))
        assert via_spec.info["precond"] == "ssor:omega=1.2"

    @pytest.mark.parametrize(
        "name", ["gmres", "fgmres", "pipelined_gmres", "cg", "pipelined_cg",
                 "sdc_gmres", "ft_gmres"]
    )
    def test_every_registered_solver_accepts_precond_specs(self, name):
        matrix, b = _problem()
        solver = default_solver_registry().get(name)
        params = (
            {"tol": 1e-8, "outer_maxiter": 30, "inner_maxiter": 10}
            if name == "ft_gmres" else {"tol": 1e-8, "maxiter": 400}
        )
        result = solver.solve(matrix, b, precond="jacobi", **params)
        assert result.converged
        assert result.info["precond"] == "jacobi"
        residual = np.linalg.norm(matrix.matvec(np.asarray(result.x)) - b)
        assert residual <= 1e-6 * np.linalg.norm(b)

    def test_unknown_precond_name_is_actionable(self):
        matrix, b = _problem()
        with pytest.raises(ValueError, match="ilu"):
            default_solver_registry().get("gmres").solve(
                # repro: allow(spec-strings) -- unknown kind is the point
                matrix, b, precond="ilu", tol=1e-8, maxiter=100
            )

    def test_wrapped_operator_needs_precond_matrix(self):
        matrix, b = _problem()
        solver = default_solver_registry().get("gmres")
        with pytest.raises(ValueError, match="precond_matrix"):
            solver.solve(matrix.matvec, b, precond="jacobi",
                         tol=1e-8, maxiter=100)
        result = solver.solve(matrix.matvec, b, precond="jacobi",
                              precond_matrix=matrix, tol=1e-8, maxiter=100)
        assert result.converged

    def test_proxy_objects_pass_through_and_are_labelled(self):
        matrix, b = _problem()
        with reliability.unreliable("none") as dom:
            proxy = dom.preconditioner(JacobiPreconditioner(matrix))
            result = default_solver_registry().get("fgmres").solve(
                matrix, b, precond=proxy, tol=1e-8, maxiter=300
            )
        assert result.converged
        assert result.info["precond"] == "DomainPreconditioner"


# ---------------------------------------------------------------------------
# Domain proxy mechanics
# ---------------------------------------------------------------------------

class TestDomainPreconditioner:
    def test_counts_applications_and_charges_flops(self):
        matrix, _ = _problem(grid=6)
        with reliability.unreliable("none") as dom:
            proxy = dom.preconditioner(JacobiPreconditioner(matrix),
                                       flops_per_call=10.0)
            v = np.ones(matrix.n_rows)
            z1 = proxy(v)
            z2 = proxy.apply(v)
        assert proxy.applications == 2
        assert proxy.flops == 20.0
        assert dom.flops == 20.0
        assert np.array_equal(z1, z2)
        assert dom.faults_injected() == 0

    def test_identity_wrap_copies_and_injects(self):
        with reliability.unreliable("bitflip:p=1.0,bits=52..62",
                                    seed=5) as dom:
            proxy = dom.preconditioner(None)
            v = np.ones(16)
            z = proxy(v)
        assert np.array_equal(v, np.ones(16))  # input untouched
        assert dom.faults_injected() == 1
        assert np.sum(z != 1.0) == 1

    def test_deterministic_injection_stream(self):
        matrix, _ = _problem(grid=6)
        outputs = []
        for _ in range(2):
            with reliability.unreliable("bitflip:p=0.5", seed=42) as dom:
                proxy = dom.preconditioner(JacobiPreconditioner(matrix))
                outputs.append(
                    np.concatenate([proxy(np.ones(matrix.n_rows))
                                    for _ in range(5)])
                )
        assert np.array_equal(outputs[0], outputs[1])

    def test_bare_callable_base(self):
        with reliability.unreliable("none") as dom:
            proxy = dom.preconditioner(lambda v: 2.0 * np.asarray(v))
            assert np.array_equal(proxy(np.ones(4)), 2.0 * np.ones(4))


# ---------------------------------------------------------------------------
# The paper's claim as an executable assertion
# ---------------------------------------------------------------------------

class TestSelectiveReliabilityParity:
    """FGMRES converges with an unreliable preconditioner; the same
    fault model on the reliable-path operator degrades the solve."""

    TOL = 1e-8
    # Pinned parity tolerance: the unreliable-preconditioner answer
    # must match the reliable answer to this relative error.
    PARITY = 1e-6

    def _reference(self, matrix, b, ssor):
        result = fgmres(matrix, b, tol=self.TOL, maxiter=300,
                        inner_solve=ssor)
        assert result.converged
        return np.asarray(result.x)

    def test_unreliable_preconditioner_converges_to_reliable_answer(self):
        matrix, b = _problem(grid=10, seed=7)
        ssor = SsorPreconditioner(matrix, omega=1.2)
        x_ref = self._reference(matrix, b, ssor)

        # The issue's literal spec first: a realistically rare rate.
        for spec, seed in (("bitflip:p=1e-4", 3), ("bitflip:p=0.5,bits=52..62", 3)):
            with reliability.unreliable(spec, seed=seed) as dom:
                # Exponent-bit flips can produce ~1e300 values in the
                # unreliable domain; the reliable outer iteration vets
                # and discards them, so the overflow is expected noise.
                with np.errstate(over="ignore", invalid="ignore"), \
                        warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    result = fgmres(matrix, b, tol=self.TOL, maxiter=300,
                                    inner_solve=dom.preconditioner(ssor))
            assert result.converged, spec
            error = np.linalg.norm(np.asarray(result.x) - x_ref)
            assert error <= self.PARITY * np.linalg.norm(x_ref), spec

        # The aggressive rate must actually have exercised the injector,
        # otherwise the parity assertion proves nothing.
        assert dom.faults_injected() > 0

    def test_same_fault_in_reliable_domain_degrades_the_solve(self):
        matrix, b = _problem(grid=10, seed=7)
        ssor = SsorPreconditioner(matrix, omega=1.2)
        x_ref = self._reference(matrix, b, ssor)

        with reliability.unreliable("bitflip:p=0.5,bits=52..62", seed=3) as dom:
            operator = dom.operator(matrix.matvec,
                                    flops_per_call=2.0 * matrix.nnz)
            with np.errstate(over="ignore", invalid="ignore"):
                result = fgmres(operator, b, tol=self.TOL, maxiter=300,
                                inner_solve=ssor)
        assert dom.faults_injected() > 0
        x = np.asarray(result.x)
        finite = bool(np.all(np.isfinite(x)))
        error = (
            np.linalg.norm(x - x_ref) / np.linalg.norm(x_ref)
            if finite else np.inf
        )
        degraded = (not result.converged) or error > self.PARITY
        assert degraded, (result.converged, error)


# ---------------------------------------------------------------------------
# E9 driver contract
# ---------------------------------------------------------------------------

class TestE9Driver:
    def test_smoke_configuration(self):
        from repro.experiments import e9_precond

        result = e9_precond.run(**e9_precond.SPEC.smoke)
        assert result.experiment == "E9"
        assert result.summary["n_runs"] == 4
        assert result.summary["n_correct"] == 4
        assert result.summary["total_faults_injected"] == 0

    def test_registered_and_swept_by_the_campaign_layer(self):
        from repro.campaign.builtin import builtin_campaign
        from repro.campaign.registry import default_registry

        driver = default_registry().get("E9")
        assert driver.name == "precond"
        assert driver.accepts("preconds")
        scenarios = builtin_campaign("precond")
        assert scenarios and all(s.experiment == "E9" for s in scenarios)
        targets = {s.params.get("target") for s in scenarios}
        assert {"precond", "operator"} <= targets

    def test_selective_target_beats_operator_target_under_faults(self):
        from repro.experiments import e9_precond

        common = dict(grid=8, solvers=("fgmres",),
                      preconds=("ssor", "poly2", "bjacobi8"),
                      faults="bitflip:p=0.2,bits=52..62", seed=2013)
        selective = e9_precond.run(target="precond", **common)
        control = e9_precond.run(target="operator", **common)
        assert selective.summary["total_faults_injected"] > 0
        assert (
            selective.summary["n_correct"] >= control.summary["n_correct"]
        )
        # Selective reliability keeps every flexible solve correct.
        assert selective.summary["n_correct"] == selective.summary["n_runs"]

    def test_rejects_unknown_target(self):
        from repro.experiments import e9_precond

        with pytest.raises(ValueError):
            e9_precond.run(grid=6, target="everything")
