"""Tests for the declarative reliability layer.

Covers the :class:`FaultSpec` wire formats (property-based string/dict
round-trips), the fault-model registry contract, the capability
surface of every model kind, the ``unreliable()``/``reliable()``
domain context managers, the engine's :class:`FaultInjectionPolicy`,
the simmpi spec resolution, old-vs-new injection parity for the
E1/E6/E8 drivers, fault-model composition under FT-GMRES, and the
deprecation shims of the historical ``repro.faults`` / ``repro.srp``
import paths.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import (
    BitflipFaults,
    FailurePlan,
    FaultCapabilityError,
    FaultSpec,
    MessageCorruptor,
    NoFaults,
    PerturbationInjector,
    build_model,
    compose,
    default_fault_registry,
    derive_fault_seed,
    derive_seed,
    fault_names,
    fault_stream,
    reliable,
    resolve_faults,
    unreliable,
)
from repro.utils.rng import RngFactory


# ---------------------------------------------------------------------------
# FaultSpec wire formats
# ---------------------------------------------------------------------------

# Words the scalar parser claims for itself; bare-name values must not
# collide with them (or with numeric literals like "inf").
_RESERVED = {"true", "false", "none", "null", "inf", "infinity", "nan"}

_names = st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True).filter(
    lambda s: s.lower() not in _RESERVED
)
_scalars = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.none(),
    _names,
)
_int_pairs = st.tuples(st.integers(0, 63), st.integers(0, 63))
_int_lists = st.lists(
    st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=5
).map(tuple)
_values = st.one_of(_scalars, _int_pairs, _int_lists)
_param_maps = st.dictionaries(_names, _values, max_size=5)
_kinds = st.sampled_from(
    ["none", "bitflip", "perturb", "msg_corrupt", "proc_fail", "basis_bitflip"]
)


class TestFaultSpec:
    def test_parse_string(self):
        spec = FaultSpec.parse("bitflip:p=1e-4,bits=52..62,target=matvec")
        assert spec.kind == "bitflip"
        assert spec.params["p"] == 1e-4
        assert spec.params["bits"] == (52, 62)
        assert spec.params["target"] == "matvec"

    def test_parse_typed_values(self):
        spec = FaultSpec.parse(
            "proc_fail:times=1.5;3.0,ranks=1;2,model=weibull,n=4,on=true,off=none"
        )
        assert spec.params["times"] == (1.5, 3.0)
        assert spec.params["ranks"] == (1, 2)
        assert spec.params["model"] == "weibull"
        assert spec.params["n"] == 4
        assert spec.params["on"] is True
        assert spec.params["off"] is None

    def test_parse_is_case_and_space_tolerant(self):
        assert FaultSpec.parse("BitFlip: p = 0.5") == FaultSpec.parse("bitflip:p=0.5")

    def test_parse_compose_string(self):
        spec = FaultSpec.parse("bitflip:p=0.05+proc_fail:mtbf=3600.0")
        assert spec.kind == "compose"
        assert [child.kind for child in spec.children] == ["bitflip", "proc_fail"]
        assert FaultSpec.parse(spec.to_string()) == spec

    def test_parse_idempotent_on_spec_and_dict(self):
        spec = FaultSpec.parse("bitflip:p=0.1")
        assert FaultSpec.parse(spec) is spec
        assert FaultSpec.parse({"kind": "bitflip", "p": 0.1}) == spec

    def test_malformed_strings_raise(self):
        for text in ("", "bitflip:p", "bitflip:=1", "a+", "bad kind:x=1"):
            with pytest.raises(ValueError):
                FaultSpec.parse(text)

    def test_compose_requires_two_children(self):
        with pytest.raises(ValueError):
            FaultSpec("compose", {}, ())
        single = compose("bitflip:p=0.1")
        assert single.kind == "bitflip"

    def test_compose_flattens(self):
        nested = compose("bitflip:p=0.1", compose("perturb:value=1.0", "proc_fail:rank=1"))
        assert [c.kind for c in nested.children] == ["bitflip", "perturb", "proc_fail"]

    def test_single_element_lists_round_trip(self):
        spec = FaultSpec("proc_fail", {"times": (1.5,), "ranks": (1,)})
        assert spec.to_string() == "proc_fail:ranks=1;,times=1.5;"
        assert FaultSpec.parse(spec.to_string()) == spec
        with pytest.raises(ValueError):
            FaultSpec("bitflip", {"times": ()}).to_string()

    def test_with_params_drops_none_overrides(self):
        spec = FaultSpec.parse("bitflip:p=0.1")
        assert spec.with_params(bits=None) == spec
        assert spec.with_params(bits=(52, 62)).params["bits"] == (52, 62)

    def test_unknown_kind_rejected_by_build(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            build_model("warp_core_breach:p=1.0")

    @given(kind=_kinds, params=_param_maps)
    @settings(max_examples=150, deadline=None)
    def test_string_round_trip(self, kind, params):
        spec = FaultSpec(kind, params)
        assert FaultSpec.parse(spec.to_string()) == spec

    @given(kind=_kinds, params=_param_maps)
    @settings(max_examples=150, deadline=None)
    def test_dict_round_trip(self, kind, params):
        spec = FaultSpec(kind, params)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @given(
        left=_param_maps.map(lambda p: FaultSpec("bitflip", p)),
        right=_param_maps.map(lambda p: FaultSpec("proc_fail", p)),
    )
    @settings(max_examples=50, deadline=None)
    def test_compose_round_trip(self, left, right):
        spec = compose(left, right)
        assert FaultSpec.parse(spec.to_string()) == spec
        assert FaultSpec.from_dict(spec.to_dict()) == spec


# ---------------------------------------------------------------------------
# Registry contract
# ---------------------------------------------------------------------------


class TestFaultRegistry:
    def test_every_named_model_instantiates_serializes_round_trips(self):
        registry = default_fault_registry()
        assert len(registry) >= 8
        for entry in registry:
            model = entry.build()
            text = model.describe()
            assert FaultSpec.parse(text) == entry.spec
            assert FaultSpec.from_dict(entry.spec.to_dict()) == entry.spec
            assert entry.experiments, entry.name

    def test_expected_names_present(self):
        names = fault_names()
        for name in ("none", "bitflip", "bitflip_exponent", "basis_bitflip",
                     "sdc_value", "msg_corrupt", "proc_fail"):
            assert name in names

    def test_resolve_by_name_spec_dict_and_model(self):
        by_name = resolve_faults("bitflip_exponent")
        by_spec = resolve_faults("bitflip:p=0.02,bits=52..62")
        by_dict = resolve_faults({"kind": "bitflip", "p": 0.02, "bits": (52, 62)})
        assert by_name.spec == by_spec.spec == by_dict.spec
        assert resolve_faults(by_name) is by_name
        assert isinstance(resolve_faults(None), NoFaults)

    def test_resolve_overrides_merge(self):
        model = resolve_faults("bitflip", p=0.5, bits=(0, 51))
        assert model.probability == 0.5
        assert model.bits == (0, 51)
        # None overrides keep the named default.
        assert resolve_faults("bitflip", p=None).probability == 0.02

    def test_unknown_name_reported(self):
        with pytest.raises(KeyError, match="unknown fault model"):
            default_fault_registry().get("cosmic_ray")


# ---------------------------------------------------------------------------
# Model capabilities
# ---------------------------------------------------------------------------


class TestFaultModels:
    def test_bitflip_injector_corrupts(self):
        model = resolve_faults("bitflip:p=1.0,bits=52..62")
        injector = model.injector(seed=7)
        data = np.ones(16)
        injector.maybe_inject(data, now=0.0)
        assert injector.n_injected == 1
        assert np.sum(data != 1.0) == 1

    def test_bitflip_injector_matches_legacy_wiring(self):
        # Spec-driven wiring must replay the historical draw order:
        # Bernoulli schedule and victim selection share one generator.
        from repro.reliability.injector import ArrayInjector
        from repro.reliability.schedule import BernoulliPerCallSchedule

        rng_a = RngFactory(11).spawn("x")
        rng_b = RngFactory(11).spawn("x")
        legacy = ArrayInjector(
            schedule=BernoulliPerCallSchedule(0.3, rng=rng_a), rng=rng_a,
            target="plain_matvec",
        )
        modern = resolve_faults("bitflip:p=0.3").injector(
            rng_b, target="plain_matvec"
        )
        data_a, data_b = np.arange(1.0, 33.0), np.arange(1.0, 33.0)
        for now in range(40):
            legacy.maybe_inject(data_a, now=float(now))
            modern.maybe_inject(data_b, now=float(now))
        assert legacy.n_injected == modern.n_injected > 0
        np.testing.assert_array_equal(data_a, data_b)

    def test_perturb_injector_overwrite_and_scale(self):
        overwrite = PerturbationInjector(
            resolve_faults("none").schedule(), 0, value=123.0
        )
        data = np.zeros(4)
        overwrite.schedule = resolve_faults("perturb:p=1.0,value=123.0").schedule(seed=1)
        overwrite.maybe_inject(data)
        assert 123.0 in data

        scale = resolve_faults("perturb:p=1.0,scale=1000.0").injector(seed=2)
        data = np.full(4, 2.0)
        scale.maybe_inject(data)
        assert np.sum(data == 2000.0) == 1

    def test_perturb_requires_exactly_one_of_value_scale(self):
        with pytest.raises(ValueError):
            build_model("perturb:p=0.1")
        with pytest.raises(ValueError):
            build_model("perturb:p=0.1,value=1.0,scale=2.0")

    def test_proc_fail_explicit_times(self):
        plan = resolve_faults("proc_fail:times=1.5;3.0,ranks=2;1").failure_plan()
        assert [(f.time, f.rank) for f in plan] == [(1.5, 2), (3.0, 1)]

    def test_proc_fail_sampled_plan_is_seed_deterministic(self):
        model = resolve_faults("proc_fail:mtbf=10.0")
        plan_a = model.failure_plan(n_ranks=4, horizon=50.0, seed=5)
        plan_b = model.failure_plan(n_ranks=4, horizon=50.0, seed=5)
        assert [(f.time, f.rank) for f in plan_a] == [(f.time, f.rank) for f in plan_b]
        assert len(plan_a) > 0

    def test_proc_fail_needs_parameters_to_sample(self):
        with pytest.raises(ValueError, match="samples a plan"):
            resolve_faults("proc_fail:rank=1").failure_plan(n_ranks=4, horizon=1.0)

    def test_message_corruptor_only_touches_float_arrays(self):
        corruptor = MessageCorruptor(1.0, rng=3)
        payload = np.ones(8)
        corruptor(payload)
        assert corruptor.n_corrupted == 1
        assert np.sum(payload != 1.0) == 1
        assert corruptor("hello") == "hello"
        assert corruptor(5) == 5

    def test_capability_errors_are_loud(self):
        with pytest.raises(FaultCapabilityError):
            resolve_faults("proc_fail:mtbf=1.0").injector(seed=0)
        with pytest.raises(FaultCapabilityError):
            resolve_faults("bitflip:p=0.1").failure_plan(n_ranks=2)

    def test_composite_delegation(self):
        model = resolve_faults("bitflip:p=0.05,bits=52..62+proc_fail:times=1.0,rank=1")
        assert model.probability == 0.05
        assert model.bits == (52, 62)
        assert [c.kind for c in model.components()] == ["bitflip", "proc_fail"]
        assert model.component("proc_fail").rank == 1
        assert len(model.failure_plan()) == 1
        assert not model.is_null
        env = model.environment(seed=3)
        assert env.faults_injected() == 0

    def test_soft_component_selection(self):
        assert resolve_faults("bitflip:p=0.1").soft_component().kind == "bitflip"
        assert resolve_faults("sdc_value").soft_component().kind == "perturb"
        assert resolve_faults("proc_fail:mtbf=1.0").soft_component() is None
        assert resolve_faults("none").soft_component() is None
        # A zero-rate bitflip component does not count as a soft fault.
        combo = resolve_faults("bitflip:p=0.0+proc_fail:times=1.0,rank=1")
        assert combo.soft_component() is None

    def test_e2_honors_perturbation_specs(self):
        from repro.campaign.registry import default_registry

        result = default_registry().get("E2").run(
            sizes=(8,), n_trials=3, faults="perturb:p=1.0,scale=1000.0",
        )
        # Large value perturbations must be detected by the checksums
        # (they are injected as perturbations, not as bit flips).
        assert result.summary["matmul_8_detection"] == 1.0
        assert result.parameters["faults"] == "perturb:p=1.0,scale=1000.0"

    def test_environment_honors_max_faults_and_target(self):
        model = resolve_faults("bitflip:p=1.0,max_faults=1,target=net")
        env = model.environment(seed=1)
        data = np.ones(8)
        for _ in range(5):
            env.unreliable_domain.touch(data.copy())
        assert env.faults_injected() == 1
        assert env.unreliable_domain.injector.target == "net"

    def test_perturb_injector_handles_non_contiguous_views(self):
        injector = resolve_faults("perturb:p=1.0,value=123.0").injector(seed=2)
        base = np.zeros((4, 4))
        view = base.T[:, :3]  # non-contiguous
        injector.maybe_inject(view)
        assert injector.n_injected == 1
        assert np.sum(base == 123.0) == 1

    def test_null_components_do_not_shadow_active_ones(self):
        # compose(control, extra): the "none" child supports every
        # capability as a no-op and must not win the delegation.
        combo = resolve_faults("none+proc_fail:times=1.5,rank=1")
        assert len(combo.failure_plan()) == 1
        injector = resolve_faults("none+bitflip:p=1.0").injector(seed=1)
        data = np.ones(8)
        injector.maybe_inject(data)
        assert injector.n_injected == 1

    def test_null_model(self):
        model = resolve_faults("none")
        assert model.is_null
        assert model.probability == 0.0
        data = np.ones(4)
        model.injector(seed=1).maybe_inject(data)
        np.testing.assert_array_equal(data, 1.0)
        assert len(model.failure_plan()) == 0


class TestSeeding:
    def test_derive_seed_matches_campaign_runner(self):
        from repro.campaign.runner import derive_seed as runner_derive_seed

        assert runner_derive_seed is derive_seed
        assert derive_seed(2013, "abc") == derive_seed(2013, "abc")
        assert derive_seed(2013, "abc") != derive_seed(2013, "abd")

    def test_fault_stream_matches_driver_idiom(self):
        # The E8 idiom: RngFactory(seed).spawn("faults/<name>") -- the
        # canonical stream must be bit-identical so direct calls and
        # campaign runs draw the same fault sequences.
        direct = RngFactory(2013).spawn("faults/gmres")
        canonical = fault_stream(2013, "gmres")
        assert direct.integers(0, 2**31 - 1) == canonical.integers(0, 2**31 - 1)
        assert derive_fault_seed(2013, "gmres") == int(
            RngFactory(2013).spawn("faults/gmres").integers(0, 2**31 - 1)
        )


# ---------------------------------------------------------------------------
# Domain context managers
# ---------------------------------------------------------------------------


class TestDomains:
    def test_unreliable_domain_corrupts_and_counts(self):
        with unreliable("bitflip:p=1.0", seed=3) as domain:
            data = domain.touch(np.ones(8))
            assert domain.faults_injected() == 1
            assert np.sum(data != 1.0) == 1

    def test_reliable_domain_never_corrupts(self):
        with reliable() as domain:
            data = domain.touch(np.ones(8))
            np.testing.assert_array_equal(data, 1.0)
            assert domain.faults_injected() == 0

    def test_domain_operator_under_a_registered_solver(self):
        from repro.krylov.registry import default_solver_registry
        from repro.linalg.matgen import poisson_2d

        matrix = poisson_2d(6)
        b = np.ones(matrix.n_rows)
        with unreliable("bitflip:p=0.3,bits=0..20", seed=5) as domain:
            operator = domain.operator(matrix.matvec, flops_per_call=2.0 * matrix.nnz)
            result = default_solver_registry().get("gmres").solve(
                operator, b, tol=1e-8, restart=20, maxiter=200
            )
            assert domain.faults_injected() > 0
            assert domain.flops > 0
            assert result.iterations > 0


# ---------------------------------------------------------------------------
# Engine resilience-policy surface
# ---------------------------------------------------------------------------


class TestFaultInjectionPolicy:
    def test_injects_into_arnoldi_basis(self):
        from repro.krylov.engine import FaultInjectionPolicy
        from repro.krylov.gmres import gmres
        from repro.linalg.matgen import poisson_2d

        matrix = poisson_2d(8)
        b = np.ones(matrix.n_rows)
        policy = FaultInjectionPolicy.from_spec("bitflip:p=0.5", seed=11)
        result = gmres(matrix, b, policy=policy, tol=1e-8, restart=30, maxiter=200)
        assert policy.n_injected > 0
        assert result.info["faults_injected"] == policy.n_injected

    def test_composes_with_detection_policy(self):
        from repro.krylov.engine import (
            CompositePolicy,
            FaultInjectionPolicy,
            ResidualGuardPolicy,
        )
        from repro.krylov.gmres import gmres
        from repro.linalg.matgen import poisson_2d

        matrix = poisson_2d(8)
        b = np.ones(matrix.n_rows)
        inject = FaultInjectionPolicy.from_spec(
            "bitflip:p=0.3,bits=55..62", seed=4
        )
        guard = ResidualGuardPolicy(growth_factor=1e4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = gmres(
                matrix, b, policy=CompositePolicy([inject, guard]),
                tol=1e-8, restart=30, maxiter=120,
            )
        assert inject.n_injected > 0
        assert result.detected_faults == guard.detections


# ---------------------------------------------------------------------------
# simmpi integration
# ---------------------------------------------------------------------------


class TestSimmpiFaultSpecs:
    def test_coerce_failure_plan_from_spec(self):
        from repro.simmpi.runtime import coerce_failure_plan

        plan = coerce_failure_plan("proc_fail:times=0.5;1.5,ranks=1;2", 4)
        assert [(f.time, f.rank) for f in plan] == [(0.5, 1), (1.5, 2)]
        assert len(coerce_failure_plan(None, 4)) == 0
        assert len(coerce_failure_plan("bitflip:p=0.5", 4)) == 0
        existing = FailurePlan.single(1.0, 0)
        assert coerce_failure_plan(existing, 4) is existing

    def test_runtime_resolves_composite_faults(self):
        from repro.simmpi.runtime import SimRuntime

        runtime = SimRuntime(
            4, faults="bitflip:p=0.5+proc_fail:times=0.25;0.75,ranks=1;2"
        )
        assert [(f.time, f.rank) for f in runtime.failure_plan] == [
            (0.25, 1), (0.75, 2),
        ]

    def test_message_corruption_is_deterministic(self):
        from repro.simmpi.runtime import run_spmd

        def program(comm):
            if comm.rank == 0:
                comm.send(np.ones(64), dest=1)
                return 0.0
            return float(np.sum(comm.recv(source=0)))

        first = run_spmd(2, program, faults="msg_corrupt:p=1.0,bits=0..20",
                         fault_seed=3)
        second = run_spmd(2, program, faults="msg_corrupt:p=1.0,bits=0..20",
                          fault_seed=3)
        clean = run_spmd(2, program)
        assert first[1] == second[1]
        assert first[1] != clean[1] == 64.0


# ---------------------------------------------------------------------------
# Old-vs-new injection parity (E1 / E6 / E8)
# ---------------------------------------------------------------------------


def _comparable(result, drop=("faults",)):
    summary = {k: v for k, v in result.summary.items() if k not in drop}
    return result.table.render(), summary


@pytest.mark.parametrize(
    "experiment,legacy_params,spec_params",
    [
        # E1: default targeted basis flip vs the explicit registry name.
        (
            "E1",
            {"grid": 8, "n_trials": 2, "inject_at": 5, "seed": 2013},
            {"grid": 8, "n_trials": 2, "inject_at": 5, "seed": 2013,
             "faults": "basis_bitflip"},
        ),
        # E6: default any-bit Bernoulli flips vs the explicit name.
        (
            "E6",
            {"grid": 8, "fault_probabilities": (0.0, 0.05), "n_trials": 1,
             "outer_maxiter": 20, "inner_maxiter": 10, "seed": 2013},
            {"grid": 8, "fault_probabilities": (0.0, 0.05), "n_trials": 1,
             "outer_maxiter": 20, "inner_maxiter": 10, "seed": 2013,
             "faults": "bitflip"},
        ),
        # E8: the golden configuration expressed as a fault spec.
        (
            "E8",
            {"grid": 8, "policy": "skeptical", "fault_probability": 0.02,
             "bit_range": (52, 62), "seed": 2013},
            {"grid": 8, "policy": "skeptical", "seed": 2013,
             "faults": "bitflip:p=0.02,bits=52..62"},
        ),
    ],
)
def test_spec_driven_injection_matches_legacy(experiment, legacy_params, spec_params):
    """The declarative fault axis replays the legacy wiring bit-for-bit."""
    from repro.campaign.registry import default_registry

    driver = default_registry().get(experiment)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        legacy = driver.run(**legacy_params)
        modern = driver.run(**spec_params)
    legacy_table, legacy_summary = _comparable(legacy)
    modern_table, modern_summary = _comparable(modern)
    assert modern_table == legacy_table
    assert modern_summary == legacy_summary


# ---------------------------------------------------------------------------
# Composition: bit flips + process failure under FT-GMRES
# ---------------------------------------------------------------------------


class TestComposition:
    SPEC = "bitflip:p=0.05,bits=0..51+proc_fail:times=1.0,rank=1"

    def test_composite_round_trips(self):
        spec = FaultSpec.parse(self.SPEC)
        assert FaultSpec.parse(spec.to_string()) == spec
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_bitflip_half_drives_ft_gmres(self):
        from repro.campaign.registry import default_registry

        result = default_registry().get("E8").run(
            grid=6, solvers=("ft_gmres",), policy="none",
            faults=self.SPEC, seed=2013,
        )
        row = result.table.rows[0]
        assert row[0] == "ft_gmres"
        assert result.summary["faults"] == FaultSpec.parse(self.SPEC).to_string()
        # The unreliable inner domain actually saw bit flips.
        assert result.summary["total_faults_injected"] > 0

    def test_proc_fail_half_drives_the_runtime(self):
        from repro.simmpi.runtime import SimRuntime

        runtime = SimRuntime(4, faults=self.SPEC)
        assert [(f.time, f.rank) for f in runtime.failure_plan] == [(1.0, 1)]


class TestSharedFaultAxisDegradation:
    """One fault axis swept over many experiments must not crash any of
    them: drivers extract the component they consume and run fault-free
    when none applies."""

    _SMALL = {
        "E1": dict(grid=8, n_trials=1, inject_at=5),
        "E2": dict(sizes=(8,), n_trials=2),
        "E3": dict(grid=8, rank_counts=(16,), iterations=5),
        "E4": dict(n_ranks=4, n_global=32, n_steps=15),
        "E5": dict(n_points=64, steps_before_failure=5, coarsening_factors=(2,)),
        "E6": dict(grid=8, fault_probabilities=(0.05,), n_trials=1,
                   outer_maxiter=12, inner_maxiter=8),
        "E7": dict(node_counts=(1000,)),
        "E8": dict(grid=6, solvers=("gmres", "ft_gmres")),
    }

    @pytest.mark.parametrize("experiment", sorted(_SMALL))
    def test_every_driver_accepts_any_fault_kind(self, experiment):
        from repro.campaign.registry import default_registry

        driver = default_registry().get(experiment)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for spec in (
                "bitflip:p=0.02,bits=52..62",
                "proc_fail:times=0.0001;,ranks=1;",
                "bitflip:p=0.02+proc_fail:times=0.0001;,ranks=1;",
            ):
                result = driver.run(faults=spec, **self._SMALL[experiment])
                assert result.table.rows

    def test_e1_degrades_bitflip_to_basis_flip_and_ignores_proc_fail(self):
        from repro.campaign.registry import default_registry

        driver = default_registry().get("E1")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            degraded = driver.run(grid=8, n_trials=1, inject_at=5,
                                  faults="bitflip:p=0.02", seed=2013)
            faultfree = driver.run(grid=8, n_trials=1, inject_at=5,
                                   faults="proc_fail:mtbf=1.0", seed=2013)
        # The recorded axis value is the *requested* spec (matching the
        # other drivers), even though E1 consumes a degraded component.
        assert degraded.parameters["faults"] == "bitflip:p=0.02"
        assert faultfree.parameters["faults"] == "proc_fail:mtbf=1.0"
        # Fault-free: nothing is ever detected or silently corrupted.
        assert all(
            faultfree.summary[key] == 0
            for key in faultfree.summary
            if key.endswith("_detection_rate") or key.endswith("_sdc_rate")
        )

    def test_e6_strips_a_pinned_when_axis_before_the_rate_sweep(self):
        from repro.campaign.registry import default_registry

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = default_registry().get("E6").run(
                grid=8, fault_probabilities=(0.05,), n_trials=1,
                outer_maxiter=12, inner_maxiter=8,
                faults="bitflip:times=1;2,bits=52..62", seed=2013,
            )
        # (a 2-element times list renders in range form; it parses back
        # to the identical tuple)
        assert result.parameters["faults"] == "bitflip:bits=52..62,times=1..2"

    def test_e4_exercises_message_corruption(self):
        from repro.campaign.registry import default_registry

        driver = default_registry().get("E4")
        corrupted = driver.run(
            n_ranks=4, n_global=32, n_steps=15,
            faults="msg_corrupt:p=1.0,bits=40..62", seed=2013,
        )
        clean = driver.run(n_ranks=4, n_global=32, n_steps=15, seed=2013)
        # Heavily corrupted halo exchanges must break the exact-match
        # correctness of the fault-free LFLR row.
        assert clean.summary["correct_0"] is True
        assert corrupted.summary["correct_0"] is False

    def test_e4_runs_fault_free_under_a_soft_fault_spec(self):
        from repro.campaign.registry import default_registry

        result = default_registry().get("E4").run(
            n_ranks=4, n_global=32, n_steps=15, faults="bitflip:p=0.02",
        )
        assert len(result.table.rows) == 1  # just the fault-free reference
        assert result.summary["correct_0"] is True

    def test_e8_ft_gmres_gets_the_perturbation_environment(self):
        from repro.campaign.registry import default_registry

        result = default_registry().get("E8").run(
            grid=6, solvers=("ft_gmres",), policy="none",
            faults="perturb:p=0.5,scale=1000.0", seed=2013,
        )
        # The injected faults must be value perturbations, not the
        # bit flips ft_gmres's internal environment would produce.
        assert result.summary["total_faults_injected"] > 0
        from repro.reliability import resolve_faults

        model = resolve_faults("perturb:p=0.5,scale=1000.0")
        from repro.reliability.models import PerturbationInjector

        env = model.environment(seed=1)
        assert isinstance(env.unreliable_domain.injector, PerturbationInjector)


# ---------------------------------------------------------------------------
# Campaign integration
# ---------------------------------------------------------------------------


class TestCampaignFaultAxis:
    def test_solvers_campaign_sweeps_fault_specs(self):
        from repro.campaign.builtin import builtin_campaign

        scenarios = builtin_campaign("solvers")
        fault_values = {s.params["faults"] for s in scenarios}
        assert "none" in fault_values
        assert any(v.startswith("bitflip:") for v in fault_values)
        assert any(v.startswith("perturb:") for v in fault_values)
        # Spec strings must be stable scenario-key material.
        keys = {s.key for s in scenarios}
        assert len(keys) == len(scenarios)

    def test_runner_resolves_fault_scenarios(self):
        from repro.campaign.runner import CampaignRunner
        from repro.campaign.spec import Scenario

        runner = CampaignRunner(store=None)
        scenario = Scenario(
            "E8", {"grid": 6, "solvers": ("gmres",), "faults": "bitflip:p=0.02"}
        )
        resolved = runner.resolve(scenario)
        assert resolved.params["seed"] == derive_seed(2013, scenario.key)
        outcome = runner.run([scenario])[0]
        assert outcome.status == "completed"
        assert outcome.result["parameters"]["faults"] == "bitflip:p=0.02"


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


class TestDeprecatedShims:
    @pytest.mark.parametrize(
        "old,new",
        [
            ("repro.faults", "repro.reliability"),
            ("repro.faults.bitflip", "repro.reliability.bitflip"),
            ("repro.faults.schedule", "repro.reliability.schedule"),
            ("repro.faults.injector", "repro.reliability.injector"),
            ("repro.faults.process", "repro.reliability.process"),
            ("repro.faults.sdc", "repro.reliability.sdc"),
            ("repro.faults.events", "repro.reliability.events"),
            ("repro.srp", "repro.reliability"),
            ("repro.srp.region", "repro.reliability.domain"),
            ("repro.srp.context", "repro.reliability.environment"),
            ("repro.srp.cost", "repro.reliability.cost"),
            ("repro.srp.tmr", "repro.reliability.tmr"),
        ],
    )
    def test_old_path_warns_and_re_exports(self, old, new):
        sys.modules.pop(old, None)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            module = importlib.import_module(old)
        target = importlib.import_module(new)
        exported = getattr(module, "__all__", None) or target.__all__
        assert exported
        for name in exported:
            if hasattr(target, name):
                assert getattr(module, name) is getattr(target, name), name

    def test_shim_objects_are_identical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            # repro: allow(deprecated-import)
            import repro.faults as old_faults
            import repro.srp as old_srp  # repro: allow(deprecated-import)
        from repro.reliability import ArrayInjector, SelectiveReliabilityEnvironment

        assert old_faults.ArrayInjector is ArrayInjector
        assert old_srp.SelectiveReliabilityEnvironment is SelectiveReliabilityEnvironment
