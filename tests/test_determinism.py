"""Determinism of fault injection: same seed => same faults, same work.

Three layers, from kernel to campaign:

1. a seeded faulty GMRES solve produces an identical fault-event log
   and identical ``SolveResult.info["kernels"]`` call counters across
   repeated in-process runs;
2. the same holds when the runs execute in separate ``multiprocessing``
   worker processes (fresh interpreters: no hidden dependence on
   process state or hash randomization);
3. the campaign runner produces byte-identical serialized results for
   the same scenario whether it runs scenarios sequentially or on a
   worker pool.

Wall-clock fields (``kernels.seconds``, outcome ``elapsed``) are the
only quantities allowed to differ.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Scenario
from repro.reliability.injector import ArrayInjector
from repro.reliability.schedule import BernoulliPerCallSchedule
from repro.krylov.gmres import gmres
from repro.linalg.matgen import poisson_2d
from repro.utils.rng import RngFactory

SEED = 1234


def run_faulty_solve(seed: int):
    """One seeded GMRES solve with Bernoulli matvec corruption.

    Module-level so it pickles into multiprocessing workers.  Returns
    only deterministic artifacts: the fault-event log (as tuples) and
    the kernel *call counts* (never the seconds).
    """
    matrix = poisson_2d(8)
    factory = RngFactory(seed)
    b = factory.spawn("rhs").standard_normal(matrix.n_rows)
    rng = factory.spawn("faults")
    injector = ArrayInjector(
        schedule=BernoulliPerCallSchedule(0.05, rng=rng), rng=rng,
        target="matvec",
    )
    calls = {"n": 0}

    def unreliable_op(x):
        calls["n"] += 1
        return injector.maybe_inject(matrix.matvec(x), now=float(calls["n"]))

    result = gmres(unreliable_op, b, tol=1e-8, restart=20, maxiter=200)
    events = tuple(
        (e.kind, e.target, e.location, e.bit, e.time, e.magnitude)
        for e in injector.session.events
    )
    return {
        "events": events,
        "kernel_counts": dict(result.info["kernels"]["counts"]),
        "iterations": result.iterations,
        "residuals": tuple(result.residual_norms),
    }


def test_same_seed_same_faults_in_process():
    first = run_faulty_solve(SEED)
    second = run_faulty_solve(SEED)
    assert first["events"]  # the schedule must actually have fired
    assert first == second


def test_different_seed_different_faults():
    assert run_faulty_solve(SEED)["events"] != run_faulty_solve(SEED + 1)["events"]


def test_same_seed_same_faults_across_processes():
    # A bare Pool is exactly right here: the test checks numeric
    # reproducibility across interpreter processes, not robustness.
    with multiprocessing.Pool(processes=2) as pool:  # repro: allow(process-safety)
        results = pool.map(run_faulty_solve, [SEED, SEED])
    assert results[0]["events"]
    assert results[0] == results[1]
    # Workers agree with the parent process too.
    assert results[0] == run_faulty_solve(SEED)


def _strip_wallclock(result_dict: dict) -> dict:
    """Drop the only legitimately nondeterministic fields."""
    cleaned = dict(result_dict)
    summary = dict(cleaned.get("summary", {}))
    summary.pop("kernel_seconds", None)
    cleaned["summary"] = summary
    return cleaned


@pytest.mark.parametrize("experiment", ["E1", "E6"])
def test_campaign_runner_deterministic_under_multiprocessing(experiment):
    from repro.campaign.registry import default_registry

    spec = default_registry().get(experiment).spec
    scenarios = [Scenario(experiment, spec.smoke, tag="det")] * 2

    parallel = CampaignRunner(workers=2, base_seed=99).run(scenarios)
    sequential = CampaignRunner(workers=1, base_seed=99).run(scenarios)

    dicts = [
        _strip_wallclock(o.result)
        for o in parallel + sequential
        if o.status == "completed"
    ]
    assert len(dicts) == 4
    assert all(d == dicts[0] for d in dicts[1:]), (
        f"{experiment}: workers or repetition changed the result payload"
    )
