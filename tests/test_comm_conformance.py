"""Cross-backend communicator conformance suite (PR 10's headline).

One parametrized contract, run against **every** registered, available
communicator backend (:mod:`repro.comm.registry`):

* point-to-point FIFO ordering and tag matching;
* collective correctness against an explicitly-ordered numpy
  reference (ascending-rank, left-to-right fold -- the reduction order
  both ordered backends guarantee, making results *bit-identical*, not
  merely close);
* deadlock-freedom: a mismatched program raises the simulator's
  :class:`~repro.simmpi.errors.SimDeadlockError` (or its backend
  subclass :class:`~repro.comm.errors.CommTimeoutError`) instead of
  hanging;
* fault-injection observability: the same ``FaultSpec`` strings mean
  the same thing everywhere -- ``proc_fail`` kills a rank (virtually
  on sim, via real SIGKILL on shmem) and survivors observe
  :class:`~repro.comm.errors.ProcFailure`; ``msg_corrupt`` draws the
  identical corruption stream on every backend for the same
  ``fault_seed``.

Plus the differential gate the tentpole demands: the E3 (CG) and E6
(GMRES) distributed anchors run on sim and on shmem, and their
residual-norm histories must agree.  Both backends declare
``ordered_reduction`` (contributions reduced in ascending-rank order,
left to right, matching ``Comm._maybe_finish_collective``), and the
row-block partition, allgather ordering and local kernels are shared
code -- so every floating-point operation happens in the same order
and the comparison is **exact** (``==`` on every history entry).  For
a future backend without ordered reductions (e.g. real MPI), the
comparison helper falls back to a relative tolerance of ``1e-12`` per
entry on the residual scale: reduction reordering perturbs each dot
product by a few ulps (O(P) terms of similar magnitude), which damps,
not amplifies, through a convergent Krylov iteration; 1e-12 relative
leaves three orders of magnitude of slack over the few-ulp reality
while still catching any genuine semantic divergence.

Satellites riding along: hypothesis property tests for the collectives
(random shapes, fp64/fp32, 2-3 ranks), the shmem chaos soak (40
random mid-collective SIGKILLs must surface as ``ProcFailure`` on
survivors, never hang), and the ``process-safety`` rule coverage of
the new backend package (no queues, no untimed waits, no suppressions).
"""

from __future__ import annotations

import functools
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    BackendUnavailableError,
    BaseCommunicator,
    CommSpec,
    CommTimeoutError,
    ProcFailure,
    backend_names,
    default_backend_registry,
    resolve_backend,
)
from repro.experiments import backend_probe
from repro.simmpi.errors import SimDeadlockError
from repro.simmpi.ops import MAX, SUM
from repro.simmpi.requests import waitall, waitany

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Every registered backend that can run in this environment, as
#: pytest params -- unavailable ones (mpi4py without the package) are
#: visible skips, not silent absences.
BACKENDS = [
    pytest.param(
        entry.name,
        marks=()
        if entry.available()[0]
        else pytest.mark.skip(reason=entry.available()[1]),
    )
    for entry in default_backend_registry()
]


def launch(backend: str, procs: int, func, *args, timeout: float = 30.0, **kwargs):
    """Run ``func`` on ``backend`` with ``procs`` ranks (uniform shim)."""
    return resolve_backend(f"{backend}:procs={procs}").launch(
        func, *args, timeout=timeout, **kwargs
    )


def ordered_fold(op, contributions):
    """The reference reduction: ascending-rank, left-to-right fold."""
    return functools.reduce(op.combine, contributions)


# ----------------------------------------------------------------------
# Rank functions (module level so every backend can run them)
# ----------------------------------------------------------------------
def _identity_program(comm):
    assert isinstance(comm, BaseCommunicator)
    return (comm.rank, comm.size, comm.alive_ranks(), comm.is_alive(comm.rank))


def _fifo_program(comm, n_messages):
    if comm.rank == 0:
        for i in range(n_messages):
            comm.send(("msg", i), 1, tag=5)
        return "sent"
    if comm.rank == 1:
        return [comm.recv(0, tag=5)[1] for _ in range(n_messages)]
    return "idle"


def _tag_program(comm):
    if comm.rank == 0:
        comm.send("first-sent", 1, tag=1)
        comm.send("second-sent", 1, tag=2)
        return "sent"
    if comm.rank == 1:
        # Receive against arrival order: tag matching must buffer the
        # tag-1 message while the tag-2 receive completes.
        second = comm.recv(0, tag=2)
        first = comm.recv(0, tag=1)
        return (second, first)
    return "idle"


def _ring_program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    return comm.sendrecv(comm.rank, right, left)


def _collectives_program(comm, values):
    mine = values[comm.rank]
    out = {
        "allreduce_sum": comm.allreduce(mine),
        "allreduce_max": comm.allreduce(mine, op=MAX),
        "reduce_root": comm.reduce(mine, root=0),
        "bcast": comm.bcast(("payload", 7) if comm.rank == 0 else None),
        "gather": comm.gather(comm.rank * 10, root=0),
        "allgather": comm.allgather(comm.rank * 10),
        "scatter": comm.scatter(
            [100 + r for r in range(comm.size)] if comm.rank == 0 else None
        ),
    }
    comm.barrier()
    return out


def _nonblocking_program(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    requests = [
        comm.isend(("ring", comm.rank), right, tag=3),
        comm.irecv(left, tag=3),
        comm.iallreduce(float(comm.rank)),
    ]
    index, first = waitany(requests)
    rest = waitall(requests)
    return (index, first, rest[1][1], rest[2])


def _mismatch_program(comm):
    # Nobody ever sends on tag 9: every receive must fail fast, on
    # every backend, rather than hang the suite.  The deadlock verdict
    # may reach a rank directly (its own bounded wait expired) or as a
    # cascade (the peer broke out first, so the wait observes a
    # departed rank) -- both are loud, neither is a hang.
    try:
        comm.recv((comm.rank + 1) % comm.size, tag=9)
        return "received"
    except SimDeadlockError:
        return "timeout"
    except ProcFailure:
        return "cascaded"


def _survivor_program(comm, victim):
    comm.advance(1.0)  # crosses the victim's scheduled failure time
    try:
        comm.allreduce(1.0)
    except ProcFailure as exc:
        assert victim in exc.failed_ranks
        assert not comm.is_alive(victim)
        return ("detected", sorted(exc.failed_ranks))
    return "completed"


def _corrupt_p2p_program(comm, n):
    if comm.rank == 0:
        comm.send(np.ones(n), 1, tag=4)
        return "sent"
    if comm.rank == 1:
        return comm.recv(0, tag=4)
    return "idle"


def _property_allreduce_program(comm, contributions, op_name):
    op = {"SUM": SUM, "MAX": MAX}[op_name]
    return comm.allreduce(contributions[comm.rank], op=op)


def _property_bcast_program(comm, payload, root):
    return comm.bcast(payload if comm.rank == root else None, root=root)


def _chaos_program(comm, steps, step_time):
    # Mixed collectives with logical-time progress; any iteration can
    # be the one the victim's SIGKILL lands in.
    completed = 0
    try:
        for step in range(steps):
            comm.advance(step_time)
            comm.allreduce(np.full(8, float(comm.rank + step)))
            comm.barrier()
            completed += 1
    except ProcFailure as exc:
        return ("detected", sorted(exc.failed_ranks), completed)
    return ("completed", [], completed)


# ----------------------------------------------------------------------
# The contract, per backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestContract:
    def test_identity_and_liveness(self, backend):
        values = launch(backend, 3, _identity_program)
        assert values == [(r, 3, [0, 1, 2], True) for r in range(3)]

    def test_p2p_fifo_ordering(self, backend):
        values = launch(backend, 3, _fifo_program, 8)
        assert values[1] == list(range(8))

    def test_tag_matching_buffers_out_of_order(self, backend):
        values = launch(backend, 2, _tag_program)
        assert values[1] == ("second-sent", "first-sent")

    def test_sendrecv_ring(self, backend):
        for procs in (2, 4):
            values = launch(backend, procs, _ring_program)
            assert values == [(r - 1) % procs for r in range(procs)]

    def test_collectives_match_ordered_numpy_reference(self, backend):
        rng = np.random.default_rng(1234)
        procs = 4
        values = [rng.standard_normal(16) for _ in range(procs)]
        results = launch(backend, procs, _collectives_program, values)
        ref_sum = ordered_fold(SUM, values)
        ref_max = ordered_fold(MAX, values)
        for rank, out in enumerate(results):
            # Bit-identical, not approximately equal: ordered backends
            # promise the exact ascending-rank fold.
            assert np.array_equal(out["allreduce_sum"], ref_sum)
            assert np.array_equal(out["allreduce_max"], ref_max)
            if rank == 0:
                assert np.array_equal(out["reduce_root"], ref_sum)
                assert out["gather"] == [r * 10 for r in range(procs)]
            else:
                assert out["reduce_root"] is None
                assert out["gather"] is None
            assert out["bcast"] == ("payload", 7)
            assert out["allgather"] == [r * 10 for r in range(procs)]
            assert out["scatter"] == 100 + rank

    def test_single_rank_degenerate_collectives(self, backend):
        values = launch(backend, 1, _collectives_program, [np.arange(4.0)])
        out = values[0]
        assert np.array_equal(out["allreduce_sum"], np.arange(4.0))
        assert out["allgather"] == [0]
        assert out["scatter"] == 100

    def test_nonblocking_and_waitany_waitall(self, backend):
        procs = 3
        results = launch(backend, procs, _nonblocking_program)
        for rank, (index, _first, ring_from, total) in enumerate(results):
            # waitany prefers already-completed requests: isend (and on
            # eager backends iallreduce) complete immediately, so the
            # returned index is never the blocking irecv.
            assert index in (0, 2)
            assert ring_from == (rank - 1) % procs
            assert total == sum(range(procs))

    def test_deadlock_freedom_under_timeout(self, backend):
        values = launch(backend, 2, _mismatch_program, timeout=2.0)
        assert "timeout" in values
        assert "received" not in values
        assert set(values) <= {"timeout", "cascaded"}

    def test_proc_fail_surfaces_as_procfailure_on_survivors(self, backend):
        victim = 1
        values = launch(
            backend, 3, _survivor_program, victim,
            faults=f"proc_fail:times=0.5,ranks={victim}",
        )
        assert values[victim] is None  # the dead rank reports nothing
        for rank in (0, 2):
            assert values[rank] == ("detected", [victim])


# ----------------------------------------------------------------------
# Cross-backend fault-spec equivalence
# ----------------------------------------------------------------------
def _available(names):
    registry = default_backend_registry()
    return [n for n in names if registry.get(n).available()[0]]


@pytest.mark.skipif(
    len(_available(["sim", "shmem"])) < 2, reason="needs both sim and shmem"
)
class TestCrossBackend:
    def test_msg_corrupt_draws_identical_stream(self):
        """``msg_corrupt`` with one seed corrupts identically everywhere.

        Both backends build the corruptor from the same factory with
        the same per-rank stream name (``messages/0``), so the first
        p2p send of rank 0 consumes the same RNG draws: the corrupted
        payload that arrives at rank 1 must be bit-identical.
        """
        received = {}
        for backend in ("sim", "shmem"):
            values = launch(
                backend, 2, _corrupt_p2p_program, 64,
                faults="msg_corrupt:p=1", fault_seed=99,
            )
            received[backend] = values[1]
        assert received["sim"].dtype == received["shmem"].dtype
        assert np.array_equal(received["sim"], received["shmem"])
        # And the corruption actually happened (p=1).
        assert not np.array_equal(received["sim"], np.ones(64))

    def test_e3_differential_cg_histories_agree(self):
        """The E3 distributed CG anchor agrees sim-vs-shmem.

        Exact comparison: see the module docstring for why ordered
        reductions make this bit-identical rather than merely close.
        """
        histories = {
            backend: backend_probe.distributed_solve(
                f"{backend}:procs=4", "cg", grid=10, tol=1e-8, seed=2013
            )
            for backend in ("sim", "shmem")
        }
        _assert_histories_agree(histories["sim"], histories["shmem"])

    def test_e6_differential_gmres_histories_agree(self):
        """The E6 distributed GMRES anchor agrees sim-vs-shmem."""
        histories = {
            backend: backend_probe.distributed_solve(
                f"{backend}:procs=4", "gmres", grid=8, tol=1e-8,
                maxiter=400, seed=2013, restart=15,
            )
            for backend in ("sim", "shmem")
        }
        _assert_histories_agree(histories["sim"], histories["shmem"])


def _assert_histories_agree(a, b):
    """Exact when both backends order reductions; 1e-12 relative else."""
    registry = default_backend_registry()
    ordered = all(
        registry.get(CommSpec.parse(result["backend"]).kind).ordered_reduction
        for result in (a, b)
    )
    assert a["iterations"] == b["iterations"]
    assert a["converged"] == b["converged"]
    norms_a, norms_b = a["residual_norms"], b["residual_norms"]
    assert len(norms_a) == len(norms_b)
    if ordered:
        assert norms_a == norms_b  # bit-identical
    else:  # tolerance path for unordered future backends (see docstring)
        scale = max(norms_a[0], norms_b[0])
        for x, y in zip(norms_a, norms_b):
            assert abs(x - y) <= 1e-12 * scale


# ----------------------------------------------------------------------
# Property-based collective tests (satellite a)
# ----------------------------------------------------------------------
finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCollectiveProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        length=st.integers(min_value=1, max_value=8),
        procs=st.sampled_from([2, 3]),
        dtype=st.sampled_from(["float64", "float32"]),
        op_name=st.sampled_from(["SUM", "MAX"]),
        data=st.data(),
    )
    def test_allreduce_matches_ordered_fold(
        self, backend, length, procs, dtype, op_name, data
    ):
        contributions = [
            np.array(
                data.draw(st.lists(finite, min_size=length, max_size=length)),
                dtype=dtype,
            )
            for _ in range(procs)
        ]
        values = launch(
            backend, procs, _property_allreduce_program, contributions, op_name
        )
        reference = ordered_fold({"SUM": SUM, "MAX": MAX}[op_name], contributions)
        for out in values:
            assert out.dtype == reference.dtype
            assert np.array_equal(out, reference)

    @settings(max_examples=6, deadline=None)
    @given(
        shape=st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=4),
        ),
        procs=st.sampled_from([2, 3]),
        dtype=st.sampled_from(["float64", "float32"]),
        root=st.integers(min_value=0, max_value=1),
        data=st.data(),
    )
    def test_bcast_delivers_root_payload_everywhere(
        self, backend, shape, procs, dtype, root, data
    ):
        n = shape[0] * shape[1]
        payload = np.array(
            data.draw(st.lists(finite, min_size=n, max_size=n)), dtype=dtype
        ).reshape(shape)
        values = launch(backend, procs, _property_bcast_program, payload, root)
        for out in values:
            assert out.dtype == payload.dtype
            assert out.shape == payload.shape
            assert np.array_equal(out, payload)


# ----------------------------------------------------------------------
# Chaos soak: random SIGKILLs mid-collective (satellite b, shmem only)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not default_backend_registry().get("shmem").available()[0],
    reason="shmem backend unavailable",
)
def test_shmem_chaos_soak_random_sigkills_never_hang():
    """40 random mid-collective SIGKILLs: detect or complete, never hang.

    Mirrors the PR 6 executor soak: a seeded RNG picks a victim rank
    and a failure time inside the program's logical-time span; the
    victim really is SIGKILLed mid-job, and every surviving rank must
    either finish (failure landed after its last collective) or
    observe ``ProcFailure`` -- within the launcher's bounded waits, so
    a hang fails the test instead of wedging CI.
    """
    rng = np.random.default_rng(20260808)
    procs, steps, step_time = 3, 5, 0.01
    outcomes = {"detected": 0, "completed": 0}
    for _ in range(40):
        victim = int(rng.integers(1, procs))
        fail_at = float(rng.uniform(0.0, steps * step_time))
        values = resolve_backend(f"shmem:procs={procs}").launch(
            _chaos_program, steps, step_time,
            faults=f"proc_fail:times={fail_at},ranks={victim}",
            timeout=10.0,
        )
        assert values[victim] is None
        for rank in range(procs):
            if rank == victim:
                continue
            status, failed, completed = values[rank]
            outcomes[status] += 1
            if status == "detected":
                assert failed == [victim]
            assert 0 <= completed <= steps
    # The time draw spans the whole program, so both outcomes occur.
    assert outcomes["detected"] > 0


# ----------------------------------------------------------------------
# Spec / registry surface
# ----------------------------------------------------------------------
class TestSpecAndRegistry:
    def test_spec_roundtrips(self):
        for text in ("sim", "shmem:procs=8", "sim:procs=2,watchdog=5.0"):
            spec = CommSpec.parse(text)
            assert CommSpec.parse(spec.to_string()) == spec
            assert CommSpec.from_dict(spec.to_dict()) == spec

    def test_spec_rejects_unknown_kind_and_params(self):
        with pytest.raises(ValueError, match="unknown communicator backend"):
            CommSpec.parse("zeromq:procs=2")  # repro: allow(spec-strings) -- unknown kind is the point
        with pytest.raises(ValueError, match="does not accept parameter"):
            CommSpec.parse("sim:timeout=5")  # repro: allow(spec-strings) -- negative fixture
        with pytest.raises(ValueError, match="positive integer"):
            CommSpec.parse("shmem:procs=0")  # repro: allow(spec-strings) -- negative fixture

    def test_registry_lists_all_kinds(self):
        assert backend_names() == ["mpi4py", "shmem", "sim"]
        for name in backend_names():
            entry = default_backend_registry().get(name)
            assert entry.name == name

    def test_mpi4py_entry_is_gated_not_hidden(self):
        entry = default_backend_registry().get("mpi4py")
        ok, reason = entry.available()
        if not ok:
            assert "mpi4py" in reason
            with pytest.raises(BackendUnavailableError):
                resolve_backend("mpi4py:procs=2").launch(_identity_program)

    def test_default_backend_is_sim(self):
        assert resolve_backend(None).name == "sim"

    def test_ordered_reduction_flags(self):
        registry = default_backend_registry()
        assert registry.get("sim").ordered_reduction
        assert registry.get("shmem").ordered_reduction
        assert not registry.get("mpi4py").ordered_reduction


# ----------------------------------------------------------------------
# process-safety rule coverage of the backend package (satellite d)
# ----------------------------------------------------------------------
class TestProcessSafetyCoverage:
    def test_backend_package_passes_process_safety_unsuppressed(self):
        """The comm package obeys the PR 6 doctrine with no waivers.

        ``process-safety`` must find nothing in :mod:`repro.comm` --
        and nothing *suppressed* either: the shmem backend is designed
        around single-writer pipes and bounded polls, so it needs no
        ``# repro: allow`` at all (the only sanctioned suppressions in
        the repo stay at the campaign executor's supervisor sites).
        """
        from repro.analysis.registry import default_rule_registry
        from repro.analysis.runner import run_analysis

        report = run_analysis(
            [REPO_ROOT / "src" / "repro" / "comm"],
            [default_rule_registry().get("process-safety")],
            repo_root=REPO_ROOT,
        )
        assert report.findings == []
        assert report.suppressed == []

    def test_no_allow_comments_in_backend_sources(self):
        for path in (REPO_ROOT / "src" / "repro" / "comm").glob("*.py"):
            assert "repro: allow" not in path.read_text(encoding="utf-8"), path
