"""Golden-table regression tests for every experiment driver (E1-E7).

Each driver runs at the small, pinned parameters of its
``SPEC.golden`` configuration; the full rendered table plus the scalar
summary entries must match the checked-in golden file byte-for-byte.
This locks the qualitative claims of the paper reproduction (who wins,
by how much, at which scale) against silent drift: any change to solver
numerics, fault schedules, RNG streams, or table formatting shows up as
a golden diff.

Regenerating after an *intentional* change::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens
    git diff tests/goldens/   # review every change before committing

Excluded from the golden text (and only these):

* wall-clock timings (``kernel_seconds`` -- the one summary entry that
  is not a pure function of the seed), and
* nested renderings (multi-line strings such as E3's ``anchor_table``),
  which are covered by the drivers' own claim tests instead.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.campaign.registry import default_registry
from repro.campaign.spec import canonical_json

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

# Summary keys that are wall-clock derived and therefore not golden.
_NONDETERMINISTIC_KEYS = {"kernel_seconds"}

_DRIVERS = list(default_registry())


def _format_scalar(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return repr(float(value))  # full precision: exact-match regression
    return str(value)


def golden_text(result) -> str:
    """The canonical golden rendering of an ExperimentResult."""
    lines = [
        f"experiment: {result.experiment}",
        f"claim: {result.claim}",
        f"parameters: {canonical_json(result.parameters)}",
        "",
        result.table.render(),
        "",
        "summary scalars:",
    ]
    for key in sorted(result.summary):
        value = result.summary[key]
        if key in _NONDETERMINISTIC_KEYS or isinstance(value, dict):
            continue
        if isinstance(value, str) and "\n" in value:
            continue
        lines.append(f"  {key} = {_format_scalar(value)}")
    return "\n".join(lines) + "\n"


def _golden_path(driver) -> pathlib.Path:
    return GOLDEN_DIR / f"{driver.experiment.lower()}_{driver.name}.txt"


@pytest.mark.parametrize("driver", _DRIVERS, ids=lambda d: d.experiment)
def test_driver_matches_golden(driver, update_goldens):
    result = driver.run(**driver.spec.golden)
    assert result.experiment == driver.experiment
    text = golden_text(result)
    path = _golden_path(driver)

    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text, encoding="utf-8")
        pytest.skip(f"updated {path}")

    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        f"pytest tests/test_goldens.py --update-goldens"
    )
    expected = path.read_text(encoding="utf-8")
    assert text == expected, (
        f"{driver.experiment} drifted from its golden table. If the change "
        f"is intentional, rerun with --update-goldens and review the diff."
    )


@pytest.mark.parametrize(
    "driver",
    [d for d in _DRIVERS if d.experiment in ("E1", "E5", "E7")],
    ids=lambda d: d.experiment,
)
def test_golden_text_is_deterministic_in_process(driver):
    """Two back-to-back runs at golden parameters render identically."""
    first = golden_text(driver.run(**driver.spec.golden))
    second = golden_text(driver.run(**driver.spec.golden))
    assert first == second


def test_goldens_cover_all_seven_experiments():
    assert {d.experiment for d in _DRIVERS} >= {f"E{i}" for i in range(1, 8)}
