"""Differential test: dense backend vs simulated-distributed backend.

For a fault-free solve the two backends run the *same* Krylov code
through the :mod:`repro.krylov.ops` dispatch layer; the only numerical
difference is the summation order inside distributed reductions.  The
residual histories must therefore agree to a pinned few-ulp tolerance
(scaled by ``||b||`` -- near convergence the raw values are ~1e-10, so
relative-to-self comparison would only measure noise), and the
iteration counts must match exactly.  A divergence here means one
backend's kernels drifted from the other's -- exactly the class of bug
a vectorization or communication-layer change can introduce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov.fgmres import fgmres
from repro.krylov.gmres import gmres
from repro.linalg.distributed import DistributedRowMatrix, DistributedVector
from repro.linalg.matgen import poisson_2d
from repro.simmpi import run_spmd
from repro.utils.rng import RngFactory

# Pinned tolerance: max elementwise |dense - distributed| residual
# difference, scaled by ||b||.  Measured headroom is ~500x (observed
# ~2e-16, i.e. machine epsilon from reduction reordering).
HISTORY_TOL = 1e-13

GRIDS = (6, 8, 10)  # 36, 64 and 100 unknowns
N_RANKS = 3  # deliberately does not divide the problem sizes evenly

_SOLVERS = {
    "gmres": lambda A, b: gmres(A, b, tol=1e-10, restart=25, maxiter=400),
    "fgmres": lambda A, b: fgmres(A, b, tol=1e-10, restart=25, maxiter=400),
}


@pytest.mark.parametrize("grid", GRIDS)
@pytest.mark.parametrize("solver_name", sorted(_SOLVERS))
def test_dense_and_distributed_histories_agree(grid, solver_name):
    solve = _SOLVERS[solver_name]
    matrix = poisson_2d(grid)
    b = RngFactory(42).spawn(f"rhs-{grid}").standard_normal(matrix.n_rows)
    b_norm = float(np.linalg.norm(b))

    dense = solve(matrix, b)
    assert dense.converged

    def program(comm):
        dist_matrix = DistributedRowMatrix.from_global(comm, matrix)
        dist_b = DistributedVector.from_global(comm, b)
        result = solve(dist_matrix, dist_b)
        return (
            result.converged,
            result.iterations,
            list(result.residual_norms),
            np.asarray(result.x.gather_global()),
        )

    for converged, iterations, history, x in run_spmd(N_RANKS, program):
        assert converged
        assert iterations == dense.iterations
        assert len(history) == len(dense.residual_norms)
        diff = np.max(
            np.abs(np.asarray(history) - np.asarray(dense.residual_norms))
        )
        assert diff <= HISTORY_TOL * b_norm, (
            f"{solver_name} grid={grid}: residual histories diverged "
            f"(max diff {diff:.3e} vs tol {HISTORY_TOL * b_norm:.3e})"
        )
        # The solutions themselves must agree to the same precision.
        assert np.allclose(x, np.asarray(dense.x), atol=HISTORY_TOL * b_norm)
