"""Tests for repro.linalg (CSR, generators, BLAS kernels, preconditioners,
checksums, distributed objects), using SciPy/NumPy dense algebra as oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg import (
    BlockJacobiPreconditioner,
    ChecksummedMatrix,
    CsrMatrix,
    DistributedRowMatrix,
    DistributedVector,
    IdentityPreconditioner,
    JacobiPreconditioner,
    NeumannPolynomialPreconditioner,
    SsorPreconditioner,
    axpy,
    back_substitution,
    block_ranges,
    checked_matmul,
    checked_matvec,
    checksum_vector,
    classical_gram_schmidt_step,
    convection_diffusion_2d,
    diagonally_dominant,
    givens_rotation,
    modified_gram_schmidt_step,
    poisson_1d,
    poisson_2d,
    poisson_3d,
    random_spd,
    tridiagonal,
    verify_checksum,
)
from repro.reliability.bitflip import flip_bit_array
from repro.linalg.blas import apply_givens
from repro.simmpi import run_spmd


class TestCsrMatrix:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((6, 4))
        dense[dense < 0.3] = 0.0
        matrix = CsrMatrix.from_dense(dense)
        assert np.allclose(matrix.to_dense(), dense)
        assert matrix.shape == (6, 4)

    def test_from_coo_sums_duplicates(self):
        matrix = CsrMatrix.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0], (2, 2))
        dense = matrix.to_dense()
        assert dense[0, 1] == 5.0 and dense[1, 0] == 4.0

    def test_matvec_matches_dense(self, rng):
        dense = rng.standard_normal((8, 8))
        matrix = CsrMatrix.from_dense(dense)
        x = rng.standard_normal(8)
        assert np.allclose(matrix.matvec(x), dense @ x)
        assert np.allclose(matrix @ x, dense @ x)

    def test_matvec_handles_empty_rows(self):
        dense = np.zeros((3, 3))
        dense[0, 0] = 2.0
        matrix = CsrMatrix.from_dense(dense)
        assert np.allclose(matrix.matvec(np.ones(3)), [2.0, 0.0, 0.0])

    def test_rmatvec_matches_dense(self, rng):
        dense = rng.standard_normal((5, 7))
        matrix = CsrMatrix.from_dense(dense)
        y = rng.standard_normal(5)
        assert np.allclose(matrix.rmatvec(y), dense.T @ y)

    def test_matvec_shape_validation(self):
        matrix = CsrMatrix.identity(4)
        with pytest.raises(ValueError):
            matrix.matvec(np.ones(5))

    def test_identity_and_diagonal(self):
        eye = CsrMatrix.identity(3)
        assert np.allclose(eye.to_dense(), np.eye(3))
        diag = CsrMatrix.diagonal([1.0, 2.0, 3.0])
        assert np.allclose(diag.diagonal_values(), [1, 2, 3])

    def test_diagonal_values_with_missing_entries(self):
        dense = np.array([[0.0, 1.0], [2.0, 5.0]])
        matrix = CsrMatrix.from_dense(dense)
        assert np.allclose(matrix.diagonal_values(), [0.0, 5.0])

    def test_row_access(self):
        matrix = poisson_1d(5)
        cols, vals = matrix.row(2)
        assert set(cols) == {1, 2, 3}
        assert np.allclose(sorted(vals), [-1.0, -1.0, 2.0])
        with pytest.raises(IndexError):
            matrix.row(10)

    def test_row_slice(self):
        matrix = poisson_1d(6)
        sub = matrix.row_slice(2, 5)
        assert sub.shape == (3, 6)
        assert np.allclose(sub.to_dense(), matrix.to_dense()[2:5, :])

    def test_transpose(self, rng):
        dense = rng.standard_normal((4, 6))
        matrix = CsrMatrix.from_dense(dense)
        assert np.allclose(matrix.transpose().to_dense(), dense.T)

    def test_add_and_scale(self):
        a = poisson_1d(4)
        twice = a + a
        assert np.allclose(twice.to_dense(), 2 * a.to_dense())
        scaled = 3.0 * a
        assert np.allclose(scaled.to_dense(), 3 * a.to_dense())

    def test_scale_rows(self):
        a = poisson_1d(3)
        scaled = a.scale_rows(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(scaled.to_dense(), np.diag([1, 2, 3]) @ a.to_dense())

    def test_structural_validation(self):
        with pytest.raises(ValueError):
            CsrMatrix([0, 2], [0, 5], [1.0, 1.0], (1, 3))  # col out of range
        with pytest.raises(ValueError):
            CsrMatrix([0, 2, 1], [0, 1], [1.0, 1.0], (2, 2))  # decreasing indptr
        with pytest.raises(ValueError):
            CsrMatrix([1, 2], [0], [1.0], (1, 2))  # indptr[0] != 0

    def test_copy_independent(self):
        a = poisson_1d(3)
        b = a.copy()
        b.data[:] = 0.0
        assert a.data.sum() != 0.0

    def test_scipy_oracle(self, rng):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        dense = rng.standard_normal((20, 20))
        dense[np.abs(dense) < 1.0] = 0.0
        ours = CsrMatrix.from_dense(dense)
        theirs = scipy_sparse.csr_matrix(dense)
        x = rng.standard_normal(20)
        assert np.allclose(ours.matvec(x), theirs @ x)


class TestGenerators:
    def test_poisson_1d_structure(self):
        dense = poisson_1d(4).to_dense()
        assert np.allclose(np.diag(dense), 2.0)
        assert np.allclose(np.diag(dense, 1), -1.0)

    def test_poisson_2d_spd(self):
        dense = poisson_2d(4).to_dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_poisson_3d_diagonal(self):
        matrix = poisson_3d(3)
        assert matrix.shape == (27, 27)
        assert np.allclose(matrix.diagonal_values(), 6.0)

    def test_poisson_row_sums_nonnegative(self):
        dense = poisson_2d(5).to_dense()
        assert np.all(dense.sum(axis=1) >= -1e-12)

    def test_convection_diffusion_nonsymmetric_and_nonsingular(self):
        dense = convection_diffusion_2d(5, peclet=20.0).to_dense()
        assert not np.allclose(dense, dense.T)
        assert abs(np.linalg.det(dense)) > 0

    def test_tridiagonal_values(self):
        dense = tridiagonal(4, -1.0, 5.0, 2.0).to_dense()
        assert np.allclose(np.diag(dense), 5.0)
        assert np.allclose(np.diag(dense, -1), -1.0)
        assert np.allclose(np.diag(dense, 1), 2.0)

    def test_diagonally_dominant_property(self):
        matrix = diagonally_dominant(30, density=0.2, rng=0).to_dense()
        offdiag = np.abs(matrix).sum(axis=1) - np.abs(np.diag(matrix))
        assert np.all(np.abs(np.diag(matrix)) > offdiag)

    def test_random_spd_condition(self):
        dense = random_spd(10, rng=0, condition=50.0).to_dense()
        eigs = np.linalg.eigvalsh(dense)
        assert eigs.min() > 0
        assert eigs.max() / eigs.min() == pytest.approx(50.0, rel=0.05)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            poisson_1d(0)
        with pytest.raises(ValueError):
            poisson_2d(-1)
        with pytest.raises(ValueError):
            diagonally_dominant(5, density=0.0)


class TestBlasKernels:
    def test_axpy(self):
        assert np.allclose(axpy(2.0, np.ones(3), np.arange(3.0)), [2, 3, 4])
        with pytest.raises(ValueError):
            axpy(1.0, np.ones(3), np.ones(4))

    def test_givens_rotation_zeroes_second_entry(self):
        for a, b in [(3.0, 4.0), (0.0, 2.0), (1.0, 0.0), (-5.0, 1e-8)]:
            c, s = givens_rotation(a, b)
            r, zero = apply_givens(c, s, a, b)
            assert abs(zero) < 1e-12 * max(abs(a), abs(b), 1.0)
            assert c * c + s * s == pytest.approx(1.0)

    def test_back_substitution_matches_solve(self, rng):
        upper = np.triu(rng.standard_normal((6, 6))) + 3 * np.eye(6)
        rhs = rng.standard_normal(6)
        assert np.allclose(back_substitution(upper, rhs), np.linalg.solve(upper, rhs))

    def test_back_substitution_singular_raises(self):
        upper = np.triu(np.ones((3, 3)))
        upper[1, 1] = 0.0
        with pytest.raises(np.linalg.LinAlgError):
            back_substitution(upper, np.ones(3))

    def test_gram_schmidt_orthogonalizes(self, rng):
        basis = np.linalg.qr(rng.standard_normal((20, 5)))[0]
        w = rng.standard_normal(20)
        for step in (modified_gram_schmidt_step, classical_gram_schmidt_step):
            w_orth, coeffs = step(basis, w, 5)
            assert np.max(np.abs(basis.T @ w_orth)) < 1e-10
            assert coeffs.shape == (5,)

    def test_gram_schmidt_reconstruction(self, rng):
        basis = np.linalg.qr(rng.standard_normal((10, 3)))[0]
        w = rng.standard_normal(10)
        w_orth, coeffs = modified_gram_schmidt_step(basis, w, 3)
        assert np.allclose(basis @ coeffs + w_orth, w)


class TestPreconditioners:
    def test_identity(self):
        precond = IdentityPreconditioner()
        v = np.arange(4.0)
        out = precond.apply(v)
        assert np.array_equal(out, v) and out is not v

    def test_jacobi_matches_diagonal_solve(self):
        matrix = poisson_2d(5)
        precond = JacobiPreconditioner(matrix)
        v = np.ones(matrix.n_rows)
        assert np.allclose(precond.apply(v), v / matrix.diagonal_values())

    def test_jacobi_rejects_zero_diagonal(self):
        matrix = CsrMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            JacobiPreconditioner(matrix)

    def test_ssor_reduces_residual(self, poisson_small, rng):
        precond = SsorPreconditioner(poisson_small, omega=1.2)
        b = rng.standard_normal(poisson_small.n_rows)
        x = precond.apply(b)
        dense = poisson_small.to_dense()
        assert np.linalg.norm(b - dense @ x) < np.linalg.norm(b)

    def test_ssor_omega_validation(self, poisson_tiny):
        with pytest.raises(ValueError):
            SsorPreconditioner(poisson_tiny, omega=2.5)

    def test_polynomial_improves_with_degree(self, poisson_tiny, rng):
        b = rng.standard_normal(poisson_tiny.n_rows)
        dense = poisson_tiny.to_dense()
        errors = []
        for degree in (0, 2, 6):
            precond = NeumannPolynomialPreconditioner(poisson_tiny, degree=degree)
            x = precond.apply(b)
            errors.append(np.linalg.norm(b - dense @ x))
        assert errors[2] < errors[1] < errors[0]

    def test_block_jacobi_single_block_is_direct_solve(self, poisson_tiny, rng):
        precond = BlockJacobiPreconditioner(poisson_tiny, n_blocks=1)
        b = rng.standard_normal(poisson_tiny.n_rows)
        assert np.allclose(poisson_tiny.to_dense() @ precond.apply(b), b)

    def test_block_jacobi_ranges_cover(self, poisson_small):
        precond = BlockJacobiPreconditioner(poisson_small, n_blocks=4)
        ranges = precond.block_ranges
        assert ranges[0][0] == 0 and ranges[-1][1] == poisson_small.n_rows
        assert all(ranges[i][1] == ranges[i + 1][0] for i in range(3))

    def test_block_jacobi_validation(self, poisson_tiny):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(poisson_tiny, n_blocks=0)


class TestChecksums:
    def test_vector_checksum_detects_flip(self, rng):
        matrix = poisson_2d(6)
        x = rng.standard_normal(matrix.n_rows)
        result, ok = checked_matvec(matrix, x)
        assert ok
        corrupted, bad = checked_matvec(
            matrix, x, corrupt=lambda y: flip_bit_array(y, 3, 60)
        )
        assert not bad

    def test_checksummed_matrix_expected_checksum(self, rng):
        dense = rng.standard_normal((5, 5))
        wrapped = ChecksummedMatrix(dense)
        x = rng.standard_normal(5)
        assert wrapped.expected_result_checksum(x) == pytest.approx(
            checksum_vector(dense @ x)
        )
        assert wrapped.shape == (5, 5)

    def test_verify_checksum_tolerances(self):
        v = np.ones(4)
        assert verify_checksum(v, 4.0)
        assert not verify_checksum(v, 5.0)
        assert not verify_checksum(np.array([np.inf, 1.0]), 4.0)

    def test_matmul_detection_and_correction(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))

        def corrupt(c):
            c = c.copy()
            c[2, 5] += 10.0
            return c

        product, report = checked_matmul(a, b, corrupt=corrupt, correct=True)
        assert report.corrected and report.corrected_index == (2, 5)
        assert np.allclose(product, a @ b)

    def test_matmul_clean_passes(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 7))
        product, report = checked_matmul(a, b)
        assert report.ok and not report.corrected
        assert np.allclose(product, a @ b)

    def test_matmul_double_error_detected_not_corrected(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))

        def corrupt(c):
            c = c.copy()
            c[0, 0] += 5.0
            c[3, 4] -= 7.0
            return c

        _, report = checked_matmul(a, b, corrupt=corrupt, correct=True)
        assert not report.ok and not report.corrected

    def test_matmul_nonfinite_corruption_corrected(self, rng):
        a = rng.standard_normal((5, 5))
        b = rng.standard_normal((5, 5))

        def corrupt(c):
            c = c.copy()
            c[1, 1] = np.inf
            return c

        product, report = checked_matmul(a, b, corrupt=corrupt, correct=True)
        assert report.corrected
        assert np.allclose(product, a @ b)

    def test_matmul_shape_validation(self):
        with pytest.raises(ValueError):
            checked_matmul(np.ones((2, 3)), np.ones((2, 3)))


class TestDistributed:
    def test_block_ranges_cover_and_balance(self):
        ranges = block_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        assert block_ranges(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
        with pytest.raises(ValueError):
            block_ranges(5, 0)

    def test_distributed_vector_dot_and_norm(self):
        global_vec = np.arange(10.0)

        def program(comm):
            vec = DistributedVector.from_global(comm, global_vec)
            other = DistributedVector.from_global(comm, np.ones(10))
            return vec.dot(other), vec.norm(), vec.norm_inf()

        for dot_val, norm_val, inf_val in run_spmd(3, program):
            assert dot_val == pytest.approx(global_vec.sum())
            assert norm_val == pytest.approx(np.linalg.norm(global_vec))
            assert inf_val == pytest.approx(9.0)

    def test_distributed_axpy_scale_gather(self):
        def program(comm):
            vec = DistributedVector.from_global(comm, np.arange(8.0))
            ones = DistributedVector.from_global(comm, np.ones(8))
            vec.axpy(2.0, ones)
            vec.scale(0.5)
            return vec.gather_global()

        for result in run_spmd(4, program):
            assert np.allclose(result, (np.arange(8.0) + 2.0) * 0.5)

    def test_distributed_matvec_matches_sequential(self, poisson_small, rng):
        x_global = rng.standard_normal(poisson_small.n_rows)
        expected = poisson_small.matvec(x_global)

        def program(comm):
            matrix = DistributedRowMatrix.from_global(comm, poisson_small)
            x = DistributedVector.from_global(comm, x_global)
            return matrix.matvec(x).gather_global()

        for result in run_spmd(4, program):
            assert np.allclose(result, expected)

    def test_distributed_diagonal(self, poisson_tiny):
        def program(comm):
            matrix = DistributedRowMatrix.from_global(comm, poisson_tiny)
            return matrix.diagonal().gather_global()

        for diag in run_spmd(3, program):
            assert np.allclose(diag, poisson_tiny.diagonal_values())

    def test_distribution_mismatch_rejected(self):
        def program(comm):
            a = DistributedVector.from_global(comm, np.ones(8))
            b = DistributedVector.from_global(comm, np.ones(9))
            try:
                a.dot(b)
                return "ok"
            except ValueError:
                return "mismatch"

        assert set(run_spmd(2, program)) == {"mismatch"}

    def test_idot_nonblocking(self):
        def program(comm):
            a = DistributedVector.from_global(comm, np.arange(6.0))
            b = DistributedVector.from_global(comm, np.ones(6))
            request = a.idot(b)
            return request.wait()

        assert all(v == pytest.approx(15.0) for v in run_spmd(3, program))
