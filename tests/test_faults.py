"""Tests for the reliability-layer mechanisms (bit flips, schedules, injectors, process failures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    ArrayInjector,
    BernoulliPerCallSchedule,
    CampaignResult,
    DeterministicSchedule,
    ExponentialFailureModel,
    FailurePlan,
    FaultEvent,
    FaultRecord,
    NeverSchedule,
    PoissonSchedule,
    SdcCampaign,
    TargetedInjector,
    WeibullFailureModel,
    bits_of,
    classify_outcome,
    flip_bit_array,
    flip_bit_float64,
    flip_random_bit,
    float_from_bits,
    relative_perturbation,
)
from repro.reliability.process import system_mtbf


class TestBitflip:
    def test_roundtrip_bits(self):
        value = 3.14159
        assert float_from_bits(bits_of(value)) == value

    def test_flip_is_involution(self):
        value = -42.5
        for bit in (0, 13, 52, 60, 63):
            flipped = flip_bit_float64(value, bit)
            assert flipped != value
            assert flip_bit_float64(flipped, bit) == value

    def test_sign_bit_flip_negates(self):
        assert flip_bit_float64(2.0, 63) == -2.0

    def test_mantissa_flip_small_relative_error(self):
        corrupted = flip_bit_float64(1.0, 0)
        assert abs(corrupted - 1.0) < 1e-15

    def test_exponent_flip_large_error(self):
        corrupted = flip_bit_float64(1.0, 62)
        assert relative_perturbation(1.0, corrupted) > 1e10 or corrupted == 0.0

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            flip_bit_float64(1.0, 64)
        with pytest.raises(ValueError):
            flip_bit_float64(1.0, -1)

    def test_flip_bit_array_out_of_place(self):
        arr = np.ones(4)
        out = flip_bit_array(arr, 2, 63)
        assert out[2] == -1.0
        assert arr[2] == 1.0

    def test_flip_bit_array_inplace(self):
        arr = np.ones(4)
        flip_bit_array(arr, 1, 63, inplace=True)
        assert arr[1] == -1.0

    def test_flip_bit_array_multi_index(self):
        arr = np.ones((2, 3))
        out = flip_bit_array(arr, (1, 2), 63)
        assert out[1, 2] == -1.0

    def test_flip_bit_array_float32_native(self):
        arr = np.ones(3, dtype=np.float32)
        out = flip_bit_array(arr, 1, 31)
        assert out.dtype == np.float32
        assert out[1] == -1.0
        assert arr[1] == 1.0  # out of place by default
        # Involution through the 32-bit pattern.
        assert flip_bit_array(out, 1, 31)[1] == 1.0

    def test_flip_bit_array_float32_bit_bounds(self):
        with pytest.raises(ValueError):
            flip_bit_array(np.ones(3, dtype=np.float32), 0, 32)

    def test_flip_bit_array_rejects_non_float(self):
        with pytest.raises(TypeError):
            flip_bit_array(np.ones(3, dtype=np.int64), 0, 1)
        with pytest.raises(TypeError):
            flip_bit_array(np.ones(3, dtype=np.float16), 0, 1)

    def test_flip_bit_array_bounds(self):
        with pytest.raises(IndexError):
            flip_bit_array(np.ones(3), 5, 1)

    def test_flip_random_bit_deterministic_with_seed(self):
        arr = np.linspace(1, 2, 8)
        out1, idx1, bit1 = flip_random_bit(arr, rng=3)
        out2, idx2, bit2 = flip_random_bit(arr, rng=3)
        assert idx1 == idx2 and bit1 == bit2
        assert np.array_equal(out1, out2)

    def test_flip_random_bit_range_respected(self):
        arr = np.ones(16)
        _, _, bit = flip_random_bit(arr, rng=1, bit_range=(52, 62))
        assert 52 <= bit <= 62

    def test_flip_random_bit_empty_rejected(self):
        with pytest.raises(ValueError):
            flip_random_bit(np.zeros(0))

    def test_relative_perturbation_nonfinite(self):
        assert relative_perturbation(1.0, float("inf")) == float("inf")
        assert relative_perturbation(1.0, float("nan")) == float("inf")


class TestSchedules:
    def test_never(self):
        schedule = NeverSchedule()
        assert schedule.due(1e9) == 0

    def test_deterministic_fires_once_each(self):
        schedule = DeterministicSchedule([1.0, 2.0, 2.0])
        assert schedule.due(0.5) == 0
        assert schedule.due(1.0) == 1
        assert schedule.due(3.0) == 2
        assert schedule.due(10.0) == 0
        assert schedule.remaining == 0

    def test_deterministic_reset(self):
        schedule = DeterministicSchedule([1.0])
        assert schedule.due(2.0) == 1
        schedule.reset()
        assert schedule.due(2.0) == 1

    def test_deterministic_rejects_negative(self):
        with pytest.raises(ValueError):
            DeterministicSchedule([-1.0])

    def test_poisson_zero_rate_never_fires(self):
        schedule = PoissonSchedule(0.0, rng=1)
        assert schedule.due(1e6) == 0

    def test_poisson_counts_grow_with_rate(self):
        low = PoissonSchedule(0.1, rng=1, horizon=100.0)
        high = PoissonSchedule(10.0, rng=1, horizon=100.0)
        assert len(high.presampled_times) > len(low.presampled_times)

    def test_poisson_lazy_mode(self):
        schedule = PoissonSchedule(1.0, rng=5)
        total = schedule.due(50.0)
        assert 10 <= total <= 120  # loose statistical bounds

    def test_bernoulli_probability_zero_and_one(self):
        assert BernoulliPerCallSchedule(0.0, rng=1).due(0) == 0
        always = BernoulliPerCallSchedule(1.0, rng=1)
        assert always.due(0) == 1

    def test_bernoulli_max_faults(self):
        schedule = BernoulliPerCallSchedule(1.0, rng=1, max_faults=2)
        assert sum(schedule.due(i) for i in range(10)) == 2
        schedule.reset()
        assert schedule.due(0) == 1


class TestInjectors:
    def test_array_injector_never_by_default(self):
        arr = np.ones(10)
        ArrayInjector().maybe_inject(arr)
        assert np.all(arr == 1.0)

    def test_array_injector_injects_on_schedule(self):
        injector = ArrayInjector(DeterministicSchedule([1.0]), rng=2, target="v")
        arr = np.ones(10)
        injector.maybe_inject(arr, now=1.0)
        assert injector.n_injected == 1
        assert np.sum(arr != 1.0) == 1
        event = injector.session.events[0]
        assert event.target == "v" and event.kind == "bitflip"

    def test_array_injector_bit_range(self):
        injector = ArrayInjector(DeterministicSchedule([0.0]), rng=3, bit_range=(63, 63))
        arr = np.ones(5)
        injector.maybe_inject(arr, now=0.0)
        assert np.sum(arr == -1.0) == 1

    def test_array_injector_float32_native(self):
        injector = ArrayInjector(DeterministicSchedule([0.0]), rng=1)
        arr = np.ones(5, dtype=np.float32)
        out = injector.maybe_inject(arr, now=0.0)
        assert out.dtype == np.float32
        assert injector.n_injected == 1
        assert np.sum(out != 1.0) == 1
        assert 0 <= injector.session.events[0].bit <= 31

    def test_array_injector_float32_clamps_bit_range(self):
        # A float64-centric exponent range keeps working on float32 by
        # clamping into the 32-bit pattern (here: the sign bit).
        injector = ArrayInjector(
            DeterministicSchedule([0.0]), rng=3, bit_range=(52, 62)
        )
        arr = np.ones(5, dtype=np.float32)
        injector.maybe_inject(arr, now=0.0)
        assert np.sum(arr == -1.0) == 1

    def test_array_injector_rejects_non_float(self):
        injector = ArrayInjector(DeterministicSchedule([0.0]), rng=1)
        with pytest.raises(TypeError):
            injector.maybe_inject(np.ones(3, dtype=np.int32), now=0.0)

    def test_array_injector_reset(self):
        injector = ArrayInjector(DeterministicSchedule([0.0]), rng=1)
        injector.maybe_inject(np.ones(3), now=0.0)
        injector.reset()
        assert injector.n_injected == 0
        injector.maybe_inject(np.ones(3), now=0.0)
        assert injector.n_injected == 1

    def test_targeted_injector_fires_once_at_given_index(self):
        injector = TargetedInjector(at=5, index=2, bit=63, target="h")
        arr = np.ones(4)
        injector.maybe_inject(arr, now=4)
        assert np.all(arr == 1.0) and not injector.fired
        injector.maybe_inject(arr, now=5)
        assert arr[2] == -1.0 and injector.fired
        injector.maybe_inject(arr, now=6)
        assert injector.session.n_injected == 1

    def test_targeted_injector_value_mode(self):
        injector = TargetedInjector(at=0, index=1, value=99.0)
        arr = np.zeros(3)
        injector.maybe_inject(arr, now=0)
        assert arr[1] == 99.0
        assert injector.session.events[0].kind == "value"

    def test_targeted_injector_out_of_bounds(self):
        injector = TargetedInjector(at=0, index=10, bit=1)
        with pytest.raises(IndexError):
            injector.maybe_inject(np.zeros(3), now=0)


class TestProcessFailureModels:
    def test_exponential_mean(self):
        model = ExponentialFailureModel(100.0)
        assert model.node_mtbf() == 100.0
        rng = np.random.default_rng(0)
        samples = [model.sample_interarrival(rng) for _ in range(2000)]
        assert abs(np.mean(samples) - 100.0) / 100.0 < 0.1

    def test_weibull_mean_matches_formula(self):
        model = WeibullFailureModel(scale=100.0, shape=1.0)
        assert abs(model.node_mtbf() - 100.0) < 1e-9

    def test_system_mtbf_scales_inversely(self):
        assert system_mtbf(1000.0, 10) == 100.0
        with pytest.raises(ValueError):
            system_mtbf(1000.0, 0)

    def test_failure_plan_sampling(self):
        model = ExponentialFailureModel(5.0)
        plan = FailurePlan.sample(model, n_ranks=4, horizon=20.0, rng=1)
        assert all(f.time <= 20.0 for f in plan)
        assert all(0 <= f.rank < 4 for f in plan)
        # sorted by time
        times = [f.time for f in plan]
        assert times == sorted(times)

    def test_failure_plan_single_and_none(self):
        single = FailurePlan.single(1.0, 2)
        assert len(single) == 1 and single.first_failure_time(2) == 1.0
        assert single.first_failure_time(0) is None
        assert len(FailurePlan.none()) == 0

    def test_failure_plan_queries(self):
        plan = FailurePlan([(1.0, 0), (2.0, 1), (3.0, 0)])
        assert len(plan.failures_for_rank(0)) == 2
        assert [f.rank for f in plan.failures_in(1.5, 3.0)] == [1, 0]

    def test_failure_plan_max_failures(self):
        model = ExponentialFailureModel(1.0)
        plan = FailurePlan.sample(model, 4, 50.0, rng=0, max_failures=3)
        assert len(plan) == 3

    def test_failure_plan_validation(self):
        with pytest.raises(ValueError):
            FailurePlan([(-1.0, 0)])
        with pytest.raises(ValueError):
            FailurePlan([(1.0, -2)])


class TestSdcClassification:
    def test_outcomes(self):
        assert classify_outcome(converged=True, error_norm=1e-10, tolerance=1e-6,
                                detected=False) == "benign"
        assert classify_outcome(converged=True, error_norm=1e-10, tolerance=1e-6,
                                detected=True) == "detected"
        assert classify_outcome(converged=True, error_norm=1.0, tolerance=1e-6,
                                detected=False) == "sdc"
        assert classify_outcome(converged=False, error_norm=1.0, tolerance=1e-6,
                                detected=False) == "crash"
        assert classify_outcome(converged=True, error_norm=1e-10, tolerance=1e-6,
                                detected=True, corrected=True) == "corrected"

    def test_nonfinite_error_is_never_benign(self):
        outcome = classify_outcome(converged=True, error_norm=float("nan"),
                                   tolerance=1e-6, detected=False)
        assert outcome == "sdc"

    def test_campaign_aggregation(self):
        def run_once(trial):
            return FaultRecord(detected=trial % 2 == 0,
                               outcome="detected" if trial % 2 == 0 else "sdc",
                               extra={"iters": trial})

        result = SdcCampaign(run_once, 10).run(metadata={"tag": "t"})
        assert result.n_runs == 10
        assert result.detection_rate == 0.5
        assert result.count_outcome("sdc") == 5
        assert result.rate_outcome("detected") == 0.5
        assert result.mean_extra("iters") == 4.5
        assert result.outcomes() == {"detected": 5, "sdc": 5}

    def test_campaign_validates_outcomes(self):
        campaign = SdcCampaign(lambda t: FaultRecord(outcome="bogus"), 1)
        with pytest.raises(ValueError):
            campaign.run()

    def test_campaign_requires_fault_record(self):
        campaign = SdcCampaign(lambda t: "nope", 1)
        with pytest.raises(TypeError):
            campaign.run()

    def test_empty_campaign_rates(self):
        result = CampaignResult()
        assert result.detection_rate == 0.0
        assert result.rate_outcome("sdc") == 0.0
        assert result.mean_extra("x", default=7.0) == 7.0
