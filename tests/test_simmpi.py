"""Tests for the simulated MPI runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import FailurePlan
from repro.machine import MachineModel
from repro.simmpi import (
    CartTopology,
    Comm,
    RankFailedError,
    SimDeadlockError,
    SimRuntime,
    VirtualClock,
    run_spmd,
)
from repro.simmpi.errors import InvalidRankError
from repro.simmpi.ops import LAND, LOR, MAX, MIN, PROD, SUM
from repro.simmpi.topology import balanced_dims


class TestVirtualClock:
    def test_advance_and_busy(self):
        clock = VirtualClock()
        clock.advance(1.5)
        assert clock.now == 1.5 and clock.busy_time == 1.5

    def test_wait_until_only_moves_forward(self):
        clock = VirtualClock(1.0)
        clock.wait_until(0.5)
        assert clock.now == 1.0
        clock.wait_until(2.0)
        assert clock.now == 2.0 and clock.idle_time == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_copy_independent(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clone = clock.copy()
        clone.advance(1.0)
        assert clock.now == 1.0 and clone.now == 2.0


class TestReduceOps:
    def test_scalar_ops(self):
        assert SUM.reduce([1, 2, 3]) == 6
        assert PROD.reduce([2, 3, 4]) == 24
        assert MAX.reduce([1, 5, 3]) == 5
        assert MIN.reduce([1, 5, 3]) == 1
        assert LAND.reduce([True, True, False]) is False
        assert LOR.reduce([False, True]) is True

    def test_array_ops(self):
        arrays = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
        assert np.array_equal(SUM.reduce(arrays), [4.0, 6.0])
        assert np.array_equal(MAX.reduce(arrays), [3.0, 4.0])

    def test_empty_reduce_returns_identity(self):
        assert SUM.reduce([]) == 0
        assert MIN.reduce([]) == float("inf")


class TestCollectives:
    def test_allreduce_sum_and_ops(self):
        def program(comm):
            total = comm.allreduce(comm.rank + 1)
            biggest = comm.allreduce(comm.rank, op=MAX)
            smallest = comm.allreduce(comm.rank, op=MIN)
            return total, biggest, smallest

        for values in run_spmd(4, program):
            assert values == (10, 3, 0)

    def test_allreduce_arrays(self):
        def program(comm):
            return comm.allreduce(np.full(3, float(comm.rank)))

        results = run_spmd(3, program)
        for arr in results:
            assert np.array_equal(arr, [3.0, 3.0, 3.0])

    def test_bcast(self):
        def program(comm):
            data = {"value": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert all(v == {"value": 42} for v in run_spmd(3, program))

    def test_reduce_root_only(self):
        def program(comm):
            return comm.reduce(comm.rank, op=SUM, root=1)

        values = run_spmd(3, program)
        assert values[1] == 3
        assert values[0] is None and values[2] is None

    def test_gather_and_allgather(self):
        def program(comm):
            gathered = comm.gather(comm.rank * 10, root=0)
            everywhere = comm.allgather(comm.rank)
            return gathered, everywhere

        values = run_spmd(4, program)
        assert values[0][0] == [0, 10, 20, 30]
        assert values[2][0] is None
        assert all(v[1] == [0, 1, 2, 3] for v in values)

    def test_scatter(self):
        def program(comm):
            chunks = [f"chunk{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(chunks, root=0)

        assert run_spmd(3, program) == ["chunk0", "chunk1", "chunk2"]

    def test_barrier_synchronizes_clocks(self):
        def program(comm):
            comm.advance(0.1 * (comm.rank + 1))
            comm.barrier()
            return comm.now()

        times = run_spmd(4, program, machine=MachineModel.ideal())
        assert all(t == pytest.approx(0.4) for t in times)

    def test_nonblocking_allreduce_overlap(self):
        def program(comm):
            request = comm.iallreduce(float(comm.rank))
            comm.advance(0.5)
            value = request.wait()
            return value, comm.now()

        machine = MachineModel(latency=1e-3)
        results = run_spmd(4, program, machine=machine)
        for value, t in results:
            assert value == 6.0
            # Overlapped work (0.5s) dwarfs the collective latency, so the
            # completion time is essentially the work time.
            assert t == pytest.approx(0.5, rel=1e-3)

    def test_ibarrier_and_ibcast(self):
        def program(comm):
            req_barrier = comm.ibarrier()
            req_bcast = comm.ibcast("hello" if comm.rank == 1 else None, root=1)
            req_barrier.wait()
            return req_bcast.wait()

        assert run_spmd(3, program) == ["hello"] * 3

    def test_single_rank_collectives(self):
        def program(comm):
            return (
                comm.allreduce(5),
                comm.allgather(7),
                comm.bcast(3, root=0),
                comm.single_rank(),
            )

        assert run_spmd(1, program) == [(5, [7], 3, True)]

    def test_scatter_requires_enough_chunks(self):
        def program(comm):
            chunks = [1] if comm.rank == 0 else None
            try:
                comm.scatter(chunks, root=0)
                return "no error"
            except Exception as exc:  # noqa: BLE001
                return type(exc).__name__

        results = run_spmd(2, program)
        assert "ValueError" in results


class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.arange(5.0), dest=1, tag=7)
                return None
            received = comm.recv(source=0, tag=7)
            return received

        values = run_spmd(2, program)
        assert np.array_equal(values[1], np.arange(5.0))

    def test_message_ordering_fifo(self):
        def program(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        assert run_spmd(2, program)[1] == [0, 1, 2, 3, 4]

    def test_isend_irecv(self):
        def program(comm):
            if comm.rank == 0:
                request = comm.isend({"x": 1}, dest=1)
                request.wait()
                return None
            request = comm.irecv(source=0)
            return request.wait()

        assert run_spmd(2, program)[1] == {"x": 1}

    def test_sendrecv_exchange(self):
        def program(comm):
            other = 1 - comm.rank
            return comm.sendrecv(comm.rank, dest=other, source=other)

        assert run_spmd(2, program) == [1, 0]

    def test_payload_isolation(self):
        def program(comm):
            if comm.rank == 0:
                data = np.ones(3)
                comm.send(data, dest=1)
                data[:] = 99.0
                return None
            received = comm.recv(source=0)
            return received.copy()

        assert np.array_equal(run_spmd(2, program)[1], np.ones(3))

    def test_send_to_self_rejected(self):
        def program(comm):
            try:
                comm.send(1, dest=comm.rank)
                return "ok"
            except InvalidRankError:
                return "invalid"

        assert run_spmd(2, program) == ["invalid", "invalid"]

    def test_invalid_rank_rejected(self):
        def program(comm):
            try:
                comm.recv(source=99)
                return "ok"
            except InvalidRankError:
                return "invalid"

        assert run_spmd(2, program) == ["invalid", "invalid"]

    def test_virtual_time_send_cost(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1000), dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            return comm.now()

        machine = MachineModel(latency=1e-3, bandwidth=1e6)
        times = run_spmd(2, program, machine=machine)
        expected = 1e-3 + 8000 / 1e6
        assert times[0] == pytest.approx(expected)
        assert times[1] == pytest.approx(expected)


class TestDeadlockAndErrors:
    def test_recv_from_returned_rank_fails_fast(self):
        # A receive whose source already returned can never be served;
        # it fails immediately with RankFailedError rather than hanging
        # until the watchdog.
        def program(comm):
            if comm.rank == 0:
                try:
                    comm.recv(source=1)
                except RankFailedError:
                    return "failed fast"
            return "done"

        runtime = SimRuntime(2, watchdog=5.0)
        results = runtime.run(program)
        assert results[0].value == "failed fast"

    def test_mutual_recv_raises_deadlock(self):
        # A genuine cycle (both ranks blocked receiving from each other)
        # is a bug in the simulated program; the watchdog breaks it.
        def program(comm):
            try:
                comm.recv(source=1 - comm.rank)
                return "received"
            except SimDeadlockError:
                return "deadlock"
            except RankFailedError:
                # The other rank broke out (watchdog) first; its exit
                # cascades here as a failed receive.
                return "cascaded"

        runtime = SimRuntime(2, watchdog=1.0)
        results = runtime.run(program)
        values = {results[0].value, results[1].value}
        assert "deadlock" in values
        assert "received" not in values

    def test_collective_kind_mismatch_detected(self):
        def program(comm):
            try:
                if comm.rank == 0:
                    comm.allreduce(1)
                else:
                    comm.barrier()
                return "ok"
            except Exception as exc:  # noqa: BLE001
                return type(exc).__name__

        runtime = SimRuntime(2, watchdog=2.0)
        results = runtime.run(program)
        values = {r.value for r in results}
        assert "RuntimeError" in values or "SimDeadlockError" in values


class TestFailuresAndRecovery:
    def test_dead_rank_detected_in_collective(self, fast_recovery_machine):
        def program(comm):
            try:
                for _ in range(20):
                    comm.compute(1e6)
                    comm.allreduce(1.0)
                return "finished"
            except RankFailedError as error:
                return ("failed", sorted(error.failed_ranks))

        plan = FailurePlan.single(0.005, 1)
        runtime = SimRuntime(4, machine=fast_recovery_machine, failure_plan=plan)
        results = runtime.run(program)
        by_rank = {r.rank: r for r in results}
        assert by_rank[1].died
        for rank in (0, 2, 3):
            assert by_rank[rank].value == ("failed", [1])

    def test_dead_rank_detected_in_recv(self, fast_recovery_machine):
        def program(comm):
            if comm.rank == 0:
                try:
                    comm.recv(source=1)
                    return "got message"
                except RankFailedError:
                    return "detected"
            # Rank 1 dies before sending.
            comm.compute(1e9)
            comm.send(1, dest=0)
            return "sent"

        plan = FailurePlan.single(0.001, 1)
        runtime = SimRuntime(2, machine=fast_recovery_machine, failure_plan=plan)
        results = runtime.run(program)
        assert results[0].value == "detected"
        assert results[1].died

    def test_send_to_dead_rank_is_buffered(self, fast_recovery_machine):
        # Eager/buffered semantics: a send never detects the peer's
        # death (the outcome must not depend on whether the doomed
        # rank's thread happened to have died yet -- determinism).  The
        # failure surfaces at the next operation that genuinely depends
        # on the peer, here the collective.
        def program(comm):
            if comm.rank == 1:
                comm.compute(1e9)  # dies here
                return "unreachable"
            comm.advance(1.0)  # let rank 1 die first (virtual time irrelevant,
            # but the barrier below orders wall-clock execution)
            try:
                comm.barrier()
            except RankFailedError:
                pass
            comm.send(1, dest=1)  # buffered: must not raise
            try:
                comm.barrier()
                return "second barrier passed"
            except RankFailedError:
                return "collective detected the death"

        plan = FailurePlan.single(0.001, 1)
        runtime = SimRuntime(2, machine=fast_recovery_machine, failure_plan=plan)
        results = runtime.run(program)
        assert results[0].value == "collective detected the death"

    def test_respawn_and_epoch_recovery(self, fast_recovery_machine):
        def replacement(comm, epoch):
            comm.advance_epoch(epoch)
            return ("replacement", comm.allreduce(comm.rank))

        def program(comm, runtime):
            try:
                for _ in range(20):
                    comm.compute(1e6)
                    comm.allreduce(1.0)
                return "no failure"
            except RankFailedError as error:
                if comm.rank == 0:
                    for dead in sorted(error.failed_ranks):
                        runtime.respawn(dead, replacement, 1)
                    for other in (r for r in comm.alive_ranks() if r != 0):
                        comm.send("go", dest=other, tag=9)
                else:
                    comm.recv(source=0, tag=9)
                comm.advance_epoch(1)
                return ("survivor", comm.allreduce(comm.rank))

        plan = FailurePlan.single(0.004, 2)
        runtime = SimRuntime(4, machine=fast_recovery_machine, failure_plan=plan)
        results = runtime.run(program, runtime)
        final = {r.rank: r.value for r in results if not r.died}
        assert final[2] == ("replacement", 6)
        for rank in (0, 1, 3):
            assert final[rank] == ("survivor", 6)

    def test_departed_peer_interrupts_blocked_rank(self, fast_recovery_machine):
        # Failure propagation is driven by the deterministic liveness
        # predicate: a blocked receive fails once its source returned
        # (rank 0 here) or stopped communicating in the epoch -- which
        # then cascades (rank 2 aborts, unblocking rank 1).
        def program(comm):
            if comm.rank == 0:
                comm.advance(0.01)
                comm.revoke()  # wakes waiters; the abort comes from rank 0 returning
                return "revoked"
            try:
                if comm.rank == 1:
                    comm.recv(source=2)  # rank 2 aborts without sending
                else:
                    comm.recv(source=0)  # rank 0 returns without sending
                return "received"
            except RankFailedError:
                return "interrupted"

        runtime = SimRuntime(3, machine=fast_recovery_machine, watchdog=10.0)
        results = runtime.run(program)
        assert results[0].value == "revoked"
        assert results[1].value == "interrupted"
        assert results[2].value == "interrupted"

    def test_epoch_advance_interrupts_old_epoch_recv(self, fast_recovery_machine):
        # A rank that moved to a newer epoch (recovery) will never send
        # in the old one; receivers blocked there must fail, not hang.
        def program(comm):
            if comm.rank == 0:
                comm.advance(0.001)
                comm.advance_epoch(1)
                comm.advance(0.01)
                return "advanced"
            try:
                comm.recv(source=0)  # posted in epoch 0; never served
                return "received"
            except RankFailedError:
                return "interrupted"

        runtime = SimRuntime(2, machine=fast_recovery_machine, watchdog=10.0)
        results = runtime.run(program)
        assert results[0].value == "advanced"
        assert results[1].value == "interrupted"

    def test_runtime_event_log_records_death(self, fast_recovery_machine):
        def program(comm):
            try:
                for _ in range(10):
                    comm.compute(1e6)
                    comm.barrier()
                return "ok"
            except RankFailedError:
                return "saw failure"

        plan = FailurePlan.single(0.002, 0)
        runtime = SimRuntime(3, machine=fast_recovery_machine, failure_plan=plan)
        runtime.run(program)
        assert runtime.log.count("rank_death") == 1

    def test_respawn_requires_dead_rank(self):
        runtime = SimRuntime(2)
        runtime.start(lambda comm: comm.barrier())
        with pytest.raises(Exception):
            runtime.respawn(0, lambda comm: None)
        runtime.join()


class TestRuntimeLifecycle:
    def test_run_spmd_returns_rank_order(self):
        assert run_spmd(5, lambda comm: comm.rank) == [0, 1, 2, 3, 4]

    def test_double_start_rejected(self):
        runtime = SimRuntime(2)
        runtime.start(lambda comm: None)
        with pytest.raises(Exception):
            runtime.start(lambda comm: None)
        runtime.join()

    def test_join_before_start_rejected(self):
        with pytest.raises(Exception):
            SimRuntime(2).join()

    def test_exception_in_rank_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            try:
                comm.barrier()
            except RankFailedError:
                pass
            return "ok"

        runtime = SimRuntime(2, watchdog=5.0)
        with pytest.raises(ValueError, match="boom"):
            runtime.run(program)

    def test_invalid_n_ranks(self):
        with pytest.raises(ValueError):
            SimRuntime(0)

    def test_max_finish_time(self):
        runtime = SimRuntime(3, machine=MachineModel.ideal())
        runtime.run(lambda comm: comm.advance(0.1 * (comm.rank + 1)))
        assert runtime.max_finish_time() == pytest.approx(0.3)

    def test_rank_results_record_clock_stats(self):
        runtime = SimRuntime(2, machine=MachineModel.ideal())
        results = runtime.run(lambda comm: (comm.advance(0.2), comm.barrier()))
        for result in results:
            assert result.busy_time == pytest.approx(0.2)
            assert result.finish_time >= 0.2


class TestCartTopology:
    def test_balanced_dims_product(self):
        for n in (1, 4, 6, 12, 16, 36):
            for ndim in (1, 2, 3):
                dims = balanced_dims(n, ndim)
                assert int(np.prod(dims)) == n

    def test_coords_rank_roundtrip(self):
        topo = CartTopology((3, 4))
        for rank in range(topo.size):
            assert topo.rank(topo.coords(rank)) == rank

    def test_shift_nonperiodic_boundary(self):
        topo = CartTopology((2, 2))
        assert topo.shift(0, axis=0, displacement=-1) is None
        assert topo.shift(0, axis=0, displacement=1) == topo.rank((1, 0))

    def test_shift_periodic_wraps(self):
        topo = CartTopology((4,), periodic=(True,))
        assert topo.shift(0, 0, -1) == 3
        assert topo.shift(3, 0, 1) == 0

    def test_neighbors_interior_and_corner(self):
        topo = CartTopology((3, 3))
        center = topo.rank((1, 1))
        assert len(topo.neighbors(center)) == 4
        corner = topo.rank((0, 0))
        assert len(topo.neighbors(corner)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CartTopology((0, 2))
        with pytest.raises(ValueError):
            CartTopology((2, 2), periodic=(True,))
        topo = CartTopology((2, 2))
        with pytest.raises(ValueError):
            topo.coords(99)
        with pytest.raises(ValueError):
            topo.rank((5, 0))

    def test_balanced_constructor(self):
        topo = CartTopology.balanced(12, 2)
        assert topo.size == 12 and topo.ndim == 2

    def test_balanced_dims_sorted_descending_and_prime(self):
        assert balanced_dims(16, 2) == (4, 4)
        assert balanced_dims(12, 2) == (4, 3)
        # A prime rank count cannot be split: all factors land in one dim.
        assert balanced_dims(7, 2) == (7, 1)
        assert balanced_dims(13, 3) == (13, 1, 1)
        for n, ndim in ((24, 3), (100, 2), (64, 3)):
            dims = balanced_dims(n, ndim)
            assert dims == tuple(sorted(dims, reverse=True))

    def test_balanced_dims_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            balanced_dims(0, 2)
        with pytest.raises(ValueError):
            balanced_dims(4, 0)

    def test_rank_periodic_modulo(self):
        # Periodic axes accept out-of-range coords and wrap them, the
        # non-periodic axis still validates.
        topo = CartTopology((3, 4), periodic=(True, False))
        assert topo.rank((-1, 2)) == topo.rank((2, 2))
        assert topo.rank((4, 0)) == topo.rank((1, 0))
        with pytest.raises(ValueError):
            topo.rank((0, 4))
        with pytest.raises(ValueError):
            topo.rank((0, 0, 0))  # wrong arity

    def test_shift_large_displacement_multiwrap(self):
        periodic = CartTopology((3,), periodic=(True,))
        assert periodic.shift(0, 0, 7) == 1  # 7 mod 3
        assert periodic.shift(1, 0, -4) == 0
        flat = CartTopology((3,))
        assert flat.shift(0, 0, 2) == 2
        assert flat.shift(0, 0, 3) is None
        with pytest.raises(ValueError):
            flat.shift(0, axis=1, displacement=1)

    def test_neighbors_dedup_tiny_periodic_dims(self):
        # On a periodic dim of size 2, -1 and +1 land on the same rank:
        # the neighbour list must deduplicate it.
        topo = CartTopology((2,), periodic=(True,))
        assert topo.neighbors(0) == [1]
        # On a periodic dim of size 1 the only "neighbour" is yourself,
        # which is excluded entirely.
        assert CartTopology((1,), periodic=(True,)).neighbors(0) == []
        # Mixed: the size-2 periodic axis contributes one neighbour,
        # the size-3 periodic axis two.
        mixed = CartTopology((2, 3), periodic=(True, True))
        assert len(mixed.neighbors(mixed.rank((0, 1)))) == 3

    def test_single_rank_topology_has_no_neighbors(self):
        topo = CartTopology((1, 1))
        assert topo.size == 1
        assert topo.neighbors(0) == []
        assert topo.shift(0, 0, 1) is None


class TestRequestHelpers:
    """waitall/waitany over the simulated runtime's requests."""

    def test_waitall_returns_results_in_request_order(self):
        from repro.simmpi.requests import waitall

        def program(comm):
            if comm.rank == 0:
                reqs = [comm.isend(("a", 1), 1, tag=1), comm.isend(("a", 2), 1, tag=2)]
                waitall(reqs)
                return "sent"
            # Issue the receives in reverse tag order: waitall must
            # still return results matching *request* order.
            reqs = [comm.irecv(0, tag=2), comm.irecv(0, tag=1)]
            return waitall(reqs)

        results = run_spmd(2, program)
        assert results[1] == [("a", 2), ("a", 1)]

    def test_waitany_prefers_already_completed(self):
        from repro.simmpi.requests import CompletedRequest, waitany

        def program(comm):
            if comm.rank == 0:
                comm.send("payload", 1)
                return None
            pending = comm.irecv(0)
            done = CompletedRequest("instant")
            # The blocking request sits first, but waitany must pick
            # the already-completed one without waiting on it.
            index, value = waitany([pending, done])
            assert (index, value) == (1, "instant")
            return pending.wait()

        results = run_spmd(2, program)
        assert results[1] == "payload"

    def test_waitany_waits_when_nothing_is_complete(self):
        from repro.simmpi.requests import waitany

        def program(comm):
            if comm.rank == 0:
                comm.send("late", 1)
                return None
            index, value = waitany([comm.irecv(0)])
            return (index, value)

        results = run_spmd(2, program)
        assert results[1] == (0, "late")

    def test_waitany_rejects_empty(self):
        from repro.simmpi.requests import waitany

        with pytest.raises(ValueError):
            waitany([])

    def test_waitall_empty_is_empty(self):
        from repro.simmpi.requests import waitall

        assert waitall([]) == []
