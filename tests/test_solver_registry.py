"""Contract tests for the solver registry and engine strategy wiring.

Every :class:`~repro.krylov.registry.RegisteredSolver` must honor the
``SolveResult`` contract regardless of which resilience policy it runs
under: a converged flag that means what it says, a residual history
that starts at the initial residual and ends at (or below) the target,
and the canonical kernel-counter schema the engine guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov import SolveResult, default_solver_registry, gmres, solver_names
from repro.krylov.engine import ResidualGuardPolicy
from repro.krylov.engine.core import CANONICAL_KERNELS
from repro.linalg import DistributedRowMatrix, DistributedVector, poisson_2d
from repro.simmpi import run_spmd

REGISTRY = default_solver_registry()


def _problem(grid: int = 8, seed: int = 17):
    matrix = poisson_2d(grid)
    rng = np.random.default_rng(seed)
    return matrix, rng.standard_normal(matrix.n_rows)


def _solver_params(solver, tol: float = 1e-8) -> dict:
    if solver.name == "ft_gmres":
        return {"tol": tol, "outer_maxiter": 30, "inner_maxiter": 10}
    return {"tol": tol, "maxiter": 400}


def _assert_contract(result: SolveResult, tol: float = 1e-8) -> None:
    assert isinstance(result, SolveResult)
    assert isinstance(result.converged, bool)
    assert result.iterations >= 0
    assert result.detected_faults >= 0
    # Residual history: present, starts at the initial residual, and the
    # recorded final residual must meet the target when converged.
    history = result.residual_norms
    assert history and history[0] > 0.0
    assert history[-1] <= history[0] * (1 + 1e-12)
    target = result.info.get("target")
    if result.converged and target is not None:
        assert history[-1] <= target * (1 + 1e-12)
    # Canonical counter schema: every engine solve reports the same
    # kernel keys (possibly at zero), in both counts and seconds.
    kernels = result.info["kernels"]
    for kernel in CANONICAL_KERNELS:
        assert kernel in kernels["counts"], f"missing counter {kernel}"
        assert kernel in kernels["seconds"], f"missing timer {kernel}"


class TestRegistryLookup:
    def test_names_cover_all_six_engine_wrappers(self):
        assert {"gmres", "fgmres", "pipelined_gmres", "cg", "pipelined_cg",
                "ft_gmres"} <= set(solver_names())

    def test_unknown_solver_raises_with_known_names(self):
        with pytest.raises(KeyError, match="gmres"):
            REGISTRY.get("bicgstab")

    def test_lookup_is_case_insensitive(self):
        assert REGISTRY.get("GMRES").name == "gmres"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="does not support"):
            REGISTRY.get("cg").resolve_policy("tmr_everything")

    def test_generic_policies_resolve_everywhere(self):
        for solver in REGISTRY:
            for generic in ("none", "guard", "skeptical"):
                resolved = solver.resolve_policy(generic)
                assert resolved in solver.policies


@pytest.mark.parametrize("name", solver_names())
class TestSolveResultContract:
    def test_default_policy_contract(self, name):
        solver = REGISTRY.get(name)
        matrix, b = _problem()
        result = solver.solve(matrix, b, **_solver_params(solver))
        _assert_contract(result)
        assert result.converged
        assert result.info["solver_name"] == name
        assert result.info["policy_name"] == solver.default_policy
        residual = np.linalg.norm(matrix.matvec(np.asarray(result.x)) - b)
        assert residual <= 1e-6 * np.linalg.norm(b)

    def test_every_supported_policy_contract(self, name):
        solver = REGISTRY.get(name)
        matrix, b = _problem(grid=6)
        for policy in solver.policies:
            result = solver.solve(matrix, b, policy=policy, **_solver_params(solver))
            _assert_contract(result)
            assert result.info["policy_name"] == policy

    def test_gmres_family_residuals_monotone_within_cycles(self, name):
        solver = REGISTRY.get(name)
        if solver.family != "gmres" or name == "sdc_gmres":
            pytest.skip("within-cycle monotonicity is a GMRES-cycle property")
        matrix, b = _problem()
        result = solver.solve(matrix, b, **_solver_params(solver))
        history = result.residual_norms
        assert all(
            history[i + 1] <= history[i] * (1 + 1e-12) for i in range(len(history) - 1)
        )


class TestRegistryBackedWrappers:
    def test_registry_gmres_is_bitwise_the_wrapper(self):
        matrix, b = _problem()
        via_registry = REGISTRY.get("gmres").solve(matrix, b, tol=1e-9, restart=15,
                                                   maxiter=300)
        direct = gmres(matrix, b, tol=1e-9, restart=15, maxiter=300)
        assert np.array_equal(np.asarray(via_registry.x), np.asarray(direct.x))
        assert via_registry.residual_norms == direct.residual_norms

    def test_residual_guard_unit_mechanics(self):
        from repro.krylov.engine import IterationEvent

        guard = ResidualGuardPolicy(growth_factor=10.0)
        for i, r in enumerate((8.0, 4.0, 1.0, 0.5)):
            guard.observe(IterationEvent(total_iteration=i + 1, residual_norm=r))
        assert guard.detections == 0
        guard.observe(IterationEvent(total_iteration=5, residual_norm=50.0))
        guard.observe(IterationEvent(total_iteration=6, residual_norm=float("nan")))
        assert guard.detections == 2
        assert [e["iteration"] for e in guard.events] == [5, 6]

    def test_residual_guard_flags_corrupted_recurrence(self):
        # Corrupt ONE operator application mid-solve: the pipelined-CG
        # recurrence drifts and its observed residuals jump, which the
        # solver-agnostic guard must flag.  (The GMRES recurrence
        # residual is monotone by construction, which is exactly why
        # the full skeptical checks inspect the Arnoldi state instead;
        # classic CG breaks down immediately on the same fault.)
        matrix, b = _problem()
        calls = {"n": 0}

        def flaky_operator(v):
            calls["n"] += 1
            out = matrix.matvec(np.asarray(v, dtype=np.float64))
            if calls["n"] == 8:
                out = out + 1e2
            return out

        result = REGISTRY.get("pipelined_cg").solve(
            flaky_operator, b, policy="residual_guard",
            policy_options={"growth_factor": 10.0}, tol=1e-10, maxiter=300,
        )
        assert result.detected_faults > 0
        assert result.info["residual_guard"]["detections"] == result.detected_faults

    def test_residual_guard_inert_on_clean_run(self):
        matrix, b = _problem()
        result = REGISTRY.get("cg").solve(
            matrix, b, policy="guard", tol=1e-10, maxiter=300
        )
        assert result.converged
        assert result.detected_faults == 0
        assert result.info["residual_guard"]["detections"] == 0

    def test_distributed_entries_run_on_simulated_runtime(self):
        matrix_global = poisson_2d(6)
        rng = np.random.default_rng(3)
        b_global = rng.standard_normal(matrix_global.n_rows)
        distributed = [s.name for s in REGISTRY if s.distributed]

        def program(comm):
            matrix = DistributedRowMatrix.from_global(comm, matrix_global)
            b = DistributedVector.from_global(comm, b_global)
            outcomes = {}
            for name in distributed:
                solver = REGISTRY.get(name)
                result = solver.solve(matrix, b, tol=1e-8, maxiter=300)
                _assert_contract(result)
                outcomes[name] = result.converged
            return outcomes

        for outcomes in run_spmd(4, program):
            assert all(outcomes.values())
