"""Tests for the blocked Krylov kernels (ndarray basis + CGS2).

Covers the invariants the kernel refactor must preserve:

* CGS2 keeps the basis orthonormal to machine precision,
* happy breakdown is handled with the preallocated ndarray basis,
* the new CGS2 solver and the legacy MGS recurrence produce the same
  solution on a fixed seed,
* fault-injection hooks still mutate live solver state through basis
  views,
* the CSR ``reduceat`` matvec is exact for matrices with empty rows,
* the model-problem generator cache returns equal but independent
  matrices, and
* the solvers surface per-kernel timing counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov import allocate_basis, arnoldi_step, gmres
from repro.krylov.ops import fused_dots
from repro.linalg.blas import cgs2_step
from repro.linalg.csr import CsrMatrix
from repro.linalg.matgen import (
    clear_matrix_cache,
    convection_diffusion_2d,
    matrix_cache_info,
    poisson_2d,
)


class TestKrylovBasis:
    def test_cgs2_orthogonality_invariant(self, rng):
        """After m CGS2 Arnoldi steps, ``max |VᵀV - I|`` stays at machine level."""
        matrix = convection_diffusion_2d(8, peclet=25.0)
        n = matrix.n_rows
        m = 20
        basis = allocate_basis(np.zeros(n), m + 1)
        r = rng.standard_normal(n)
        basis.append(r, scale=1.0 / np.linalg.norm(r))
        for j in range(m):
            w = matrix.matvec(basis.column(j))
            w, _ = basis.orthogonalize(w, method="cgs2", k=j + 1)
            basis.append(w, scale=1.0 / np.linalg.norm(w))
        v = basis.matrix()
        assert v.shape == (n, m + 1)
        defect = np.max(np.abs(v.T @ v - np.eye(m + 1)))
        assert defect < 1e-12

    def test_single_pass_cgs_is_less_orthogonal_than_cgs2(self, rng):
        """CGS2 must beat one-pass CGS on an ill-conditioned set of vectors."""
        n, k = 60, 12
        # Nearly linearly dependent directions stress the orthogonalizer.
        base = rng.standard_normal(n)
        cols = np.column_stack(
            [base + 1e-9 * rng.standard_normal(n) for _ in range(k)]
        )
        q, _ = np.linalg.qr(cols)
        basis = allocate_basis(np.zeros(n), k + 1)
        for j in range(k):
            basis.append(q[:, j])
        w = base + 1e-8 * rng.standard_normal(n)
        w1, _ = basis.orthogonalize(np.array(w), method="classical", k=k)
        w2, _ = basis.orthogonalize(np.array(w), method="cgs2", k=k)
        defect1 = np.max(np.abs(basis.matrix(k).T @ (w1 / np.linalg.norm(w1))))
        defect2 = np.max(np.abs(basis.matrix(k).T @ (w2 / np.linalg.norm(w2))))
        assert defect2 <= defect1
        assert defect2 < 1e-10

    def test_block_kernels_match_reference(self, rng):
        basis = allocate_basis(np.zeros(30), 6)
        q, _ = np.linalg.qr(rng.standard_normal((30, 5)))
        for j in range(5):
            basis.append(q[:, j])
        w = rng.standard_normal(30)
        np.testing.assert_allclose(basis.block_dot(w, 5), q.T @ w, atol=1e-14)
        coeffs = rng.standard_normal(5)
        np.testing.assert_allclose(
            basis.block_axpy(coeffs, np.array(w), 5), w - q @ coeffs, atol=1e-14
        )
        np.testing.assert_allclose(basis.lincomb(coeffs, 5), q @ coeffs, atol=1e-14)
        payload = basis.fused_projection(w, 5).wait()
        np.testing.assert_allclose(payload[:5], q.T @ w, atol=1e-14)
        assert payload[5] == pytest.approx(float(w @ w))

    def test_column_views_are_writable_solver_state(self):
        """basis[j] must alias the stored vector (fault-injection surface)."""
        basis = allocate_basis(np.zeros(4), 3)
        basis.append(np.array([1.0, 2.0, 3.0, 4.0]))
        view = basis[0]
        view[2] = 99.0
        assert basis.array[2, 0] == 99.0
        assert basis.matrix()[2, 0] == 99.0

    def test_append_scaling_and_len(self):
        basis = allocate_basis(np.zeros(3), 2)
        basis.append(np.array([2.0, 0.0, 0.0]), scale=0.5)
        assert len(basis) == 1
        np.testing.assert_allclose(basis.column(0), [1.0, 0.0, 0.0])
        basis.append_zero()
        assert len(basis) == 2
        np.testing.assert_allclose(basis.column(1), 0.0)

    def test_allocate_basis_validation(self):
        with pytest.raises(ValueError):
            allocate_basis(np.zeros(3), 0)
        with pytest.raises(ValueError):
            allocate_basis(np.zeros((2, 2)), 3)

    def test_fused_dots_sequential(self, rng):
        x, y, z = (rng.standard_normal(20) for _ in range(3))
        values = fused_dots(((x, y), (y, z), (x, x))).wait()
        np.testing.assert_allclose(
            values, [x @ y, y @ z, x @ x], rtol=1e-14
        )


class TestGmresBlockKernels:
    def test_happy_breakdown_with_ndarray_basis(self):
        """Exact-solution-in-small-subspace must terminate cleanly."""
        # A has minimal polynomial of degree 2 on this b: the Krylov
        # space is exhausted after two vectors -> happy breakdown.
        matrix = np.diag([3.0, 3.0, 3.0, 5.0])
        b = np.array([1.0, 1.0, 1.0, 1.0])
        result = gmres(matrix, b, tol=1e-12, restart=10, maxiter=50)
        assert result.converged
        assert not result.breakdown
        assert result.iterations <= 2
        np.testing.assert_allclose(matrix @ np.asarray(result.x), b, atol=1e-10)

    def test_old_vs_new_gmres_equivalence(self, rng):
        """Legacy MGS and blocked CGS2 must agree on a fixed seed."""
        matrix = convection_diffusion_2d(10, peclet=10.0)
        b = np.random.default_rng(2013).standard_normal(matrix.n_rows)
        legacy = gmres(matrix, b, tol=1e-12, restart=40, maxiter=800,
                       gram_schmidt="modified")
        blocked = gmres(matrix, b, tol=1e-12, restart=40, maxiter=800,
                        gram_schmidt="cgs2")
        assert legacy.converged and blocked.converged
        assert np.linalg.norm(
            np.asarray(legacy.x) - np.asarray(blocked.x)
        ) <= 1e-10 * np.linalg.norm(np.asarray(legacy.x))
        # Convergence behaviour matches too (same restart structure).
        assert abs(legacy.iterations - blocked.iterations) <= 2

    def test_hook_mutation_reaches_solver(self, rng):
        """Corrupting state.basis through the hook must derail the solve
        exactly as it did with the list-of-vectors basis."""
        matrix = poisson_2d(8)
        b = rng.standard_normal(matrix.n_rows)
        clean = gmres(matrix, b, tol=1e-10, restart=30, maxiter=300)

        def corrupt(state):
            if state.total_iteration == 3:
                np.asarray(state.basis[state.inner + 1])[:] = 0.0

        corrupted = gmres(matrix, b, tol=1e-10, restart=30, maxiter=300,
                          iteration_hook=corrupt)
        # The zeroed basis vector changes the Krylov space: iterates differ.
        assert corrupted.iterations != clean.iterations or not np.allclose(
            np.asarray(corrupted.x), np.asarray(clean.x)
        )

    def test_distributed_column_views_are_live_state(self):
        """Distributed basis columns must alias solver storage so hooks
        can inject faults in distributed runs too."""
        from repro.linalg import DistributedRowMatrix, DistributedVector
        from repro.simmpi import run_spmd

        matrix = poisson_2d(8)
        b = np.random.default_rng(11).standard_normal(matrix.n_rows)

        def program(comm):
            m = DistributedRowMatrix.from_global(comm, matrix)
            bd = DistributedVector.from_global(comm, b)
            clean = gmres(m, bd, tol=1e-9, restart=20, maxiter=300)

            def corrupt(state):
                if state.total_iteration == 3 and comm.rank == 0:
                    state.basis[state.inner + 1].local[:] = 0.0

            faulty = gmres(m, bd, tol=1e-9, restart=20, maxiter=300,
                           iteration_hook=corrupt)
            return clean.iterations, faulty.iterations

        for clean_iters, faulty_iters in run_spmd(2, program):
            assert faulty_iters != clean_iters

    def test_basis_array_exposed_to_hooks(self, rng):
        matrix = poisson_2d(6)
        b = rng.standard_normal(matrix.n_rows)
        seen = {}

        def hook(state):
            seen["shape"] = state.basis.array.shape
            seen["len"] = len(state.basis)
            seen["inner"] = state.inner

        gmres(matrix, b, tol=1e-10, restart=12, maxiter=12, iteration_hook=hook)
        assert seen["shape"][0] == matrix.n_rows
        assert seen["shape"][1] == 13  # restart + 1 preallocated columns
        assert seen["len"] == seen["inner"] + 2

    def test_kernel_counters_surfaced(self, rng):
        matrix = poisson_2d(8)
        b = rng.standard_normal(matrix.n_rows)
        result = gmres(matrix, b, tol=1e-10, restart=30, maxiter=300)
        kernels = result.info["kernels"]
        assert kernels["counts"]["matvec"] >= result.iterations
        assert kernels["seconds"]["orthogonalization"] >= 0.0
        assert kernels["seconds"]["matvec"] > 0.0

    def test_cgs2_arnoldi_step(self, rng):
        matrix = poisson_2d(6)
        n = matrix.n_rows
        m = 6
        basis = np.zeros((n, m + 1))
        hessenberg = np.zeros((m + 1, m))
        v0 = rng.standard_normal(n)
        basis[:, 0] = v0 / np.linalg.norm(v0)
        for j in range(m):
            arnoldi_step(matrix.matvec, basis, hessenberg, j, gram_schmidt="cgs2")
        gram = basis.T @ basis
        assert np.max(np.abs(gram - np.eye(m + 1))) < 1e-12
        av = np.column_stack([matrix.matvec(basis[:, j]) for j in range(m)])
        np.testing.assert_allclose(av, basis @ hessenberg, atol=1e-10)

    def test_cgs2_step_reconstruction(self, rng):
        basis = np.linalg.qr(rng.standard_normal((20, 5)))[0]
        w = rng.standard_normal(20)
        w_orth, coeffs = cgs2_step(basis, w, 5)
        np.testing.assert_allclose(basis @ coeffs + w_orth, w, atol=1e-12)
        assert np.max(np.abs(basis.T @ w_orth)) < 1e-13


class TestCsrEmptyRows:
    """Regression tests for the ``np.add.reduceat`` matvec path."""

    def test_matvec_with_interior_empty_row(self):
        dense = np.array(
            [[1.0, 2.0, 0.0],
             [0.0, 0.0, 0.0],
             [0.0, 3.0, 4.0]]
        )
        matrix = CsrMatrix.from_dense(dense)
        x = np.array([1.0, -1.0, 2.0])
        np.testing.assert_allclose(matrix.matvec(x), dense @ x)

    def test_matvec_with_leading_and_trailing_empty_rows(self):
        dense = np.zeros((5, 3))
        dense[1] = [1.0, 0.0, 2.0]
        dense[3] = [0.0, -4.0, 0.0]
        matrix = CsrMatrix.from_dense(dense)
        x = np.array([2.0, 3.0, 5.0])
        result = matrix.matvec(x)
        np.testing.assert_allclose(result, dense @ x)
        assert result[0] == 0.0 and result[2] == 0.0 and result[4] == 0.0

    def test_matvec_consecutive_empty_rows_do_not_alias_neighbours(self):
        # Repeated indptr entries are exactly the case where a naive
        # reduceat call would replicate a neighbouring segment's sum.
        indptr = [0, 1, 1, 1, 2]
        indices = [0, 1]
        data = [7.0, 9.0]
        matrix = CsrMatrix(indptr, indices, data, (4, 2))
        result = matrix.matvec(np.array([1.0, 1.0]))
        np.testing.assert_allclose(result, [7.0, 0.0, 0.0, 9.0])

    def test_matvec_all_rows_empty(self):
        matrix = CsrMatrix([0, 0, 0], [], [], (2, 2))
        np.testing.assert_allclose(matrix.matvec(np.ones(2)), [0.0, 0.0])


class TestMatrixGeneratorCache:
    def test_cache_returns_equal_independent_matrices(self):
        clear_matrix_cache()
        first = poisson_2d(7)
        second = poisson_2d(7)
        assert first is not second
        assert first.data is not second.data
        np.testing.assert_array_equal(first.to_dense(), second.to_dense())
        info = matrix_cache_info()["poisson_2d"]
        assert info.hits >= 1 and info.misses >= 1

    def test_mutating_a_cached_copy_does_not_poison_the_cache(self):
        clear_matrix_cache()
        first = convection_diffusion_2d(5, peclet=7.0)
        first.data[:] = 0.0
        fresh = convection_diffusion_2d(5, peclet=7.0)
        assert np.any(fresh.data != 0.0)

    def test_distinct_parameters_are_distinct_entries(self):
        clear_matrix_cache()
        a = poisson_2d(4)
        b = poisson_2d(5)
        assert a.shape != b.shape
        assert matrix_cache_info()["poisson_2d"].currsize >= 2
