"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.reliability.bitflip import flip_bit_array, flip_bit_float64
from repro.linalg.blas import back_substitution, givens_rotation
from repro.linalg.blas import apply_givens
from repro.linalg.checksum import checked_matmul
from repro.linalg.csr import CsrMatrix
from repro.linalg.distributed import block_ranges
from repro.lflr.coarse import prolong_field, restrict_field
from repro.machine.efficiency import cpr_efficiency, daly_optimal_interval, lflr_efficiency
from repro.simmpi.ops import MAX, MIN, SUM
from repro.simmpi.topology import CartTopology, balanced_dims

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


class TestBitflipProperties:
    @given(value=finite_floats, bit=st.integers(0, 63))
    def test_flip_twice_is_identity(self, value, bit):
        once = flip_bit_float64(value, bit)
        twice = flip_bit_float64(once, bit)
        assert twice == value or (np.isnan(twice) and np.isnan(value))

    @given(value=st.floats(allow_nan=False, allow_infinity=False), bit=st.integers(0, 63))
    def test_flip_always_changes_the_pattern(self, value, bit):
        flipped = flip_bit_float64(value, bit)
        original_bits = np.float64(value).view(np.uint64)
        flipped_bits = np.float64(flipped).view(np.uint64)
        assert original_bits != flipped_bits

    @given(
        data=hnp.arrays(np.float64, st.integers(1, 30), elements=finite_floats),
        bit=st.integers(0, 63),
        seed=st.integers(0, 2**16),
    )
    def test_array_flip_touches_exactly_one_element(self, data, bit, seed):
        rng = np.random.default_rng(seed)
        index = int(rng.integers(0, data.size))
        corrupted = flip_bit_array(data, index, bit)
        same = corrupted.view(np.uint64) == data.view(np.uint64)
        assert same.sum() == data.size - 1


class TestCsrProperties:
    @given(
        dense=hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 12), st.integers(1, 12)),
            elements=st.floats(allow_nan=False, allow_infinity=False,
                               min_value=-100, max_value=100),
        )
    )
    @settings(max_examples=50)
    def test_dense_roundtrip_and_matvec(self, dense):
        matrix = CsrMatrix.from_dense(dense)
        assert np.allclose(matrix.to_dense(), dense)
        x = np.ones(dense.shape[1])
        assert np.allclose(matrix.matvec(x), dense @ x)

    @given(
        dense=hnp.arrays(
            np.float64, st.tuples(st.integers(1, 10), st.integers(1, 10)),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_transpose_involution(self, dense):
        matrix = CsrMatrix.from_dense(dense)
        assert np.allclose(matrix.transpose().transpose().to_dense(), dense)

    @given(
        dense=hnp.arrays(
            np.float64, st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
        y_seed=st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_rmatvec_is_transpose_matvec(self, dense, y_seed):
        matrix = CsrMatrix.from_dense(dense)
        y = np.random.default_rng(y_seed).standard_normal(dense.shape[0])
        assert np.allclose(matrix.rmatvec(y), dense.T @ y)


class TestBlasProperties:
    @given(a=finite_floats, b=finite_floats)
    def test_givens_is_orthonormal_and_annihilates(self, a, b):
        c, s = givens_rotation(a, b)
        assert c * c + s * s == pytest.approx(1.0, abs=1e-12)
        _, zero = apply_givens(c, s, a, b)
        assert abs(zero) <= 1e-9 * max(abs(a), abs(b), 1.0)

    @given(
        n=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    def test_back_substitution_solves_triangular_systems(self, n, seed):
        rng = np.random.default_rng(seed)
        upper = np.triu(rng.standard_normal((n, n))) + (n + 1) * np.eye(n)
        rhs = rng.standard_normal(n)
        y = back_substitution(upper, rhs)
        assert np.allclose(upper[:n, :n] @ y, rhs, atol=1e-8)


class TestChecksumProperties:
    @given(
        n=st.integers(2, 10),
        seed=st.integers(0, 10_000),
        scale=st.floats(min_value=0.1, max_value=1e3),
    )
    @settings(max_examples=40)
    def test_single_corruption_always_detected_and_corrected(self, n, seed, scale):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        i, j = int(rng.integers(0, n)), int(rng.integers(0, n))

        def corrupt(c):
            c = c.copy()
            c[i, j] += scale * (1.0 + abs(c[i, j]))
            return c

        product, report = checked_matmul(a, b, corrupt=corrupt, correct=True)
        assert report.corrected
        assert np.allclose(product, a @ b, atol=1e-6)

    @given(n=st.integers(2, 12), seed=st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_clean_product_never_flagged(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        _, report = checked_matmul(a, b)
        assert report.ok


class TestPartitionProperties:
    @given(n=st.integers(0, 500), blocks=st.integers(1, 32))
    def test_block_ranges_partition_exactly(self, n, blocks):
        ranges = block_ranges(n, blocks)
        assert len(ranges) == blocks
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        sizes = [stop - start for start, stop in ranges]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 == s2

    @given(n=st.integers(1, 256), ndim=st.integers(1, 3))
    def test_balanced_dims_product(self, n, ndim):
        dims = balanced_dims(n, ndim)
        assert len(dims) == ndim
        assert int(np.prod(dims)) == n

    @given(
        dims=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        periodic=st.tuples(st.booleans(), st.booleans()),
    )
    def test_topology_coords_rank_bijection(self, dims, periodic):
        topo = CartTopology(dims, periodic=periodic)
        seen = {topo.rank(topo.coords(r)) for r in range(topo.size)}
        assert seen == set(range(topo.size))


class TestReduceOpProperties:
    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_sum_matches_python(self, values):
        assert SUM.reduce(list(values)) == sum(values)

    @given(values=st.lists(finite_floats, min_size=1, max_size=20))
    def test_min_max_bracket_all_values(self, values):
        low = MIN.reduce(list(values))
        high = MAX.reduce(list(values))
        assert low == min(values) and high == max(values)
        assert all(low <= v <= high for v in values)


class TestCoarseModelProperties:
    @given(
        n=st.integers(4, 128),
        factor=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_restrict_prolong_preserves_shape_and_constants(self, n, factor, seed):
        rng = np.random.default_rng(seed)
        constant = float(rng.uniform(-5, 5))
        field = np.full(n, constant)
        rebuilt = prolong_field(restrict_field(field, factor), n, factor)
        assert rebuilt.shape == (n,)
        assert np.allclose(rebuilt, constant)

    @given(n=st.integers(4, 64), factor=st.integers(1, 6))
    def test_restriction_reduces_size(self, n, factor):
        coarse = restrict_field(np.arange(float(n)), factor)
        assert coarse.size == int(np.ceil(n / factor))


class TestEfficiencyProperties:
    @given(
        checkpoint=st.floats(min_value=1.0, max_value=1e4),
        mtbf=st.floats(min_value=10.0, max_value=1e9),
    )
    def test_efficiencies_in_unit_interval(self, checkpoint, mtbf):
        assert 0.0 <= cpr_efficiency(checkpoint, mtbf) <= 1.0
        assert 0.0 <= lflr_efficiency(min(checkpoint, mtbf), mtbf) <= 1.0

    @given(
        checkpoint=st.floats(min_value=1.0, max_value=1e3),
        mtbf=st.floats(min_value=1e3, max_value=1e8),
    )
    def test_daly_interval_positive_and_bounded(self, checkpoint, mtbf):
        interval = daly_optimal_interval(checkpoint, mtbf)
        assert interval >= checkpoint * 0.99
        assert np.isfinite(interval)

    @given(mtbf=st.floats(min_value=100.0, max_value=1e7))
    def test_cpr_efficiency_monotone_in_checkpoint_cost(self, mtbf):
        cheap = cpr_efficiency(1.0, mtbf)
        expensive = cpr_efficiency(50.0, mtbf)
        assert cheap >= expensive - 1e-12
