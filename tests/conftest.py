"""Shared pytest fixtures and options."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate tests/goldens/*.txt from the current drivers "
        "instead of asserting against them",
    )
    parser.addoption(
        "--update-parity",
        action="store_true",
        default=False,
        help="regenerate tests/data/engine_parity.json from the current "
        "solvers instead of asserting against it (see "
        "tests/test_engine_parity.py)",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether ``--update-goldens`` was passed (see tests/test_goldens.py)."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def update_parity(request) -> bool:
    """Whether ``--update-parity`` was passed (see tests/test_engine_parity.py)."""
    return request.config.getoption("--update-parity")

from repro.linalg.matgen import convection_diffusion_2d, poisson_1d, poisson_2d
from repro.machine.model import MachineModel


@pytest.fixture
def rng():
    """A deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def poisson_small():
    """A small SPD Poisson matrix (10x10 grid -> n = 100)."""
    return poisson_2d(10)


@pytest.fixture
def poisson_tiny():
    """A tiny 1-D Poisson matrix (n = 12)."""
    return poisson_1d(12)


@pytest.fixture
def convdiff_small():
    """A small nonsymmetric convection-diffusion matrix."""
    return convection_diffusion_2d(8, peclet=8.0)


@pytest.fixture
def ideal_machine():
    """A noise-free machine model with zero latency."""
    return MachineModel.ideal()


@pytest.fixture
def fast_recovery_machine():
    """A machine model with small recovery overheads, for failure tests."""
    return MachineModel(
        flop_rate=1e9,
        latency=1e-7,
        bandwidth=1e9,
        local_recovery_overhead=1e-5,
        restart_overhead=1e-3,
    )
