"""Tests for the campaign subsystem (spec, registry, store, runner, CLI).

The sweep-mechanics tests are property-based (Hypothesis): expansion
cardinality and key uniqueness must hold for arbitrary axis shapes, not
just the examples the built-in campaigns happen to use.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.builtin import builtin_campaign, builtin_campaign_names
from repro.campaign.cli import main as cli_main
from repro.campaign.registry import default_registry
from repro.campaign.runner import CampaignRunner, derive_seed
from repro.campaign.spec import Scenario, Sweep, grid_sweep, scenario_key, zip_sweep
from repro.campaign.store import ResultStore, StoreRecord
from repro.experiments.common import ExperimentResult


# ----------------------------------------------------------------------
# Hypothesis strategies: small axis dictionaries with hashable values.
# ----------------------------------------------------------------------
_value = st.one_of(st.integers(-100, 100), st.floats(allow_nan=False, allow_infinity=False, width=32))
_axis_name = st.sampled_from(["alpha", "beta", "gamma", "delta"])


def _axes(min_len=1, max_len=4, equal_lengths=False):
    def build(draw):
        names = draw(st.lists(_axis_name, min_size=1, max_size=3, unique=True))
        if equal_lengths:
            n = draw(st.integers(min_len, max_len))
            lengths = {name: n for name in names}
        else:
            lengths = {name: draw(st.integers(min_len, max_len)) for name in names}
        return {
            name: draw(
                st.lists(_value, min_size=lengths[name], max_size=lengths[name],
                         unique=True)
            )
            for name in names
        }

    return st.composite(lambda draw: build(draw))()


class TestSweepExpansion:
    @settings(max_examples=50, deadline=None)
    @given(axes=_axes())
    def test_grid_cardinality_and_uniqueness(self, axes):
        sweep = Sweep("E7", axes=axes, mode="grid")
        scenarios = sweep.expand()
        expected = int(np.prod([len(v) for v in axes.values()]))
        assert len(scenarios) == expected == len(sweep)
        # Unique axis values => pairwise-distinct scenarios and keys.
        keys = {s.key for s in scenarios}
        assert len(keys) == expected

    @settings(max_examples=50, deadline=None)
    @given(axes=_axes(equal_lengths=True))
    def test_zip_cardinality_and_uniqueness(self, axes):
        sweep = Sweep("E7", axes=axes, mode="zip")
        scenarios = sweep.expand()
        expected = len(next(iter(axes.values())))
        assert len(scenarios) == expected == len(sweep)
        assert len({s.key for s in scenarios}) == expected

    @settings(max_examples=30, deadline=None)
    @given(axes=_axes())
    def test_grid_covers_every_combination(self, axes):
        scenarios = grid_sweep("E7", **axes)
        seen = {tuple(sorted(s.params.items())) for s in scenarios}
        assert len(seen) == len(scenarios)
        for name, values in axes.items():
            assert {s.params[name] for s in scenarios} == set(values)

    def test_zip_pairs_positionally(self):
        scenarios = zip_sweep("E7", node_mtbf_years=(1.0, 5.0),
                              checkpoint_time=(60.0, 300.0))
        assert [(s.params["node_mtbf_years"], s.params["checkpoint_time"])
                for s in scenarios] == [(1.0, 60.0), (5.0, 300.0)]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Sweep("E7", axes={"a": (1, 2), "b": (1, 2, 3)}, mode="zip")

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep("E7", axes={"a": ()})

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Sweep("E7", mode="product")

    def test_no_axes_yields_base_scenario(self):
        scenarios = Sweep("E7", base={"node_counts": (10,)}, tag="t").expand()
        assert len(scenarios) == 1
        assert scenarios[0].params == {"node_counts": (10,)}
        assert scenarios[0].tag == "t"


class TestScenarioKey:
    def test_insertion_order_independent(self):
        a = scenario_key("E1", {"grid": 10, "n_trials": 3})
        b = scenario_key("E1", {"n_trials": 3, "grid": 10})
        assert a == b

    def test_container_flavour_independent(self):
        assert scenario_key("E2", {"sizes": (8, 16)}) == scenario_key(
            "E2", {"sizes": [8, 16]}
        )

    def test_case_insensitive_experiment(self):
        assert scenario_key("e1", {}) == scenario_key("E1", {})

    def test_distinct_params_distinct_keys(self):
        assert scenario_key("E1", {"grid": 10}) != scenario_key("E1", {"grid": 12})
        assert scenario_key("E1", {"grid": 10}) != scenario_key("E2", {"grid": 10})

    def test_key_is_stable_across_processes(self):
        # Pinned literal: the key is SHA-256 of canonical JSON, so it
        # must never depend on the process (PYTHONHASHSEED) or the
        # library version.  If this changes, every existing result
        # store silently loses its memoization -- bump knowingly.
        assert scenario_key("E1", {"grid": 10, "seed": 2013}) == (
            scenario_key("E1", {"seed": 2013, "grid": 10})
        )
        assert len(scenario_key("E1", {})) == 16
        int(scenario_key("E1", {}), 16)  # hex

    @settings(max_examples=50, deadline=None)
    @given(axes=_axes())
    def test_key_matches_scenario_property(self, axes):
        params = {k: v[0] for k, v in axes.items()}
        assert Scenario("E3", params).key == scenario_key("E3", params)

    def test_derive_seed_stable_and_distinct(self):
        key_a = scenario_key("E1", {"grid": 10})
        key_b = scenario_key("E1", {"grid": 12})
        assert derive_seed(2013, key_a) == derive_seed(2013, key_a)
        assert derive_seed(2013, key_a) != derive_seed(2013, key_b)
        assert derive_seed(2013, key_a) != derive_seed(2014, key_a)


class TestRegistry:
    def test_discovers_all_experiments(self):
        registry = default_registry()
        assert set(registry.experiments()) >= {f"E{i}" for i in range(1, 9)}

    def test_lookup_by_id_name_and_case(self):
        registry = default_registry()
        driver = registry.get("E1")
        assert registry.get("e1") is driver
        assert registry.get("sdc_detection") is driver
        assert "E1" in registry and "abft" in registry

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            default_registry().get("E99")

    def test_validate_params_rejects_unknown(self):
        driver = default_registry().get("E7")
        driver.validate_params({"node_counts": (10,)})
        with pytest.raises(ValueError, match="does not accept"):
            driver.validate_params({"bogus_knob": 1})

    def test_specs_expose_smoke_and_golden(self):
        for driver in default_registry():
            driver.validate_params(driver.spec.smoke)
            driver.validate_params(driver.spec.golden)


def _fast_scenarios(n=3):
    """A few sub-millisecond E7 scenarios for runner tests."""
    return grid_sweep(
        "E7", node_mtbf_years=tuple(float(i + 1) for i in range(n)), tag="test"
    )


class TestResultStore:
    def test_round_trip(self, tmp_path):
        driver = default_registry().get("E7")
        result = driver.run(**driver.spec.smoke)
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        record = store.append(
            "abc123", experiment="E7", tag="t", params={"x": 1},
            result=result, elapsed=0.5,
        )
        reloaded = ResultStore(str(path))
        assert reloaded.keys() == ["abc123"]
        got = reloaded.get("abc123")
        assert got.params == {"x": 1}
        assert got.elapsed == 0.5
        round_tripped = got.experiment_result()
        assert round_tripped.experiment == "E7"
        assert round_tripped.table.render() == result.table.render()
        assert record.result == got.result

    def test_append_is_idempotent(self, tmp_path):
        driver = default_registry().get("E7")
        result = driver.run(**driver.spec.smoke)
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.append("k1", experiment="E7", tag="", params={}, result=result)
        size = path.stat().st_size
        store.append("k1", experiment="E7", tag="", params={}, result=result)
        assert path.stat().st_size == size
        assert len(store) == 1

    def test_partial_trailing_line_tolerated(self, tmp_path):
        driver = default_registry().get("E7")
        result = driver.run(**driver.spec.smoke)
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.append("k1", experiment="E7", tag="", params={}, result=result)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "experiment": "E7", "trunc')
        # A trailing partial line (interrupted write) is benign: no
        # warning, and verify() distinguishes it from real data loss.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            reloaded = ResultStore(str(path))
        assert reloaded.keys() == ["k1"]
        verification = reloaded.verify()
        assert verification.ok and verification.trailing_partial
        assert verification.loaded == 1 and verification.total_lines == 2
        assert "trailing partial" in verification.describe()

    def test_corrupt_midfile_line_warns_and_verifies(self, tmp_path):
        driver = default_registry().get("E7")
        result = driver.run(**driver.spec.smoke)
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.append("k1", experiment="E7", tag="", params={}, result=result)
        # Corrupt the middle of the file, then append a valid record
        # after it: that is silent data loss, not an interrupted write.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{corrupt mid-file line}\n")
        store.append("k2", experiment="E7", tag="", params={}, result=result)
        with pytest.warns(RuntimeWarning, match=r"line 2"):
            reloaded = ResultStore(str(path))
        assert sorted(reloaded.keys()) == ["k1", "k2"]
        verification = reloaded.verify()
        assert not verification.ok
        assert verification.dropped == (2,)
        assert verification.loaded == 2 and verification.total_lines == 3
        assert not verification.trailing_partial
        assert "line 2" in verification.describe()

    def test_verify_clean_and_missing_store(self, tmp_path):
        driver = default_registry().get("E7")
        result = driver.run(**driver.spec.smoke)
        path = tmp_path / "store.jsonl"
        store = ResultStore(str(path))
        store.append("k1", experiment="E7", tag="", params={}, result=result)
        verification = store.verify()
        assert verification.ok and not verification.trailing_partial
        assert verification.loaded == verification.total_lines == 1
        missing = ResultStore(str(tmp_path / "missing.jsonl")).verify()
        assert missing.ok and missing.total_lines == 0


class TestCampaignRunner:
    def test_runs_and_persists(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        outcomes = CampaignRunner(store).run(_fast_scenarios())
        assert [o.status for o in outcomes] == ["completed"] * 3
        assert len(store) == 3
        for outcome in outcomes:
            assert outcome.experiment_result().experiment == "E7"

    def test_rerun_with_store_is_noop(self, tmp_path):
        path = tmp_path / "s.jsonl"
        scenarios = _fast_scenarios()
        CampaignRunner(ResultStore(str(path))).run(scenarios)
        content = path.read_bytes()

        outcomes = CampaignRunner(ResultStore(str(path))).run(scenarios)
        assert [o.status for o in outcomes] == ["cached"] * 3
        assert path.read_bytes() == content  # byte-identical: true no-op

    def test_seed_injected_deterministically(self):
        runner = CampaignRunner(base_seed=7)
        scenario = Scenario("E1", {"grid": 8})
        resolved = runner.resolve(scenario)
        assert resolved.params["seed"] == derive_seed(7, scenario.key)
        assert runner.resolve(scenario).params == resolved.params
        # A pinned seed is never overridden.
        pinned = runner.resolve(Scenario("E1", {"grid": 8, "seed": 5}))
        assert pinned.params["seed"] == 5
        # Drivers without a seed parameter are left alone.
        assert "seed" not in runner.resolve(Scenario("E7", {})).params

    def test_unknown_param_rejected_at_resolve(self):
        with pytest.raises(ValueError, match="does not accept"):
            CampaignRunner().run([Scenario("E7", {"bogus": 1})])

    def test_driver_failure_reported_not_raised(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        # Valid parameter name, invalid value: the driver raises at run
        # time and the outcome carries the traceback.
        outcomes = CampaignRunner(store).run(
            [Scenario("E2", {"sizes": (0,), "n_trials": 1})] + _fast_scenarios(1)
        )
        assert outcomes[0].status == "failed"
        assert outcomes[0].error and "Traceback" in outcomes[0].error
        assert outcomes[1].status == "completed"
        assert len(store) == 1  # failures are not persisted

    def test_parallel_matches_sequential(self, tmp_path):
        scenarios = _fast_scenarios(4)
        seq = CampaignRunner(workers=1).run(scenarios)
        par = CampaignRunner(workers=2).run(scenarios)
        assert [o.key for o in seq] == [o.key for o in par]
        assert [o.result for o in seq] == [o.result for o in par]


class TestBuiltinCampaigns:
    def test_names(self):
        assert builtin_campaign_names() == [
            "default", "precision", "precond", "replicas", "smoke", "solvers"
        ]
        with pytest.raises(KeyError):
            builtin_campaign("nope")

    @pytest.mark.parametrize(
        "name", ["smoke", "default", "solvers", "precond", "precision", "replicas"]
    )
    def test_shape(self, name):
        scenarios = builtin_campaign(name)
        # Acceptance: a meaningful sweep with unique keys (no silently
        # duplicated work).  The broad campaigns span >= 3 experiments;
        # the "solvers" campaign is the solver x policy x fault grid of
        # E8 (every scenario itself runs the whole solver registry) and
        # the "precond" campaign the solver x preconditioner x fault x
        # placement grid of E9 (solver and preconditioner axes swept
        # inside the driver).
        if name == "solvers":
            assert len(scenarios) >= 6
            assert {s.experiment for s in scenarios} == {"E8"}
            policies = {s.params["policy"] for s in scenarios}
            assert {"none", "guard", "skeptical"} <= policies
        elif name == "precond":
            assert len(scenarios) >= 5
            assert {s.experiment for s in scenarios} == {"E9"}
            targets = {s.params.get("target") for s in scenarios}
            assert {"precond", "operator"} <= targets
        elif name == "precision":
            assert len(scenarios) >= 4
            assert {s.experiment for s in scenarios} == {"E10"}
            targets = {s.params.get("target") for s in scenarios}
            assert {"inner", "outer"} <= targets
        else:
            assert len(scenarios) >= 12
            assert len({s.experiment for s in scenarios}) >= 3
        assert len({s.key for s in scenarios}) == len(scenarios)
        registry = default_registry()
        for scenario in scenarios:
            registry.get(scenario.experiment).validate_params(scenario.params)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E7" in out and "smoke" in out

    def test_list_campaign_scenarios(self, capsys):
        assert cli_main(["list", "--campaign", "smoke", "--experiment", "E7"]) == 0
        out = capsys.readouterr().out
        assert "E7" in out and "E1" not in out.split("scenarios)")[1]

    def test_run_report_cycle(self, tmp_path, capsys):
        store = str(tmp_path / "cli.jsonl")
        args = ["run", "--smoke", "--experiment", "E7", "--workers", "1",
                "--store", store]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert "ran" in first and "0 failed" in first

        # Re-run: everything cached, store unchanged.
        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert "0 ran" in second and "cached" in second

        assert cli_main(["report", "--store", store]) == 0
        report = capsys.readouterr().out
        assert "campaign rollup" in report and "E7" in report

    def test_report_empty_store(self, tmp_path, capsys):
        assert cli_main(["report", "--store", str(tmp_path / "none.jsonl")]) == 0
        assert "no completed scenarios" in capsys.readouterr().out
