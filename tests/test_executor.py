"""Tests for the resilient campaign executor (repro.campaign.executor).

Covers the supervisor's whole fault surface with *real* process
faults, not mocks: driver fixtures that call ``os._exit()`` mid-run,
sleep past the timeout, raise, or flip their own result payloads -- and
the chaos harness that injects the same faults into the production
worker loop.  The soak test pins the paper's selective-reliability
claim restated one level up: a campaign run under ``worker_crash`` /
``worker_hang`` / ``result_corrupt`` converges to a result store whose
keys and payloads are identical to a fault-free run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.campaign.cli import main as cli_main
from repro.campaign.executor import (
    FAILURE_OUTCOMES,
    AttemptRecord,
    ChaosFault,
    ChaosSpec,
    FailureLedger,
    RetryPolicy,
    SupervisedExecutor,
    payload_checksum,
)
from repro.campaign.report import failure_table, render_report
from repro.campaign.runner import CampaignRunner, derive_seed
from repro.campaign.spec import Scenario, grid_sweep
from repro.campaign.store import ResultStore


# ----------------------------------------------------------------------
# Module-level driver fixtures (picklable under every start method).
# Each returns the executor's (result_dict, error, elapsed) triple.
# ----------------------------------------------------------------------
def _ok_execute(experiment, params, attempt=1):
    """A well-behaved driver: echoes its inputs (attempt excluded)."""
    return {"experiment": experiment, "params": dict(params)}, None, 0.01


def _hard_death_execute(experiment, params, attempt=1):
    """Dies without ceremony (os._exit) on attempts <= crash_attempts."""
    if attempt <= params.get("crash_attempts", 0):
        os._exit(1)
    return _ok_execute(experiment, params, attempt)


def _hang_execute(experiment, params, attempt=1):
    """Sleeps far past any test timeout on attempts <= hang_attempts."""
    if attempt <= params.get("hang_attempts", 0):
        time.sleep(60.0)
    return _ok_execute(experiment, params, attempt)


def _raising_execute(experiment, params, attempt=1):
    """A poison driver: raises deterministically (traceback captured)."""
    if params.get("boom", True):
        return None, "Traceback (most recent call last):\nRuntimeError: boom",  0.0
    return _ok_execute(experiment, params, attempt)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        for status in ("crashed", "timeout", "corrupt"):
            assert policy.classify(status) == "transient"
        assert policy.classify("error") == "poison"

    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff=0.1, backoff_factor=2.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(2) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.4)

    def test_should_retry_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("crashed", 1)
        assert policy.should_retry("timeout", 2)
        assert not policy.should_retry("crashed", 3)
        # Poison is never retried by default ...
        assert not policy.should_retry("error", 1)
        # ... unless explicitly requested.
        assert RetryPolicy(retry_errors=True).should_retry("error", 1)

    def test_terminal_outcomes(self):
        policy = RetryPolicy()
        assert policy.terminal_outcome("timeout") == "timeout"
        assert policy.terminal_outcome("crashed") == "quarantined"
        assert policy.terminal_outcome("corrupt") == "quarantined"
        assert policy.terminal_outcome("error") == "failed"
        assert set(("failed", "timeout", "quarantined")) == set(FAILURE_OUTCOMES)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# ----------------------------------------------------------------------
# ChaosSpec
# ----------------------------------------------------------------------
class TestChaosSpec:
    def test_string_round_trip(self):
        text = "worker_crash:p=0.1+worker_hang:p=0.05,seconds=120.0+result_corrupt:p=0.01"
        spec = ChaosSpec.parse(text)
        assert spec.to_string() == text
        assert ChaosSpec.parse(spec.to_string()) == spec
        assert ChaosSpec.from_dict(spec.to_dict()) == spec

    def test_none_is_identity(self):
        assert not ChaosSpec.parse("none")
        assert not ChaosSpec.parse(None)
        assert ChaosSpec.parse("none").to_string() == "none"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSpec.parse("worker_explode:p=0.5")  # repro: allow(spec-strings)

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not take parameters"):
            # repro: allow(spec-strings) -- deliberately malformed fixture
            ChaosSpec.parse("worker_crash:p=0.5,seconds=10")

    def test_probability_validated(self):
        with pytest.raises(ValueError, match="outside"):
            ChaosFault("worker_crash", {"p": 1.5})

    def test_draws_are_deterministic_and_attempt_dependent(self):
        fault = ChaosFault("worker_crash", {"p": 0.5})
        hits = [fault.hits(7, "abc", attempt) for attempt in range(1, 30)]
        assert hits == [fault.hits(7, "abc", a) for a in range(1, 30)]
        # Independent draws per attempt: with p=0.5 over 29 attempts,
        # both outcomes must occur.
        assert True in hits and False in hits

    def test_attempts_limit(self):
        fault = ChaosFault("worker_crash", {"p": 1.0, "attempts": 2})
        assert fault.hits(0, "k", 1) and fault.hits(0, "k", 2)
        assert not fault.hits(0, "k", 3)

    def test_corrupt_result_breaks_checksum(self):
        spec = ChaosSpec.parse("result_corrupt:p=1")
        payload = {"summary": {"x": 1.0}}
        checksum = payload_checksum(payload)
        corrupted = spec.corrupt_result(payload, 0, "k", 1)
        assert payload_checksum(corrupted) != checksum
        # p=0 never corrupts.
        clean = ChaosSpec.parse("result_corrupt:p=0").corrupt_result(payload, 0, "k", 1)
        assert payload_checksum(clean) == checksum


# ----------------------------------------------------------------------
# FailureLedger
# ----------------------------------------------------------------------
class TestFailureLedger:
    def test_record_and_reload(self, tmp_path):
        path = str(tmp_path / "runs.ledger.jsonl")
        ledger = FailureLedger(path)
        ledger.record(AttemptRecord("k1", "E7", 1, "crashed", worker=123))
        ledger.record(AttemptRecord("k1", "E7", 2, "ok", outcome="completed"))
        reloaded = FailureLedger(path)
        assert len(reloaded) == 2
        assert [r.status for r in reloaded.history()["k1"]] == ["crashed", "ok"]
        assert reloaded.outcomes()["k1"].outcome == "completed"
        assert reloaded.failed_keys() == []

    def test_failed_keys_cleared_by_later_completion(self, tmp_path):
        ledger = FailureLedger(str(tmp_path / "l.jsonl"))
        ledger.record(AttemptRecord("k1", "E7", 3, "crashed", outcome="quarantined"))
        ledger.record(AttemptRecord("k2", "E7", 1, "error", outcome="failed"))
        ledger.record(AttemptRecord("k3", "E7", 2, "timeout", outcome="timeout"))
        assert sorted(ledger.failed_keys()) == ["k1", "k2", "k3"]
        # A later run completes k1: the append-only journal clears it.
        ledger.record(AttemptRecord("k1", "E7", 1, "ok", outcome="completed"))
        assert sorted(ledger.failed_keys()) == ["k2", "k3"]

    def test_partial_trailing_line_tolerated(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        ledger = FailureLedger(path)
        ledger.record(AttemptRecord("k1", "E7", 1, "ok", outcome="completed"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "trunc')
        assert len(FailureLedger(path)) == 1

    def test_sidecar_path_convention(self):
        assert FailureLedger.path_for("results.jsonl") == "results.ledger.jsonl"
        assert FailureLedger.path_for("x/store") == "x/store.ledger.jsonl"

    def test_file_created_lazily(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        FailureLedger(path)
        assert not os.path.exists(path)


# ----------------------------------------------------------------------
# SupervisedExecutor against misbehaving drivers
# ----------------------------------------------------------------------
def _tasks(n, **params):
    return [(f"key{i}", "EX", {"i": i, **params}) for i in range(n)]


def _executor(**kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, backoff=0.01))
    kwargs.setdefault("workers", 2)
    return SupervisedExecutor(**kwargs)


class TestSupervisedExecutor:
    def test_clean_run_in_input_order(self):
        results = _executor(execute=_ok_execute).run(_tasks(5))
        assert [r.key for r in results] == [f"key{i}" for i in range(5)]
        assert all(r.status == "completed" and r.attempts == 1 for r in results)
        assert results[3].result["params"]["i"] == 3

    def test_hard_worker_death_is_retried(self, tmp_path):
        # Scenario 1 SIGKILLs its worker on the first attempt; the
        # campaign still completes, the crashed scenario is retried,
        # and sibling scenarios are unaffected.
        ledger = FailureLedger(str(tmp_path / "l.jsonl"))
        tasks = [
            ("crashy", "EX", {"crash_attempts": 1}),
            ("sibling-a", "EX", {}),
            ("sibling-b", "EX", {}),
        ]
        results = _executor(execute=_hard_death_execute, ledger=ledger).run(tasks)
        assert [r.status for r in results] == ["completed"] * 3
        crashy = results[0]
        assert crashy.attempts == 2 and crashy.history == ("crashed", "ok")
        assert [r.attempts for r in results[1:]] == [1, 1]
        # The ledger journals both attempts, the crash with a worker pid.
        history = ledger.history()["crashy"]
        assert [r.status for r in history] == ["crashed", "ok"]
        assert history[0].worker is not None and history[0].outcome is None
        assert history[1].outcome == "completed"

    def test_unrecoverable_crash_is_quarantined(self, tmp_path):
        ledger = FailureLedger(str(tmp_path / "l.jsonl"))
        tasks = [("doomed", "EX", {"crash_attempts": 99}), ("ok", "EX", {})]
        results = _executor(execute=_hard_death_execute, ledger=ledger).run(tasks)
        assert results[0].status == "quarantined"
        assert results[0].attempts == 3
        assert results[0].history == ("crashed",) * 3
        assert results[1].status == "completed"
        assert ledger.failed_keys() == ["doomed"]

    def test_hang_is_killed_and_retried(self):
        # Attempt 1 sleeps past the deadline: the worker is killed and
        # respawned, and attempt 2 completes while siblings finish.
        tasks = [("slow", "EX", {"hang_attempts": 1}), ("fast", "EX", {})]
        start = time.monotonic()
        results = _executor(execute=_hang_execute, timeout=1.0).run(tasks)
        assert [r.status for r in results] == ["completed"] * 2
        assert results[0].history == ("timeout", "ok")
        assert time.monotonic() - start < 30.0  # killed, not slept out

    def test_persistent_hang_times_out_terminally(self, tmp_path):
        ledger = FailureLedger(str(tmp_path / "l.jsonl"))
        tasks = [("stuck", "EX", {"hang_attempts": 99}), ("fine", "EX", {})]
        results = _executor(
            execute=_hang_execute, timeout=0.5,
            retry=RetryPolicy(max_attempts=2, backoff=0.01), ledger=ledger,
        ).run(tasks)
        assert results[0].status == "timeout"
        assert results[0].history == ("timeout", "timeout")
        assert results[1].status == "completed"
        assert ledger.failed_keys() == ["stuck"]
        assert "timeout" in (ledger.outcomes()["stuck"].error or "")

    def test_poison_error_not_retried(self):
        results = _executor(execute=_raising_execute).run(
            [("bad", "EX", {"boom": True}), ("good", "EX", {"boom": False})]
        )
        assert results[0].status == "failed" and results[0].attempts == 1
        assert "RuntimeError" in results[0].error
        assert results[1].status == "completed"

    def test_chaos_crash_inside_production_worker(self):
        # Chaos fires in the real worker loop (not a test fixture):
        # deterministic first-two-attempts crash, third succeeds.
        results = _executor(
            execute=_ok_execute,
            chaos="worker_crash:p=1,attempts=2",
        ).run(_tasks(2))
        assert all(r.status == "completed" for r in results)
        assert all(r.history == ("crashed", "crashed", "ok") for r in results)

    def test_chaos_corruption_detected_by_checksum(self):
        results = _executor(
            execute=_ok_execute,
            chaos="result_corrupt:p=1,attempts=1",
        ).run(_tasks(2))
        assert all(r.status == "completed" for r in results)
        assert all(r.history == ("corrupt", "ok") for r in results)
        # The corrupted payload never leaks into the final result.
        assert all("__chaos_corrupted__" not in r.result for r in results)

    def test_completed_callback_fires_per_terminal_result(self):
        seen = []
        _executor(execute=_ok_execute).run(
            _tasks(4), completed=lambda slot, res: seen.append((slot, res.key))
        )
        assert sorted(seen) == [(i, f"key{i}") for i in range(4)]


# ----------------------------------------------------------------------
# Runner integration: resilience end to end
# ----------------------------------------------------------------------
def _e7_scenarios(n=6):
    return grid_sweep(
        "E7", node_mtbf_years=tuple(float(i + 1) for i in range(n)), tag="soak"
    )


def _payloads(store):
    """Key -> result payload, the store content modulo timing."""
    return {key: store.get(key).result for key in store.keys()}


class TestRunnerResilience:
    def test_chaos_soak_store_matches_clean_run(self, tmp_path):
        # The tentpole claim: a campaign run whose own workers crash,
        # hang and corrupt results converges to a store identical (same
        # keys, same payloads) to a fault-free run, with every retry
        # visible in the ledger.
        scenarios = _e7_scenarios()
        clean = ResultStore(str(tmp_path / "clean.jsonl"))
        CampaignRunner(clean, workers=2).run(scenarios)

        chaotic = ResultStore(str(tmp_path / "chaos.jsonl"))
        runner = CampaignRunner(
            chaotic, workers=2, timeout=3.0,
            retry=RetryPolicy(max_attempts=8, backoff=0.01),
            chaos="worker_crash:p=0.5+worker_hang:p=0.2,seconds=60"
                  "+result_corrupt:p=0.3",
        )
        outcomes = runner.run(scenarios)
        assert [o.status for o in outcomes] == ["completed"] * len(scenarios)
        assert _payloads(chaotic) == _payloads(clean)
        # Chaos actually happened and the ledger saw it.
        assert sum(o.attempts for o in outcomes) > len(outcomes)
        statuses = {r.status for r in runner.ledger.records()}
        assert "crashed" in statuses
        # The failure table renders the history.
        table = failure_table(runner.ledger)
        assert table is not None and "crashed" in table.render()

    def test_retried_results_bit_identical_to_first_try(self, tmp_path):
        # Per-scenario seed derivation is resolved before dispatch, so
        # the derive_seed stream is the same on attempt 1 and attempt 3
        # -- retried results must be bit-identical to first-try ones,
        # even for a genuinely stochastic fault-injection driver (E1).
        scenarios = [Scenario("E1", {"grid": 6, "n_trials": 2}, tag="seed")]
        clean = ResultStore(str(tmp_path / "clean.jsonl"))
        CampaignRunner(clean, workers=2, base_seed=17).run(scenarios)

        chaotic = ResultStore(str(tmp_path / "chaos.jsonl"))
        runner = CampaignRunner(
            chaotic, workers=2, base_seed=17,
            retry=RetryPolicy(max_attempts=4, backoff=0.01),
            chaos="worker_crash:p=1,attempts=2",
        )
        outcomes = runner.run(scenarios)
        assert outcomes[0].status == "completed"
        assert outcomes[0].attempts == 3  # two chaos crashes + success
        assert _payloads(chaotic) == _payloads(clean)
        # Both resolved the same injected seed.
        resolved = runner.resolve(scenarios[0])
        assert resolved.params["seed"] == derive_seed(17, scenarios[0].key)

    def test_failed_outcomes_survive_the_process(self, tmp_path):
        # A quarantined scenario's history must be re-loadable from
        # disk by a fresh ledger (nothing lives only in memory).
        store_path = str(tmp_path / "s.jsonl")
        runner = CampaignRunner(
            ResultStore(store_path), workers=2,
            retry=RetryPolicy(max_attempts=2, backoff=0.01),
            chaos="worker_crash:p=1",
        )
        scenarios = _e7_scenarios(2)
        outcomes = runner.run(scenarios)
        assert [o.status for o in outcomes] == ["quarantined"] * 2
        reloaded = FailureLedger(FailureLedger.path_for(store_path))
        assert sorted(reloaded.failed_keys()) == sorted(s.key for s in scenarios)
        for records in reloaded.history().values():
            assert [r.status for r in records] == ["crashed", "crashed"]
            assert records[-1].outcome == "quarantined"

    def test_in_process_failures_are_journaled(self, tmp_path):
        # The sequential path journals too: today's satellite fix for
        # "runner.py only ever appends successes".
        store_path = str(tmp_path / "s.jsonl")
        runner = CampaignRunner(ResultStore(store_path), workers=1)
        outcomes = runner.run(
            [Scenario("E2", {"sizes": (0,), "n_trials": 1})] + _e7_scenarios(1)
        )
        assert outcomes[0].status == "failed"
        assert outcomes[1].status == "completed"
        reloaded = FailureLedger(FailureLedger.path_for(store_path))
        assert reloaded.failed_keys() == [outcomes[0].key]
        failed = reloaded.outcomes()[outcomes[0].key]
        assert failed.status == "error" and "Traceback" in failed.error
        assert failed.elapsed >= 0.0 and failed.attempt == 1

    def test_ledger_disabled(self, tmp_path):
        store_path = str(tmp_path / "s.jsonl")
        runner = CampaignRunner(ResultStore(store_path), ledger=False)
        runner.run(_e7_scenarios(1))
        assert not os.path.exists(FailureLedger.path_for(store_path))


# ----------------------------------------------------------------------
# CLI: --timeout/--retries/--chaos/--retry-failed and the report
# ----------------------------------------------------------------------
class TestCliResilience:
    def test_chaos_quarantine_then_retry_failed(self, tmp_path, capsys):
        store = str(tmp_path / "cli.jsonl")
        base = ["run", "--smoke", "--experiment", "E7", "--workers", "2",
                "--store", store]
        # Every attempt crashes: both E7 scenarios quarantine, exit 1.
        assert cli_main(base + ["--chaos", "worker_crash:p=1",
                                "--retries", "2", "--backoff", "0.01"]) == 1
        out = capsys.readouterr().out
        assert "QUAR" in out and "2 failed" in out
        assert len(ResultStore(store)) == 0

        # --retry-failed without chaos re-executes exactly that set.
        assert cli_main(base + ["--retry-failed"]) == 0
        out = capsys.readouterr().out
        assert "2 ran" in out and "0 cached" in out
        assert len(ResultStore(store)) == 2

        # Everything recovered: nothing left to retry.
        assert cli_main(base + ["--retry-failed"]) == 0
        assert "nothing to retry" in capsys.readouterr().out

        # A plain re-run is fully cached (nothing re-executed).
        assert cli_main(base) == 0
        assert "0 ran" in capsys.readouterr().out

        # The report surfaces the failure history from the ledger: the
        # quarantine-era crashes plus the recovering retry, with the
        # latest terminal outcome ("completed" after --retry-failed).
        assert cli_main(["report", "--store", store]) == 0
        report = capsys.readouterr().out
        assert "failure history" in report
        assert "crashed>crashed>ok" in report and "completed" in report

    def test_timeout_flag_kills_and_completes_siblings(self, tmp_path, capsys):
        store = str(tmp_path / "cli.jsonl")
        # worker_hang on attempt 1 of every scenario; --timeout reaps
        # them and the retries complete the campaign.
        args = ["run", "--smoke", "--experiment", "E7", "--workers", "2",
                "--store", store, "--timeout", "1.0",
                "--chaos", "worker_hang:p=1,attempts=1",
                "--retries", "3", "--backoff", "0.01"]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "2 ran" in out and "2 retried" in out

    def test_retry_failed_requires_ledger(self, tmp_path, capsys):
        assert cli_main(["run", "--smoke", "--experiment", "E7",
                         "--no-store", "--retry-failed"]) == 2
        assert "--retry-failed needs a ledger" in capsys.readouterr().err

    def test_report_with_ledger_only(self, tmp_path, capsys):
        # A ledger full of failures but an empty store still reports.
        store = str(tmp_path / "cli.jsonl")
        ledger = FailureLedger(FailureLedger.path_for(store))
        ledger.record(AttemptRecord("kx", "E7", 1, "error",
                                    outcome="failed", error="RuntimeError: x"))
        assert cli_main(["report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "failure history" in out and "kx" in out


# ----------------------------------------------------------------------
# Report helpers
# ----------------------------------------------------------------------
class TestFailureReport:
    def test_clean_history_is_omitted(self, tmp_path):
        ledger = FailureLedger(str(tmp_path / "l.jsonl"))
        ledger.record(AttemptRecord("clean", "E7", 1, "ok", outcome="completed"))
        assert failure_table(ledger) is None

    def test_troubled_history_is_shown(self, tmp_path):
        ledger = FailureLedger(str(tmp_path / "l.jsonl"))
        ledger.record(AttemptRecord("k", "E7", 1, "crashed"))
        ledger.record(AttemptRecord("k", "E7", 2, "ok", outcome="completed"))
        table = failure_table(ledger)
        rendered = table.render()
        assert "crashed>ok" in rendered and "completed" in rendered

    def test_render_report_includes_ledger_section(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.jsonl"))
        ledger = FailureLedger(str(tmp_path / "l.jsonl"))
        ledger.record(AttemptRecord("k", "E7", 1, "timeout", outcome="timeout",
                                    error="scenario exceeded timeout"))
        text = render_report(store, ledger=ledger)
        assert "failure history" in text and "timeout" in text
