"""Tests for the PDE substrate, LFLR store/manager/driver, coarse-model
recovery and the checkpoint/restart baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint import CheckpointStore, run_cpr_stepped
from repro.reliability import FailurePlan
from repro.lflr import (
    CoarseModelStore,
    PersistentStore,
    prolong_field,
    restrict_field,
    run_lflr_heat,
)
from repro.machine import MachineModel
from repro.pde import (
    AdvectionProblem1D,
    Grid1D,
    HeatProblem1D,
    ImplicitHeatProblem1D,
    advection_step_upwind,
    backward_euler_matrix,
    gaussian_initial_condition,
    heat_step_distributed,
    heat_step_explicit,
    partition_interval,
    stable_time_step,
)
from repro.simmpi import run_spmd
from repro.skeptical import conservation_check


@pytest.fixture
def lflr_machine():
    """Machine with tiny recovery overhead so failure tests stay fast."""
    return MachineModel(
        flop_rate=1e9, latency=1e-7, bandwidth=1e9,
        local_recovery_overhead=1e-5, restart_overhead=1e-3,
    )


class TestGrid:
    def test_partition_covers_and_balances(self):
        ranges = partition_interval(10, 3)
        assert ranges[0] == (0, 4) and ranges[-1] == (7, 10)
        with pytest.raises(ValueError):
            partition_interval(2, 4)

    def test_sequential_grid_spans_domain(self):
        grid = Grid1D(None, 16)
        assert grid.n_local == 16
        assert grid.exchange_halos(np.ones(16)) == (0.0, 0.0)
        assert grid.global_sum(np.ones(16)) == 16.0

    def test_distributed_halo_exchange(self):
        n_global = 12

        def program(comm):
            grid = Grid1D(comm, n_global)
            u = np.full(grid.n_local, float(comm.rank))
            left, right = grid.exchange_halos(u)
            return comm.rank, left, right

        results = run_spmd(3, program)
        assert results[0] == (0, 0.0, 1.0)
        assert results[1] == (1, 0.0, 2.0)
        assert results[2] == (2, 1.0, 0.0)

    def test_gather_field(self):
        def program(comm):
            grid = Grid1D(comm, 9)
            u = grid.local_coordinates()
            return grid.gather_field(u)

        full = run_spmd(3, program)[0]
        assert np.allclose(full, (np.arange(9) + 1) / 10.0)

    def test_wrong_local_length_rejected(self):
        grid = Grid1D(None, 8)
        with pytest.raises(ValueError):
            grid.exchange_halos(np.ones(5))


class TestHeat:
    def test_stable_step_formula(self):
        assert stable_time_step(0.1, 1.0, safety=1.0) == pytest.approx(0.005)

    def test_explicit_step_decays_and_stays_bounded(self):
        problem = HeatProblem1D(n_points=64)
        initial_max = problem.u.max()
        problem.step(50)
        assert 0 < problem.u.max() < initial_max
        assert np.all(problem.u >= -1e-12)

    def test_total_heat_decreases_monotonically(self):
        problem = HeatProblem1D(n_points=64)
        totals = [problem.total_heat()]
        for _ in range(5):
            problem.step(10)
            totals.append(problem.total_heat())
        assert all(totals[i + 1] <= totals[i] + 1e-15 for i in range(5))

    def test_distributed_step_matches_sequential(self):
        n_global, n_steps = 24, 15
        problem = HeatProblem1D(n_points=n_global)
        dt = problem.dt
        expected = problem.run(n_steps)

        def program(comm):
            grid = Grid1D(comm, n_global)
            u = gaussian_initial_condition(grid.local_coordinates())
            for _ in range(n_steps):
                u = heat_step_distributed(grid, u, dt, 1.0)
            return grid.gather_field(u)

        for field in run_spmd(4, program):
            assert np.allclose(field, expected, atol=1e-13)

    def test_step_records_history(self):
        problem = HeatProblem1D(n_points=16)
        problem.step(3, record=True)
        assert len(problem.history) == 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HeatProblem1D(n_points=0)
        with pytest.raises(ValueError):
            heat_step_explicit(np.ones(4), dt=-1.0, h=0.1, alpha=1.0)


class TestAdvectionAndConservation:
    def test_mass_exactly_conserved_periodic(self):
        problem = AdvectionProblem1D(n_points=128)
        before = problem.total_mass()
        problem.step(200)
        assert problem.total_mass() == pytest.approx(before, rel=1e-12)

    def test_conservation_check_integration(self):
        problem = AdvectionProblem1D(n_points=64)
        before = problem.total_mass()
        problem.step(10)
        assert conservation_check(before, problem.total_mass()).passed

    def test_cfl_violation_rejected(self):
        with pytest.raises(ValueError):
            advection_step_upwind(np.ones(8), c=1.0, dt=1.0, h=0.01)

    def test_negative_speed_supported(self):
        problem = AdvectionProblem1D(n_points=64, speed=-1.0)
        before = problem.total_mass()
        problem.step(20)
        assert problem.total_mass() == pytest.approx(before, rel=1e-12)


class TestImplicitHeat:
    def test_matrix_is_spd_and_identity_plus_laplacian(self):
        matrix = backward_euler_matrix(10, dt=1e-3, alpha=1.0)
        dense = matrix.to_dense()
        assert np.allclose(dense, dense.T)
        assert np.all(np.linalg.eigvalsh(dense) >= 1.0 - 1e-12)

    def test_implicit_step_stable_with_large_dt(self):
        problem = ImplicitHeatProblem1D(n_points=64, dt=0.05)
        problem.step(5)
        assert np.all(np.isfinite(problem.u))
        assert problem.u.max() <= 1.0 + 1e-12

    def test_implicit_matches_explicit_for_small_dt(self):
        n = 32
        h = 1.0 / (n + 1)
        dt = stable_time_step(h, 1.0) / 4
        explicit = HeatProblem1D(n_points=n, dt=dt)
        implicit = ImplicitHeatProblem1D(n_points=n, dt=dt)
        explicit.step(20)
        implicit.step(20)
        assert np.allclose(explicit.u, implicit.u, atol=5e-3)

    def test_cg_iterations_recorded(self):
        problem = ImplicitHeatProblem1D(n_points=32, dt=1e-3)
        problem.step(3)
        assert len(problem.cg_iterations) == 3
        problem.reset()
        assert problem.cg_iterations == []


class TestCoarseModel:
    def test_restrict_prolong_roundtrip_smooth_field(self):
        x = np.linspace(0, 1, 64)
        field = np.sin(np.pi * x)
        coarse = restrict_field(field, 4)
        rebuilt = prolong_field(coarse, 64, 4)
        assert np.max(np.abs(rebuilt - field)) < 0.1

    def test_restrict_factor_one_identity(self):
        field = np.arange(10.0)
        assert np.array_equal(restrict_field(field, 1), field)

    def test_prolong_edge_cases(self):
        assert prolong_field(np.zeros(0), 4, 2).shape == (4,)
        assert np.allclose(prolong_field(np.array([3.0]), 5, 2), 3.0)
        assert prolong_field(np.array([1.0, 2.0]), 0, 2).shape == (0,)

    def test_store_recover_and_overhead(self):
        store = CoarseModelStore(factor=4)
        field = np.sin(np.linspace(0, 3, 32))
        store.store(owner=2, field=field, step=5)
        rebuilt = store.recover(owner=2)
        assert rebuilt.shape == field.shape
        assert np.max(np.abs(rebuilt - field)) < 0.25
        assert store.memory_overhead(2) == pytest.approx(8 / 32)
        assert store.recover(owner=7) is None
        assert store.owners() == [2]

    def test_better_than_zero_bootstrap(self):
        field = np.sin(np.linspace(0, 3, 64)) + 1.0
        store = CoarseModelStore(factor=8)
        store.store(owner=0, field=field)
        rebuilt = store.recover(owner=0)
        assert np.linalg.norm(rebuilt - field) < np.linalg.norm(field)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoarseModelStore(factor=0)
        with pytest.raises(ValueError):
            restrict_field(np.ones((2, 2)), 2)


class TestPersistentStore:
    def test_persist_and_mirror_roundtrip(self):
        def program(comm):
            store = PersistentStore(comm, history=3)
            store.persist(0, {"u": np.full(4, float(comm.rank))})
            store.persist(1, {"u": np.full(4, 10.0 + comm.rank)})
            latest = store.latest_own()
            mirrored = store.mirrored_latest(store.mirror_source)
            return (
                latest.step,
                float(latest.state["u"][0]),
                mirrored.step,
                float(mirrored.state["u"][0]),
            )

        results = run_spmd(3, program)
        for rank, (own_step, own_val, mir_step, mir_val) in enumerate(results):
            assert own_step == 1 and own_val == 10.0 + rank
            source = (rank - 1) % 3
            assert mir_step == 1 and mir_val == 10.0 + source

    def test_history_bounded_and_step_lookup(self):
        def program(comm):
            store = PersistentStore(comm, history=2)
            for step in range(4):
                store.persist(step, {"u": np.array([float(step)])}, mirror=False)
            return store.own_steps(), store.own_at_step(3).state["u"][0], store.own_at_step(0)

        steps, latest, missing = run_spmd(1, program)[0]
        assert steps == [2, 3]
        assert latest == 3.0
        assert missing is None

    def test_partner_mapping(self):
        def program(comm):
            store = PersistentStore(comm, partner_offset=1)
            return store.partner, store.mirror_source

        results = run_spmd(4, program)
        assert results == [(1, 3), (2, 0), (3, 1), (0, 2)]

    def test_self_partner_rejected(self):
        def program(comm):
            try:
                PersistentStore(comm, partner_offset=2)
                return "ok"
            except ValueError:
                return "rejected"

        assert run_spmd(2, program) == ["rejected", "rejected"]

    def test_snapshot_isolation(self):
        def program(comm):
            store = PersistentStore(comm, history=2)
            data = np.ones(3)
            store.persist(0, {"u": data}, mirror=False)
            data[:] = 99.0
            return float(store.latest_own().state["u"][0])

        assert run_spmd(1, program) == [1.0]


class TestLflrHeatDriver:
    def test_fault_free_matches_sequential(self, lflr_machine):
        result = run_lflr_heat(4, n_global=40, n_steps=25, machine=lflr_machine)
        reference = HeatProblem1D(
            n_points=40, dt=stable_time_step(1.0 / 41, 1.0)
        ).run(25)
        assert result.n_recoveries == 0
        assert np.allclose(result.field, reference, atol=1e-13)

    def test_single_failure_recovers_exactly(self, lflr_machine):
        clean = run_lflr_heat(4, n_global=40, n_steps=25, machine=lflr_machine)
        plan = FailurePlan.single(clean.virtual_time * 0.4, 2)
        faulty = run_lflr_heat(
            4, n_global=40, n_steps=25, machine=lflr_machine, failure_plan=plan
        )
        assert faulty.n_recoveries == 1
        assert np.allclose(faulty.field, clean.field, atol=1e-13)
        assert faulty.virtual_time > clean.virtual_time
        assert faulty.events.get("rank_death", 0) == 1
        assert faulty.events.get("rank_respawn", 0) == 1

    def test_two_spaced_failures_recover(self, lflr_machine):
        clean = run_lflr_heat(4, n_global=40, n_steps=30, machine=lflr_machine)
        spacing = clean.virtual_time * 0.3 + 100 * lflr_machine.local_recovery_overhead
        plan = FailurePlan([(clean.virtual_time * 0.2, 1),
                            (clean.virtual_time * 0.2 + spacing, 3)])
        faulty = run_lflr_heat(
            4, n_global=40, n_steps=30, machine=lflr_machine, failure_plan=plan
        )
        assert faulty.n_recoveries >= 1
        assert np.allclose(faulty.field, clean.field, atol=1e-13)

    def test_failure_requires_two_ranks(self, lflr_machine):
        with pytest.raises(ValueError):
            run_lflr_heat(1, n_global=8, n_steps=2, machine=lflr_machine,
                          failure_plan=FailurePlan.single(0.1, 0))

    def test_recovery_time_reported(self, lflr_machine):
        clean = run_lflr_heat(3, n_global=30, n_steps=20, machine=lflr_machine)
        plan = FailurePlan.single(clean.virtual_time * 0.5, 1)
        faulty = run_lflr_heat(3, n_global=30, n_steps=20, machine=lflr_machine,
                               failure_plan=plan)
        assert faulty.recovery_time > 0.0
        assert faulty.events.get("lflr_recovery", 0) >= 1


class TestCheckpointRestart:
    def test_store_write_read_roundtrip(self):
        machine = MachineModel(checkpoint_bandwidth=1e6)
        store = CheckpointStore(machine, n_ranks=2, keep=2)
        store.write(5, {"u": np.arange(4.0)})
        store.write(10, {"u": np.arange(4.0) * 2})
        restored = store.read_latest()
        assert restored.step == 10
        assert np.allclose(restored.state["u"], np.arange(4.0) * 2)
        assert store.n_stored == 2
        assert store.total_write_time > 0

    def test_store_keep_limit(self):
        store = CheckpointStore(MachineModel(), n_ranks=1, keep=1)
        store.write(1, {"x": 1.0})
        store.write(2, {"x": 2.0})
        assert store.n_stored == 1
        assert store.latest().step == 2

    def test_cpr_fault_free(self):
        result = run_cpr_stepped(
            lambda state, i: {"x": state["x"] + 1.0},
            {"x": 0.0}, 20, interval=5, step_time=0.01,
        )
        assert result.state["x"] == 20.0
        assert result.n_restarts == 0
        assert result.steps_recomputed == 0
        assert result.info["checkpoints_written"] >= 4

    def test_cpr_failure_restarts_and_still_finishes(self):
        plan = FailurePlan.single(0.14, 2)
        result = run_cpr_stepped(
            lambda state, i: {"x": state["x"] + 1.0},
            {"x": 0.0}, 20, interval=5, step_time=0.01, failure_plan=plan,
        )
        assert result.state["x"] == 20.0
        assert result.n_restarts == 1
        assert result.steps_recomputed > 0
        assert result.restart_time > 0

    def test_cpr_overhead_grows_with_failures(self):
        def step(state, i):
            return {"x": state["x"] + 1.0}

        base = run_cpr_stepped(step, {"x": 0.0}, 30, interval=10, step_time=0.01)
        plan = FailurePlan([(0.05, 0), (0.21, 1)])
        faulty = run_cpr_stepped(step, {"x": 0.0}, 30, interval=10, step_time=0.01,
                                 failure_plan=plan)
        assert faulty.virtual_time > base.virtual_time
        assert faulty.n_restarts == 2

    def test_cpr_matches_heat_reference(self):
        heat = HeatProblem1D(n_points=24)
        reference = heat.run(15)

        def step(state, i):
            return {"u": heat_step_explicit(state["u"], heat.dt, heat.h, 1.0)}

        heat.reset()
        plan = FailurePlan.single(0.03, 1)
        result = run_cpr_stepped(step, {"u": heat.u.copy()}, 15, interval=4,
                                 step_time=0.01, failure_plan=plan)
        assert np.allclose(result.state["u"], reference, atol=1e-13)

    def test_cpr_validation(self):
        with pytest.raises(ValueError):
            run_cpr_stepped(lambda s, i: s, {"x": 0.0}, 5, interval=0)
