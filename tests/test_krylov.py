"""Tests for the Krylov solvers (sequential and distributed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.krylov import (
    ArnoldiBreakdown,
    arnoldi_step,
    cg,
    fgmres,
    gmres,
    pipelined_cg,
    pipelined_gmres,
)
from repro.linalg import (
    DistributedRowMatrix,
    DistributedVector,
    JacobiPreconditioner,
    NeumannPolynomialPreconditioner,
    poisson_2d,
    random_spd,
)
from repro.simmpi import run_spmd


def relative_residual(matrix, x, b):
    return float(np.linalg.norm(matrix.matvec(np.asarray(x)) - b) / np.linalg.norm(b))


class TestArnoldi:
    def test_builds_orthonormal_basis(self, poisson_small, rng):
        n = poisson_small.n_rows
        m = 8
        basis = np.zeros((n, m + 1))
        hessenberg = np.zeros((m + 1, m))
        v0 = rng.standard_normal(n)
        basis[:, 0] = v0 / np.linalg.norm(v0)
        for j in range(m):
            arnoldi_step(poisson_small.matvec, basis, hessenberg, j)
        gram = basis[:, : m + 1].T @ basis[:, : m + 1]
        assert np.max(np.abs(gram - np.eye(m + 1))) < 1e-10
        # Arnoldi relation A V_m = V_{m+1} H
        av = np.column_stack([poisson_small.matvec(basis[:, j]) for j in range(m)])
        assert np.allclose(av, basis[:, : m + 1] @ hessenberg, atol=1e-10)

    def test_breakdown_detected(self):
        matrix = np.eye(4)
        basis = np.zeros((4, 3))
        hessenberg = np.zeros((3, 2))
        basis[:, 0] = np.array([1.0, 0, 0, 0])
        with pytest.raises(ArnoldiBreakdown):
            # A v = v is entirely in the span of the basis -> breakdown.
            arnoldi_step(lambda v: matrix @ v, basis, hessenberg, 0)

    def test_perturb_hook_applied(self, poisson_tiny, rng):
        n = poisson_tiny.n_rows
        basis = np.zeros((n, 3))
        hessenberg = np.zeros((3, 2))
        v0 = rng.standard_normal(n)
        basis[:, 0] = v0 / np.linalg.norm(v0)
        seen = []
        arnoldi_step(
            poisson_tiny.matvec, basis, hessenberg, 0,
            perturb=lambda w, step: (seen.append(step), w)[1],
        )
        assert seen == [0]

    def test_invalid_gram_schmidt(self, poisson_tiny):
        with pytest.raises(ValueError):
            arnoldi_step(poisson_tiny.matvec, np.zeros((12, 2)), np.zeros((2, 1)), 0,
                         gram_schmidt="qr")


class TestGmres:
    def test_converges_on_spd(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = gmres(poisson_small, b, tol=1e-10, restart=40, maxiter=600)
        assert result.converged
        assert relative_residual(poisson_small, result.x, b) < 1e-9

    def test_converges_on_nonsymmetric(self, convdiff_small, rng):
        b = rng.standard_normal(convdiff_small.n_rows)
        result = gmres(convdiff_small, b, tol=1e-9, restart=30, maxiter=600)
        assert result.converged
        assert relative_residual(convdiff_small, result.x, b) < 1e-8

    def test_residual_history_monotone(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = gmres(poisson_small, b, tol=1e-10, restart=100, maxiter=100)
        history = result.residual_norms
        # Within one cycle GMRES residuals are non-increasing.
        assert all(history[i + 1] <= history[i] * (1 + 1e-12) for i in range(len(history) - 1))

    def test_preconditioning_reduces_iterations(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        plain = gmres(poisson_small, b, tol=1e-8, restart=30, maxiter=600)
        precond = gmres(
            poisson_small, b, tol=1e-8, restart=30, maxiter=600,
            preconditioner=NeumannPolynomialPreconditioner(poisson_small, degree=3),
        )
        assert precond.converged
        assert precond.iterations < plain.iterations
        assert relative_residual(poisson_small, precond.x, b) < 1e-7

    def test_initial_guess_respected(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        exact = gmres(poisson_small, b, tol=1e-12, restart=50, maxiter=800).x
        warm = gmres(poisson_small, b, x0=exact, tol=1e-10)
        assert warm.iterations <= 1

    def test_zero_rhs(self, poisson_tiny):
        result = gmres(poisson_tiny, np.zeros(poisson_tiny.n_rows), tol=1e-10)
        assert result.converged
        assert np.allclose(result.x, 0.0)

    def test_iteration_hook_called(self, poisson_tiny, rng):
        b = rng.standard_normal(poisson_tiny.n_rows)
        calls = []
        gmres(poisson_tiny, b, tol=1e-10, iteration_hook=lambda s: calls.append(s.total_iteration))
        assert calls and calls == sorted(calls)

    def test_maxiter_respected(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = gmres(poisson_small, b, tol=1e-14, restart=5, maxiter=7)
        assert result.iterations <= 7
        assert not result.converged or result.iterations <= 7

    def test_callable_operator(self, poisson_tiny, rng):
        b = rng.standard_normal(poisson_tiny.n_rows)
        result = gmres(lambda v: poisson_tiny.matvec(v), b, tol=1e-10)
        assert result.converged

    def test_classical_gram_schmidt_variant(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = gmres(poisson_small, b, tol=1e-9, gram_schmidt="classical",
                       restart=40, maxiter=400)
        assert result.converged

    def test_parameter_validation(self, poisson_tiny):
        b = np.ones(poisson_tiny.n_rows)
        with pytest.raises(ValueError):
            gmres(poisson_tiny, b, restart=0)
        with pytest.raises(ValueError):
            gmres(poisson_tiny, b, maxiter=0)
        with pytest.raises(ValueError):
            gmres(poisson_tiny, b, gram_schmidt="nope")


class TestCg:
    def test_converges_and_matches_direct(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = cg(poisson_small, b, tol=1e-12, maxiter=1000)
        assert result.converged
        direct = np.linalg.solve(poisson_small.to_dense(), b)
        assert np.allclose(np.asarray(result.x), direct, atol=1e-8)

    def test_alphas_positive_for_spd(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = cg(poisson_small, b, tol=1e-10)
        assert all(alpha > 0 for alpha in result.info["alphas"])

    def test_jacobi_preconditioning(self, rng):
        matrix = random_spd(40, rng=1, condition=1e4)
        b = rng.standard_normal(40)
        plain = cg(matrix, b, tol=1e-10, maxiter=2000)
        precond = cg(matrix, b, tol=1e-10, maxiter=2000,
                     preconditioner=JacobiPreconditioner(matrix))
        assert precond.converged and plain.converged

    def test_breakdown_on_indefinite(self, rng):
        indefinite = np.diag([1.0, -1.0, 2.0, -2.0])
        b = rng.standard_normal(4)
        result = cg(indefinite, b, tol=1e-10, maxiter=50)
        assert result.breakdown or not result.converged

    def test_iteration_hook(self, poisson_tiny, rng):
        b = rng.standard_normal(poisson_tiny.n_rows)
        residuals = []
        cg(poisson_tiny, b, tol=1e-10, iteration_hook=lambda i, r: residuals.append(r))
        assert residuals and residuals[-1] < residuals[0]

    def test_exact_after_n_iterations(self, rng):
        matrix = random_spd(15, rng=2, condition=10.0)
        b = rng.standard_normal(15)
        result = cg(matrix, b, tol=1e-12, maxiter=60)
        assert result.converged and result.iterations <= 40


class TestPipelinedVariants:
    def test_pipelined_cg_matches_cg(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        classic = cg(poisson_small, b, tol=1e-10, maxiter=800)
        pipelined = pipelined_cg(poisson_small, b, tol=1e-10, maxiter=800)
        assert pipelined.converged
        assert abs(pipelined.iterations - classic.iterations) <= 3
        assert relative_residual(poisson_small, pipelined.x, b) < 1e-9

    def test_pipelined_cg_overlap_counter(self, poisson_tiny, rng):
        b = rng.standard_normal(poisson_tiny.n_rows)
        result = pipelined_cg(poisson_tiny, b, tol=1e-10)
        assert result.info["overlapped_reductions"] >= result.iterations

    def test_pipelined_gmres_matches_gmres(self, convdiff_small, rng):
        b = rng.standard_normal(convdiff_small.n_rows)
        classic = gmres(convdiff_small, b, tol=1e-9, restart=40, maxiter=400)
        pipelined = pipelined_gmres(convdiff_small, b, tol=1e-9, restart=40, maxiter=400)
        assert pipelined.converged
        assert abs(pipelined.iterations - classic.iterations) <= 3
        assert relative_residual(convdiff_small, pipelined.x, b) < 1e-8

    def test_pipelined_gmres_fewer_reduction_waves(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = pipelined_gmres(poisson_small, b, tol=1e-8, restart=30, maxiter=300)
        assert result.info["reduction_waves"] < result.info["mgs_equivalent_reductions"]

    def test_pipelined_gmres_without_reorthogonalization(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = pipelined_gmres(poisson_small, b, tol=1e-8, restart=40, maxiter=400,
                                 reorthogonalize=False)
        assert result.converged
        assert relative_residual(poisson_small, result.x, b) < 1e-7

    def test_pipelined_cg_preconditioned(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = pipelined_cg(poisson_small, b, tol=1e-10,
                              preconditioner=JacobiPreconditioner(poisson_small))
        assert result.converged


class TestFgmres:
    def test_unpreconditioned_equals_gmres(self, convdiff_small, rng):
        b = rng.standard_normal(convdiff_small.n_rows)
        result = fgmres(convdiff_small, b, tol=1e-9, restart=40, maxiter=400)
        assert result.converged
        assert relative_residual(convdiff_small, result.x, b) < 1e-8

    def test_inner_gmres_preconditioner(self, convdiff_small, rng):
        b = rng.standard_normal(convdiff_small.n_rows)

        def inner(v):
            return gmres(convdiff_small, v, tol=1e-2, restart=10, maxiter=10).x

        outer = fgmres(convdiff_small, b, tol=1e-9, restart=30, maxiter=60, inner_solve=inner)
        plain = gmres(convdiff_small, b, tol=1e-9, restart=30, maxiter=600)
        assert outer.converged
        assert outer.iterations < plain.iterations

    def test_discards_nonfinite_inner_results(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)

        def broken_inner(v):
            out = np.array(v, copy=True)
            out[0] = np.nan
            return out

        result = fgmres(poisson_small, b, tol=1e-9, restart=40, maxiter=200,
                        inner_solve=broken_inner)
        assert result.converged
        assert relative_residual(poisson_small, result.x, b) < 1e-8

    def test_discards_zero_and_huge_inner_results(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        calls = {"n": 0}

        def weird_inner(v):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                return np.zeros_like(np.asarray(v))
            if calls["n"] % 3 == 1:
                return np.asarray(v) * 1e200
            return np.array(v, copy=True)

        result = fgmres(poisson_small, b, tol=1e-9, restart=40, maxiter=200,
                        inner_solve=weird_inner)
        assert result.converged

    def test_z_norm_bookkeeping(self, poisson_tiny, rng):
        b = rng.standard_normal(poisson_tiny.n_rows)
        result = fgmres(poisson_tiny, b, tol=1e-10, maxiter=50)
        assert len(result.info["z_norms"]) == result.iterations

    def test_validation(self, poisson_tiny):
        with pytest.raises(ValueError):
            fgmres(poisson_tiny, np.ones(poisson_tiny.n_rows), restart=0)


class TestDistributedSolvers:
    def test_distributed_cg_matches_sequential(self, poisson_small, rng):
        b_global = rng.standard_normal(poisson_small.n_rows)
        sequential = cg(poisson_small, b_global, tol=1e-10, maxiter=800)

        def program(comm):
            matrix = DistributedRowMatrix.from_global(comm, poisson_small)
            b = DistributedVector.from_global(comm, b_global)
            result = cg(matrix, b, tol=1e-10, maxiter=800)
            return result.converged, result.iterations, result.x.gather_global()

        for converged, iterations, x in run_spmd(4, program):
            assert converged
            assert iterations == sequential.iterations
            assert np.allclose(x, np.asarray(sequential.x), atol=1e-10)

    def test_distributed_gmres_matches_sequential(self, poisson_small, rng):
        b_global = rng.standard_normal(poisson_small.n_rows)
        sequential = gmres(poisson_small, b_global, tol=1e-8, restart=25, maxiter=300)

        def program(comm):
            matrix = DistributedRowMatrix.from_global(comm, poisson_small)
            b = DistributedVector.from_global(comm, b_global)
            result = gmres(matrix, b, tol=1e-8, restart=25, maxiter=300)
            return result.converged, result.iterations

        for converged, iterations in run_spmd(3, program):
            assert converged
            assert iterations == sequential.iterations

    def test_distributed_pipelined_cg(self, poisson_small, rng):
        b_global = rng.standard_normal(poisson_small.n_rows)

        def program(comm):
            matrix = DistributedRowMatrix.from_global(comm, poisson_small)
            b = DistributedVector.from_global(comm, b_global)
            result = pipelined_cg(matrix, b, tol=1e-9, maxiter=800)
            residual = np.linalg.norm(
                poisson_small.matvec(result.x.gather_global()) - b_global
            ) / np.linalg.norm(b_global)
            return result.converged, residual

        for converged, residual in run_spmd(4, program):
            assert converged and residual < 1e-8
