"""Tests for the SkP (skeptical) and SRP (selective reliability) layers,
including the SDC-detecting GMRES, ABFT operators, TMR and FT-GMRES."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import ArrayInjector, BernoulliPerCallSchedule, DeterministicSchedule
from repro.reliability.bitflip import flip_bit_array
from repro.ftgmres import UnreliableInnerSolver, ft_gmres
from repro.krylov import gmres
from repro.linalg import poisson_2d, convection_diffusion_2d
from repro.skeptical import (
    AbftMatvecOperator,
    AbortPolicy,
    AcceptIfDampedPolicy,
    RollbackPolicy,
    SkepticalAbort,
    SkepticalMonitor,
    abft_matmul,
    conservation_check,
    finite_check,
    hessenberg_bound_check,
    monotonicity_check,
    orthogonality_check,
    residual_consistency_check,
    sdc_detecting_gmres,
    spd_coefficient_check,
)
from repro.reliability import (
    ReliabilityCostModel,
    ReliabilityDomain,
    SelectiveReliabilityEnvironment,
    TmrDisagreement,
    tmr_execute,
)


class TestChecks:
    def test_finite_check(self):
        assert finite_check(np.ones(5)).passed
        bad = finite_check(np.array([1.0, np.nan, np.inf]))
        assert not bad.passed and bad.measure == 2.0

    def test_orthogonality_check_detects_corruption(self, rng):
        basis = np.linalg.qr(rng.standard_normal((30, 6)))[0]
        assert orthogonality_check(basis).passed
        corrupted = basis.copy()
        corrupted[:, 2] *= 1.5
        assert not orthogonality_check(corrupted).passed

    def test_orthogonality_check_empty_basis(self):
        assert orthogonality_check(np.zeros((5, 0))).passed

    def test_hessenberg_bound_check(self):
        h = np.array([[1.0, 2.0], [0.5, 1.5], [0.0, 0.3]])
        assert hessenberg_bound_check(h, operator_norm_estimate=3.0).passed
        h_bad = h.copy()
        h_bad[0, 1] = 1e8
        assert not hessenberg_bound_check(h_bad, operator_norm_estimate=3.0).passed
        h_nan = h.copy()
        h_nan[1, 0] = np.nan
        assert not hessenberg_bound_check(h_nan, operator_norm_estimate=3.0).passed

    def test_residual_consistency(self):
        assert residual_consistency_check(1.0e-3, 1.0001e-3).passed
        assert not residual_consistency_check(1.0e-3, 1.0).passed
        assert not residual_consistency_check(float("nan"), 1.0).passed

    def test_conservation_check(self):
        assert conservation_check(10.0, 10.0 + 1e-12).passed
        assert conservation_check(10.0, 9.0, expected_change=-1.0).passed
        assert not conservation_check(10.0, 12.0).passed
        assert not conservation_check(10.0, float("inf")).passed

    def test_monotonicity_check(self):
        assert monotonicity_check([1.0, 0.5, 0.25]).passed
        assert not monotonicity_check([1.0, 0.5, 5.0]).passed
        assert monotonicity_check([1.0]).passed
        assert not monotonicity_check([1.0, float("nan")]).passed

    def test_spd_coefficient_check(self):
        assert spd_coefficient_check([0.1, 0.5]).passed
        assert not spd_coefficient_check([0.1, -0.2]).passed
        assert spd_coefficient_check([]).passed


class TestPoliciesAndMonitor:
    def test_abort_policy_raises(self):
        failing = finite_check(np.array([np.nan]))
        with pytest.raises(SkepticalAbort):
            AbortPolicy().handle(failing)

    def test_rollback_policy_restores_then_escalates(self):
        restored = []
        policy = RollbackPolicy(lambda ctx: restored.append(ctx), max_rollbacks=2)
        failing = finite_check(np.array([np.nan]))
        assert policy.handle(failing, {"step": 1}) == "rollback"
        assert policy.handle(failing, {"step": 2}) == "rollback"
        with pytest.raises(SkepticalAbort):
            policy.handle(failing, {"step": 3})
        assert len(restored) == 2

    def test_accept_if_damped_policy(self):
        policy = AcceptIfDampedPolicy(damping_threshold=1e-3)
        small = orthogonality_check(np.eye(3) + 1e-5, tol=1e-8)
        assert policy.handle(small) == "continue"
        large = orthogonality_check(np.eye(3) + 1.0, tol=1e-8)
        with pytest.raises(SkepticalAbort):
            policy.handle(large)
        assert policy.accepted == 1

    def test_monitor_periodic_checks(self):
        monitor = SkepticalMonitor()
        monitor.add_check("finite", lambda s: finite_check(s["x"]), period=2)
        x = np.ones(3)
        assert monitor.observe({"x": x}) is None  # observation 1: period not due
        assert monitor.observe({"x": x}) is None  # observation 2: runs, passes
        assert monitor.summary()["checks_run"] == 1

    def test_monitor_detection_and_policy(self):
        monitor = SkepticalMonitor(policy=AcceptIfDampedPolicy(damping_threshold=1e9))
        monitor.add_check("finite", lambda s: finite_check(s["x"]))
        action = monitor.observe({"x": np.array([np.inf])})
        assert action == "continue"
        assert monitor.detected and monitor.n_detections == 1

    def test_monitor_requires_check_result(self):
        monitor = SkepticalMonitor()
        monitor.add_check("bad", lambda s: True)
        with pytest.raises(TypeError):
            monitor.observe({})

    def test_monitor_reset(self):
        monitor = SkepticalMonitor()
        monitor.add_check("finite", lambda s: finite_check(s["x"]))
        monitor.observe({"x": np.ones(2)})
        monitor.reset()
        assert monitor.summary()["observations"] == 0

    def test_monitor_period_validation(self):
        monitor = SkepticalMonitor()
        with pytest.raises(ValueError):
            monitor.add_check("x", lambda s: finite_check(s["x"]), period=0)


class TestAbft:
    def test_abft_operator_clean(self, poisson_small, rng):
        operator = AbftMatvecOperator(poisson_small)
        x = rng.standard_normal(poisson_small.n_rows)
        assert np.allclose(operator(x), poisson_small.matvec(x))
        assert operator.detections == 0

    def test_abft_operator_detects_and_recovers(self, poisson_small, rng):
        injector = ArrayInjector(DeterministicSchedule([1.0]), rng=0, bit_range=(55, 62))
        operator = AbftMatvecOperator(poisson_small, injector=injector)
        x = rng.standard_normal(poisson_small.n_rows)
        result = operator(x)
        assert operator.detections == 1
        assert operator.recoveries == 1
        assert np.allclose(result, poisson_small.matvec(x))

    def test_abft_operator_in_gmres(self, poisson_small, rng):
        injector = ArrayInjector(
            BernoulliPerCallSchedule(0.2, rng=1), rng=2, bit_range=(55, 62)
        )
        operator = AbftMatvecOperator(poisson_small, injector=injector)
        b = rng.standard_normal(poisson_small.n_rows)
        result = gmres(operator, b, tol=1e-8, restart=30, maxiter=400)
        assert result.converged
        assert operator.detections >= 1
        assert operator.stats()["applications"] > 0

    def test_abft_matmul_wrapper(self, rng):
        a = rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6))
        product, report = abft_matmul(a, b, corrupt=lambda c: flip_bit_array(c, 7, 60))
        assert report.corrected
        assert np.allclose(product, a @ b)


class TestSdcDetectingGmres:
    def test_fault_free_converges_without_detection(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = sdc_detecting_gmres(poisson_small, b, tol=1e-8, restart=30, maxiter=400)
        assert result.converged
        assert result.detected_faults == 0

    def test_exponent_flip_detected_and_recovered(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        injected = {"done": False}

        def fault_hook(state):
            if not injected["done"] and state.total_iteration == 5:
                target = np.asarray(state.basis[state.inner + 1])
                flip_bit_array(target, 3, 62, inplace=True)
                injected["done"] = True

        result = sdc_detecting_gmres(
            poisson_small, b, tol=1e-8, restart=30, maxiter=600, fault_hook=fault_hook
        )
        assert injected["done"]
        assert result.detected_faults >= 1
        assert result.converged
        residual = np.linalg.norm(poisson_small.matvec(np.asarray(result.x)) - b)
        assert residual / np.linalg.norm(b) < 1e-7

    def test_abort_policy_raises(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)

        def fault_hook(state):
            if state.total_iteration == 3:
                np.asarray(state.basis[state.inner + 1])[0] = np.inf

        with pytest.raises(SkepticalAbort):
            sdc_detecting_gmres(poisson_small, b, tol=1e-8, maxiter=200,
                                fault_hook=fault_hook, policy="abort")

    def test_invalid_policy(self, poisson_tiny):
        with pytest.raises(ValueError):
            sdc_detecting_gmres(poisson_tiny, np.ones(poisson_tiny.n_rows), policy="ignore")

    def test_check_accounting(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.n_rows)
        result = sdc_detecting_gmres(poisson_small, b, tol=1e-8, restart=20, maxiter=200)
        assert result.info["checks_run"] > 0
        assert result.info["check_flops"] > 0


class TestSrp:
    def test_reliable_domain_never_corrupts(self):
        domain = ReliabilityDomain("safe", level="reliable")
        data = np.ones(64)
        for _ in range(10):
            domain.touch(data)
        assert np.all(data == 1.0)
        assert domain.faults_injected() == 0

    def test_reliable_domain_rejects_injector(self):
        with pytest.raises(ValueError):
            ReliabilityDomain("safe", level="reliable",
                              injector=ArrayInjector(DeterministicSchedule([0.0])))

    def test_unreliable_domain_corrupts_per_schedule(self):
        injector = ArrayInjector(DeterministicSchedule([1.0, 2.0]), rng=0)
        domain = ReliabilityDomain("bulk", injector=injector)
        data = np.ones(128)
        domain.touch(data, now=1.0)
        domain.touch(data, now=2.0)
        assert domain.faults_injected() == 2

    def test_domain_allocation_tracking(self):
        domain = ReliabilityDomain("bulk")
        domain.allocate((16,), name="vector")
        domain.adopt(np.zeros(8), name="extra")
        assert domain.bytes_allocated == 16 * 8 + 8 * 8
        assert len(domain.allocations) == 2

    def test_domain_run_accounts_flops(self):
        domain = ReliabilityDomain("bulk")
        result = domain.run(lambda: np.ones(4), flops=100.0)
        assert np.allclose(result, 1.0)
        assert domain.flops == 100.0

    def test_environment_summary_and_cost(self):
        env = SelectiveReliabilityEnvironment(fault_probability=0.0, seed=0)
        with env.reliable() as reliable:
            reliable.flops += 100.0
        with env.unreliable() as unreliable:
            unreliable.flops += 900.0
        summary = env.summary()
        assert summary["reliable_fraction_flops"] == pytest.approx(0.1)
        cost = env.cost_summary()
        assert cost["savings_factor"] > 1.0

    def test_environment_injects(self):
        env = SelectiveReliabilityEnvironment(fault_probability=1.0, seed=3)
        with env.unreliable() as domain:
            domain.touch(np.ones(32), now=0.0)
        assert env.faults_injected() == 1

    def test_cost_model(self):
        model = ReliabilityCostModel(reliable_compute_factor=3.0,
                                     reliable_storage_factor=2.0)
        assert model.execution_cost(10.0, 90.0) == pytest.approx(120.0)
        assert model.storage_cost(10.0, 80.0) == pytest.approx(100.0)
        assert model.speedup_vs_all_reliable(10.0, 90.0) == pytest.approx(300.0 / 120.0)
        with pytest.raises(ValueError):
            ReliabilityCostModel(reliable_compute_factor=0.0)


class TestTmr:
    def test_majority_vote_masks_one_bad_replica(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            return 99.0 if calls["n"] == 2 else 1.0

        counter = {}
        assert tmr_execute(flaky, counter=counter) == 1.0
        assert counter["tmr_corrections"] == 1
        assert counter["tmr_executions"] == 3

    def test_all_disagree_raises(self):
        values = iter([1.0, 2.0, 3.0])
        with pytest.raises(TmrDisagreement):
            tmr_execute(lambda: next(values))

    def test_array_results(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            out = np.ones(4)
            if calls["n"] == 3:
                out[2] = np.nan
            return out

        assert np.allclose(tmr_execute(flaky), 1.0)

    def test_non_numeric_results(self):
        assert tmr_execute(lambda: "same") == "same"


class TestFtGmres:
    def test_fault_free_matches_plain(self, convdiff_small, rng):
        b = rng.standard_normal(convdiff_small.n_rows)
        result = ft_gmres(convdiff_small, b, tol=1e-8, fault_probability=0.0, seed=1)
        assert result.converged
        residual = np.linalg.norm(convdiff_small.matvec(np.asarray(result.x)) - b)
        assert residual / np.linalg.norm(b) < 1e-7

    def test_converges_under_injection(self, convdiff_small, rng):
        b = rng.standard_normal(convdiff_small.n_rows)
        result = ft_gmres(convdiff_small, b, tol=1e-8, fault_probability=0.1, seed=5,
                          outer_maxiter=40, inner_maxiter=12)
        assert result.converged
        residual = np.linalg.norm(convdiff_small.matvec(np.asarray(result.x)) - b)
        assert residual / np.linalg.norm(b) < 1e-7

    def test_most_work_is_unreliable(self, convdiff_small, rng):
        b = rng.standard_normal(convdiff_small.n_rows)
        result = ft_gmres(convdiff_small, b, tol=1e-8, fault_probability=0.05, seed=2)
        assert result.info["unreliable_fraction_flops"] > 0.5
        assert result.info["srp_cost"]["savings_factor"] > 1.0

    def test_inner_solver_stats(self, poisson_small, rng):
        env = SelectiveReliabilityEnvironment(fault_probability=0.0, seed=0)
        inner = UnreliableInnerSolver(poisson_small, env, inner_maxiter=5)
        v = rng.standard_normal(poisson_small.n_rows)
        z = inner(v)
        assert z.shape == v.shape
        stats = inner.stats()
        assert stats["inner_solves"] == 1
        assert stats["inner_iterations"] > 0
        assert stats["inner_flops"] > 0

    def test_fault_probability_validation(self, poisson_tiny):
        with pytest.raises(ValueError):
            ft_gmres(poisson_tiny, np.ones(poisson_tiny.n_rows), fault_probability=1.5)
