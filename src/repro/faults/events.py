"""Deprecated shim: moved to :mod:`repro.reliability.events`."""

import warnings as _warnings

_warnings.warn(
    "repro.faults.events is deprecated; import from repro.reliability.events instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.events import *  # noqa: E402,F401,F403
