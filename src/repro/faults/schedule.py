"""Deprecated shim: moved to :mod:`repro.reliability.schedule`."""

import warnings as _warnings

_warnings.warn(
    "repro.faults.schedule is deprecated; import from repro.reliability.schedule instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.schedule import *  # noqa: E402,F401,F403
