"""Deprecated shim: moved to :mod:`repro.reliability.process`."""

import warnings as _warnings

_warnings.warn(
    "repro.faults.process is deprecated; import from repro.reliability.process instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.process import *  # noqa: E402,F401,F403
