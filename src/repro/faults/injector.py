"""Deprecated shim: moved to :mod:`repro.reliability.injector`."""

import warnings as _warnings

_warnings.warn(
    "repro.faults.injector is deprecated; import from repro.reliability.injector instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.injector import *  # noqa: E402,F401,F403
