"""Deprecated shim: moved to :mod:`repro.reliability.bitflip`."""

import warnings as _warnings

_warnings.warn(
    "repro.faults.bitflip is deprecated; import from repro.reliability.bitflip instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.bitflip import *  # noqa: E402,F401,F403
