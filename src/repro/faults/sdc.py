"""Deprecated shim: moved to :mod:`repro.reliability.sdc`."""

import warnings as _warnings

_warnings.warn(
    "repro.faults.sdc is deprecated; import from repro.reliability.sdc instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.sdc import *  # noqa: E402,F401,F403
