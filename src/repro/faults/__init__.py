"""Deprecated shim: :mod:`repro.faults` moved to :mod:`repro.reliability`.

The fault machinery (bit flips, schedules, injectors, process-failure
models, SDC campaign helpers) now lives in the unified reliability
layer, alongside the declarative :class:`~repro.reliability.FaultSpec`
API and the named fault-model registry.  This package re-exports the
old names unchanged; update imports to ``repro.reliability``.
"""

import warnings as _warnings

_warnings.warn(
    "repro.faults is deprecated; import from repro.reliability instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.bitflip import (  # noqa: E402,F401
    bits_of,
    flip_bit_array,
    flip_bit_float64,
    flip_random_bit,
    float_from_bits,
    relative_perturbation,
)
from repro.reliability.events import (  # noqa: E402,F401
    CampaignResult,
    FaultEvent,
    FaultRecord,
)
from repro.reliability.schedule import (  # noqa: E402,F401
    BernoulliPerCallSchedule,
    DeterministicSchedule,
    FaultSchedule,
    NeverSchedule,
    PoissonSchedule,
)
from repro.reliability.injector import (  # noqa: E402,F401
    ArrayInjector,
    InjectionSession,
    TargetedInjector,
)
from repro.reliability.process import (  # noqa: E402,F401
    ExponentialFailureModel,
    FailurePlan,
    ProcessFailureModel,
    WeibullFailureModel,
)
from repro.reliability.sdc import (  # noqa: E402,F401
    OUTCOME_KINDS,
    SdcCampaign,
    classify_outcome,
)

__all__ = [
    "flip_bit_float64",
    "flip_bit_array",
    "flip_random_bit",
    "bits_of",
    "float_from_bits",
    "relative_perturbation",
    "FaultEvent",
    "FaultRecord",
    "CampaignResult",
    "FaultSchedule",
    "DeterministicSchedule",
    "PoissonSchedule",
    "BernoulliPerCallSchedule",
    "NeverSchedule",
    "ArrayInjector",
    "TargetedInjector",
    "InjectionSession",
    "ProcessFailureModel",
    "ExponentialFailureModel",
    "WeibullFailureModel",
    "FailurePlan",
    "SdcCampaign",
    "classify_outcome",
    "OUTCOME_KINDS",
]
