"""Fault models and fault-injection machinery.

The paper's premise is that future systems will expose applications to
two classes of faults:

* **soft faults / silent data corruption (SDC)** -- bit flips in data
  or logic that do not crash the program but silently change values;
* **hard faults** -- loss of a process (node crash).

This subpackage provides both, in a form the resilient-algorithm layers
can reason about:

* :mod:`repro.faults.bitflip` -- IEEE-754 bit manipulation on scalars
  and NumPy arrays.
* :mod:`repro.faults.events` -- fault-event records and campaign
  results.
* :mod:`repro.faults.schedule` -- deterministic and Poisson-process
  fault schedules in virtual time or iteration counts.
* :mod:`repro.faults.injector` -- targeted injectors that corrupt
  arrays, either unconditionally or according to a schedule and a
  *reliability domain* (see :mod:`repro.srp`).
* :mod:`repro.faults.process` -- process-failure (MTBF) models for
  hard faults.
* :mod:`repro.faults.sdc` -- higher-level silent-data-corruption
  campaign helpers used by the experiments.
"""

from repro.faults.bitflip import (
    flip_bit_float64,
    flip_bit_array,
    flip_random_bit,
    bits_of,
    float_from_bits,
    relative_perturbation,
)
from repro.faults.events import FaultEvent, FaultRecord, CampaignResult
from repro.faults.schedule import (
    FaultSchedule,
    DeterministicSchedule,
    PoissonSchedule,
    BernoulliPerCallSchedule,
    NeverSchedule,
)
from repro.faults.injector import ArrayInjector, TargetedInjector, InjectionSession
from repro.faults.process import ProcessFailureModel, ExponentialFailureModel, WeibullFailureModel, FailurePlan
from repro.faults.sdc import SdcCampaign, classify_outcome, OUTCOME_KINDS

__all__ = [
    "flip_bit_float64",
    "flip_bit_array",
    "flip_random_bit",
    "bits_of",
    "float_from_bits",
    "relative_perturbation",
    "FaultEvent",
    "FaultRecord",
    "CampaignResult",
    "FaultSchedule",
    "DeterministicSchedule",
    "PoissonSchedule",
    "BernoulliPerCallSchedule",
    "NeverSchedule",
    "ArrayInjector",
    "TargetedInjector",
    "InjectionSession",
    "ProcessFailureModel",
    "ExponentialFailureModel",
    "WeibullFailureModel",
    "FailurePlan",
    "SdcCampaign",
    "classify_outcome",
    "OUTCOME_KINDS",
]
