"""Checksum (ABFT) operators exposed as skeptical building blocks.

The classic algorithm-based fault tolerance of Huang & Abraham encodes
checksums into the operands so that the *result* of a linear-algebra
operation carries its own validity certificate.  The paper points out
(§III-A) that "the meta data used to recover state can also be used to
detect anomalous behavior" -- i.e. ABFT is skeptical programming with
correction thrown in.

Two forms are provided:

* :class:`AbftMatvecOperator` -- wraps any matrix so every matvec is
  checksum-verified (and optionally subject to fault injection), with
  counters suitable for experiment E2; it can be handed directly to the
  Krylov solvers as their operator.
* :func:`abft_matmul` -- checked (and optionally corrected) dense
  matrix multiplication, re-exported from :mod:`repro.linalg.checksum`
  with injection plumbing.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.reliability.injector import ArrayInjector
from repro.linalg.checksum import ChecksummedMatrix, checked_matmul, verify_checksum
from repro.linalg.csr import CsrMatrix
from repro.utils.logging import EventLog

__all__ = ["AbftMatvecOperator", "abft_matmul"]


class AbftMatvecOperator:
    """A matrix whose every application is checksum-verified.

    Parameters
    ----------
    matrix:
        The operand (CSR or dense).
    injector:
        Optional :class:`~repro.reliability.injector.ArrayInjector` applied
        to every raw product before verification -- this is how the E2
        campaigns corrupt the computation.
    rtol, atol:
        Verification tolerances (see
        :func:`repro.linalg.checksum.verify_checksum`).
    recompute_on_failure:
        When ``True`` a failed check triggers recomputation of the
        product (detect-and-recover); when the recomputation also fails
        the result is returned as-is and counted as an unrecovered
        detection.
    log:
        Optional event log shared with the rest of the run.
    """

    def __init__(
        self,
        matrix: Union[CsrMatrix, np.ndarray],
        *,
        injector: Optional[ArrayInjector] = None,
        rtol: float = 1e-8,
        atol: float = 1e-12,
        recompute_on_failure: bool = True,
        log: Optional[EventLog] = None,
    ):
        self._wrapped = ChecksummedMatrix(matrix)
        self.injector = injector
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.recompute_on_failure = bool(recompute_on_failure)
        self.log = log if log is not None else EventLog()
        self.applications = 0
        self.detections = 0
        self.recoveries = 0

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the wrapped matrix."""
        return self._wrapped.shape

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator with checksum verification."""
        x = np.asarray(x, dtype=np.float64)
        self.applications += 1
        expected = self._wrapped.expected_result_checksum(x)
        result = self._wrapped.matvec(x)
        if self.injector is not None:
            result = self.injector.maybe_inject(result, now=float(self.applications))
        ok = verify_checksum(result, expected, rtol=self.rtol, atol=self.atol)
        if ok:
            return result
        self.detections += 1
        self.log.record("abft_detection", details_target="matvec",
                        application=self.applications)
        if self.recompute_on_failure:
            clean = self._wrapped.matvec(x)
            if verify_checksum(clean, expected, rtol=self.rtol, atol=self.atol):
                self.recoveries += 1
                return clean
        return result

    def stats(self) -> dict:
        """Counters for experiment tables."""
        return {
            "applications": self.applications,
            "detections": self.detections,
            "recoveries": self.recoveries,
        }


def abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    corrupt=None,
    correct: bool = True,
    rtol: float = 1e-8,
    atol: float = 1e-10,
):
    """Checked (and optionally corrected) matrix-matrix product.

    Thin convenience wrapper over
    :func:`repro.linalg.checksum.checked_matmul` so experiment code can
    import everything SkP-related from :mod:`repro.skeptical`.
    Returns ``(product, report)``.
    """
    return checked_matmul(a, b, corrupt=corrupt, correct=correct, rtol=rtol, atol=atol)
