"""Skeptical Programming (SkP) -- paper §II-A and §III-A.

"Almost all algorithm developers assume that their software will
execute reliably or fail obviously by halting."  The SkP model replaces
that assumption with cheap, occasional validation of mathematical
properties the algorithm already implies: orthogonality of a Krylov
basis, bounds on Hessenberg entries, conservation of mass/energy in a
PDE step, monotone residual histories, checksum identities.

This subpackage provides:

* :mod:`repro.skeptical.checks` -- a library of invariant checks, each
  returning a :class:`CheckResult` with a severity and an estimated
  cost, so experiments can report overhead.
* :mod:`repro.skeptical.policies` -- what to do when a check fires
  (abort, roll back to a stored state, or continue because the error
  will be damped), as the paper enumerates.
* :mod:`repro.skeptical.monitor` -- :class:`SkepticalMonitor`, a
  wrapper that attaches checks/policies to an iterative computation
  via its iteration hook.
* :mod:`repro.skeptical.abft` -- checksum-based operations (wrapping
  :mod:`repro.linalg.checksum`) exposed as skeptical operators.
* :mod:`repro.skeptical.gmres_sdc` -- the SDC-detecting GMRES in the
  spirit of Elliott & Hoemmen's bit-flip-resilient GMRES.
"""

from repro.skeptical.checks import (
    CheckResult,
    orthogonality_check,
    hessenberg_bound_check,
    residual_consistency_check,
    finite_check,
    conservation_check,
    monotonicity_check,
    spd_coefficient_check,
)
from repro.skeptical.policies import ResponsePolicy, AbortPolicy, RollbackPolicy, AcceptIfDampedPolicy, SkepticalAbort
from repro.skeptical.monitor import SkepticalMonitor
from repro.skeptical.abft import AbftMatvecOperator, abft_matmul
from repro.skeptical.gmres_sdc import sdc_detecting_gmres

__all__ = [
    "CheckResult",
    "orthogonality_check",
    "hessenberg_bound_check",
    "residual_consistency_check",
    "finite_check",
    "conservation_check",
    "monotonicity_check",
    "spd_coefficient_check",
    "ResponsePolicy",
    "AbortPolicy",
    "RollbackPolicy",
    "AcceptIfDampedPolicy",
    "SkepticalAbort",
    "SkepticalMonitor",
    "AbftMatvecOperator",
    "abft_matmul",
    "sdc_detecting_gmres",
]
