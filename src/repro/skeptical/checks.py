"""Invariant checks for skeptical programming.

Each check is a plain function returning a :class:`CheckResult`.  The
estimated ``cost_flops`` lets the experiments report the overhead of
skepticism relative to the computation being protected, backing the
paper's claim that "the cost can be very low".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "CheckResult",
    "finite_check",
    "orthogonality_check",
    "hessenberg_bound_check",
    "residual_consistency_check",
    "conservation_check",
    "monotonicity_check",
    "spd_coefficient_check",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check.

    Attributes
    ----------
    name:
        The check that produced the result.
    passed:
        ``True`` when the invariant holds to within its tolerance.
    measure:
        The scalar the check computed (e.g. the orthogonality defect);
        useful for tables and for calibrating thresholds.
    threshold:
        The tolerance against which ``measure`` was compared.
    cost_flops:
        Estimated floating-point cost of evaluating the check.
    details:
        Optional extra fields (offending index, etc.).
    """

    name: str
    passed: bool
    measure: float
    threshold: float
    cost_flops: float = 0.0
    details: Dict = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def finite_check(array: np.ndarray, name: str = "finite") -> CheckResult:
    """All entries are finite (no NaN/inf).

    The cheapest skeptical check there is, and the one that catches
    exponent-bit flips almost immediately.
    """
    arr = np.asarray(array)
    n_bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
    return CheckResult(
        name=name,
        passed=n_bad == 0,
        measure=float(n_bad),
        threshold=0.0,
        cost_flops=float(arr.size),
    )


def orthogonality_check(
    basis: np.ndarray,
    n_vectors: Optional[int] = None,
    *,
    tol: float = 1e-8,
    name: str = "orthogonality",
) -> CheckResult:
    """Orthonormality defect ``max |V^T V - I|`` of a Krylov basis.

    The full check costs ``O(n k^2)`` flops; GMRES implicitly assumes
    the property, so checking it occasionally detects corruption of the
    basis that would otherwise silently degrade the computed solution.
    """
    check_positive(tol, "tol")
    basis = np.asarray(basis, dtype=np.float64)
    if basis.ndim != 2:
        raise ValueError("basis must be a 2-D array with basis vectors as columns")
    k = basis.shape[1] if n_vectors is None else int(n_vectors)
    k = min(k, basis.shape[1])
    if k == 0:
        return CheckResult(name=name, passed=True, measure=0.0, threshold=tol)
    v = basis[:, :k]
    gram = v.T @ v
    defect = float(np.max(np.abs(gram - np.eye(k)))) if np.all(np.isfinite(gram)) else float("inf")
    return CheckResult(
        name=name,
        passed=bool(np.isfinite(defect) and defect <= tol),
        measure=defect,
        threshold=tol,
        cost_flops=2.0 * basis.shape[0] * k * k,
    )


def hessenberg_bound_check(
    hessenberg: np.ndarray,
    operator_norm_estimate: float,
    n_columns: Optional[int] = None,
    *,
    safety: float = 2.0,
    name: str = "hessenberg_bound",
) -> CheckResult:
    """Hessenberg entries must be bounded by the operator norm.

    In exact arithmetic every entry of the Arnoldi Hessenberg matrix
    satisfies ``|h_ij| <= ||A||_2``; Elliott & Hoemmen use (a refinement
    of) this bound to flag bit flips in the Arnoldi process at O(1)
    cost per iteration.  ``safety`` loosens the bound to allow for the
    looseness of the norm estimate.
    """
    check_positive(operator_norm_estimate, "operator_norm_estimate")
    check_positive(safety, "safety")
    h = np.asarray(hessenberg, dtype=np.float64)
    k = h.shape[1] if n_columns is None else int(n_columns)
    k = min(k, h.shape[1])
    if k == 0:
        return CheckResult(name=name, passed=True, measure=0.0,
                           threshold=safety * operator_norm_estimate)
    window = h[: k + 1, :k]
    finite = np.isfinite(window)
    max_entry = float(np.max(np.abs(window[finite]))) if finite.any() else 0.0
    if not finite.all():
        max_entry = float("inf")
    threshold = safety * operator_norm_estimate
    return CheckResult(
        name=name,
        passed=bool(np.isfinite(max_entry) and max_entry <= threshold),
        measure=max_entry,
        threshold=threshold,
        cost_flops=float(window.size),
    )


def residual_consistency_check(
    recurrence_residual: float,
    true_residual: float,
    *,
    rtol: float = 1e-4,
    atol: float = 1e-12,
    name: str = "residual_consistency",
) -> CheckResult:
    """Recurrence-based and explicitly computed residual norms must agree.

    GMRES and CG update a cheap residual estimate by recurrence; silent
    corruption makes the estimate drift away from the truth.  The check
    costs one extra matvec when invoked, so it is typically run every
    ``k`` iterations rather than every iteration.
    """
    check_non_negative(rtol, "rtol")
    if not np.isfinite(recurrence_residual) or not np.isfinite(true_residual):
        return CheckResult(name=name, passed=False, measure=float("inf"),
                           threshold=rtol)
    scale = max(abs(true_residual), abs(recurrence_residual), atol)
    gap = abs(recurrence_residual - true_residual) / scale
    return CheckResult(name=name, passed=bool(gap <= rtol), measure=float(gap),
                       threshold=rtol)


def conservation_check(
    quantity_before: float,
    quantity_after: float,
    *,
    expected_change: float = 0.0,
    rtol: float = 1e-8,
    atol: float = 1e-12,
    name: str = "conservation",
) -> CheckResult:
    """A conserved quantity (mass, energy) must change only as expected.

    This is the PDE-side skeptical check: explicit finite-difference
    heat/advection steps conserve the total of the field up to boundary
    fluxes that the caller supplies as ``expected_change``.
    """
    check_non_negative(rtol, "rtol")
    if not np.isfinite(quantity_after):
        return CheckResult(name=name, passed=False, measure=float("inf"), threshold=rtol)
    expected = quantity_before + expected_change
    scale = max(abs(expected), abs(quantity_before), atol)
    gap = abs(quantity_after - expected) / scale
    return CheckResult(name=name, passed=bool(gap <= rtol), measure=float(gap),
                       threshold=rtol)


def monotonicity_check(
    history: Sequence[float],
    *,
    allowed_increase: float = 1.5,
    window: int = 3,
    name: str = "monotonicity",
) -> CheckResult:
    """Residual histories of minimal-residual methods must not jump up.

    GMRES residual norms are non-increasing in exact arithmetic; a jump
    by more than ``allowed_increase`` over the recent ``window`` values
    is a strong SDC indicator.  (CG residuals oscillate, so use a larger
    ``allowed_increase`` there.)
    """
    check_positive(allowed_increase, "allowed_increase")
    values = [float(v) for v in history]
    if len(values) < 2:
        return CheckResult(name=name, passed=True, measure=0.0, threshold=allowed_increase)
    recent = values[-(window + 1):]
    if not all(np.isfinite(v) for v in recent):
        return CheckResult(name=name, passed=False, measure=float("inf"),
                           threshold=allowed_increase)
    reference = min(recent[:-1])
    if reference <= 0.0:
        return CheckResult(name=name, passed=True, measure=0.0, threshold=allowed_increase)
    ratio = recent[-1] / reference
    return CheckResult(name=name, passed=bool(ratio <= allowed_increase),
                       measure=float(ratio), threshold=allowed_increase)


def spd_coefficient_check(
    alphas: Sequence[float],
    *,
    name: str = "spd_coefficients",
) -> CheckResult:
    """CG step lengths must be positive for an SPD operator.

    A negative or non-finite ``alpha`` means either the operator is not
    SPD or the recurrence has been corrupted; in both cases the solve
    cannot be trusted.
    """
    values = [float(a) for a in alphas]
    if not values:
        return CheckResult(name=name, passed=True, measure=0.0, threshold=0.0)
    worst = min(values)
    finite = all(np.isfinite(v) for v in values)
    return CheckResult(name=name, passed=bool(finite and worst > 0.0),
                       measure=float(worst if finite else float("-inf")), threshold=0.0)
