"""SDC-detecting GMRES (skeptical GMRES).

The concrete algorithm the paper holds up as an SkP exemplar (§III-A)
is a GMRES "that detects and, optionally, corrects single bit flips
very inexpensively as part of the Arnoldi process" (Elliott & Hoemmen).
This module provides that solver: restarted GMRES whose resilience
policy runs a :class:`~repro.skeptical.monitor.SkepticalMonitor` with

* a finiteness check of the newest basis vector and Hessenberg column
  (O(n) -- catches exponent-bit flips),
* the Hessenberg-bound check ``|h_ij| <= safety * ||A||`` (O(j) --
  catches large mantissa/exponent flips in the projection
  coefficients),
* a periodic orthogonality check of the basis (O(n j^2) -- catches
  subtler corruption), and
* a periodic residual-consistency check (recurrence vs true residual,
  one extra matvec).

The monitor wiring is the engine's
:class:`~repro.krylov.engine.resilience.SkepticalGmresPolicy`: on
detection, the configured response applies -- the default ``restart``
response abandons the corrupted Krylov cycle
(:class:`~repro.krylov.engine.resilience.CycleAbandoned`) and this
driver restarts GMRES from the current iterate, which is cheap and
sufficient because GMRES restarts are already part of the algorithm
(the "rolling back to a previous valid state" response of §II-A).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.engine.core import canonical_kernel_counters
from repro.krylov.engine.resilience import (
    CallbackPolicy,
    CompositePolicy,
    CycleAbandoned,
    SkepticalGmresPolicy,
)
from repro.krylov.gmres import GmresState, gmres
from repro.krylov.result import SolveResult
from repro.skeptical.checks import (
    finite_check,
    hessenberg_bound_check,
    monotonicity_check,
    orthogonality_check,
    residual_consistency_check,
)
from repro.skeptical.monitor import SkepticalMonitor
from repro.utils.validation import check_integer, check_positive

__all__ = ["sdc_detecting_gmres", "default_sdc_monitor", "estimate_operator_norm"]


def estimate_operator_norm(operator, probe: np.ndarray, n_samples: int = 4) -> float:
    """Cheap randomized lower-bound estimate of ||A||_2.

    A few matvecs on random unit vectors give a (slight under-)estimate
    that the Hessenberg-bound check then loosens with its safety
    factor.
    """
    rng = np.random.default_rng(12345)
    estimate = 0.0
    size = probe.size
    for _ in range(max(1, n_samples)):
        v = rng.standard_normal(size)
        v /= np.linalg.norm(v)
        av = ops.matvec(operator, v)
        estimate = max(estimate, float(np.linalg.norm(av)))
    return max(estimate, np.finfo(float).tiny)


def default_sdc_monitor(
    norm_estimate: float,
    *,
    check_period: int = 1,
    orthogonality_period: int = 5,
    residual_check_period: int = 10,
    hessenberg_safety: float = 4.0,
    orthogonality_tol: float = 1e-6,
) -> SkepticalMonitor:
    """The standard SkP check set for GMRES, as a configured monitor."""
    monitor = SkepticalMonitor()
    monitor.add_check(
        "finite_basis",
        lambda state: finite_check(
            np.asarray(state["basis"][state["inner"] + 1]), name="finite_basis"
        ),
        period=check_period,
    )
    monitor.add_check(
        "finite_hessenberg",
        lambda state: finite_check(
            state["hessenberg"][: state["inner"] + 2, state["inner"]],
            name="finite_hessenberg",
        ),
        period=check_period,
    )
    monitor.add_check(
        "hessenberg_bound",
        lambda state: hessenberg_bound_check(
            state["hessenberg"],
            norm_estimate,
            n_columns=state["inner"] + 1,
            safety=hessenberg_safety,
        ),
        period=check_period,
    )
    monitor.add_check(
        "residual_monotone",
        lambda state: monotonicity_check(state["residual_history"]),
        period=check_period,
    )
    monitor.add_check(
        "orthogonality",
        # The basis block is already an ndarray (vectors as columns);
        # check the stored vectors in place, no column_stack copies.
        lambda state: orthogonality_check(
            state["basis"].matrix(),
            tol=orthogonality_tol,
        ),
        period=orthogonality_period,
    )
    monitor.add_check(
        "residual_consistency",
        lambda state: residual_consistency_check(
            state["residual_norm"], state["true_residual"]()
        ),
        period=residual_check_period,
    )
    return monitor


def sdc_detecting_gmres(
    operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 1000,
    preconditioner=None,
    check_period: int = 1,
    orthogonality_period: int = 5,
    residual_check_period: int = 10,
    hessenberg_safety: float = 4.0,
    orthogonality_tol: float = 1e-6,
    policy: str = "restart",
    monitor: Optional[SkepticalMonitor] = None,
    fault_hook: Optional[Callable[[GmresState], None]] = None,
    max_restarts_on_detection: int = 5,
    operator_norm: Optional[float] = None,
) -> SolveResult:
    """Restarted GMRES with skeptical SDC detection in the Arnoldi process.

    Parameters
    ----------
    operator, b, x0, tol, atol, restart, maxiter, preconditioner:
        As for :func:`repro.krylov.gmres.gmres` (sequential NumPy
        vectors only -- the checks need the basis as a dense array).
    check_period:
        Run the cheap (finite / Hessenberg-bound / monotonicity) checks
        every ``check_period`` iterations.
    orthogonality_period, residual_check_period:
        Periods of the two more expensive checks.
    hessenberg_safety:
        Safety factor of the Hessenberg bound.
    orthogonality_tol:
        Tolerance of the basis-orthogonality check.
    policy:
        ``"restart"`` (default) -- on detection, abandon the current
        Krylov cycle and restart from the current iterate;
        ``"abort"`` -- raise
        :class:`~repro.skeptical.policies.SkepticalAbort`.
    monitor:
        Optionally supply a pre-configured monitor (its checks are used
        instead of the defaults).
    fault_hook:
        Optional callable run *before* the checks each iteration with
        the :class:`~repro.krylov.gmres.GmresState`; fault-injection
        campaigns use it to corrupt the solver state exactly where a
        bit flip would land.
    max_restarts_on_detection:
        Upper bound on detection-triggered restarts before giving up.
    operator_norm:
        Trusted ``||A||`` estimate for the Hessenberg-bound check.  By
        default it is probed from ``operator`` with a few matvecs;
        supply it explicitly when the operator itself is unreliable
        (fault-injection campaigns), so the *setup* of the checks runs
        in reliable mode as the SkP model assumes.

    Returns
    -------
    SolveResult
        ``detected_faults`` counts failed checks;
        ``info["detection_restarts"]`` counts detection-triggered
        restarts, ``info["check_flops"]`` the total checking cost and
        ``info["checks_run"]`` how many check evaluations were made.
    """
    check_integer(check_period, "check_period")
    check_positive(tol, "tol")
    if policy not in ("restart", "abort"):
        raise ValueError("policy must be 'restart' or 'abort'")

    b = np.asarray(b, dtype=np.float64)
    norm_estimate = (
        float(operator_norm) if operator_norm is not None
        else estimate_operator_norm(operator, b)
    )

    if monitor is None:
        monitor = default_sdc_monitor(
            norm_estimate,
            check_period=check_period,
            orthogonality_period=orthogonality_period,
            residual_check_period=residual_check_period,
            hessenberg_safety=hessenberg_safety,
            orthogonality_tol=orthogonality_tol,
        )

    skeptical = SkepticalGmresPolicy(monitor, operator=operator, b=b, response=policy)
    engine_policy = (
        skeptical
        if fault_hook is None
        else CompositePolicy([CallbackPolicy(fault_hook, "state"), skeptical])
    )

    x = np.array(x0, dtype=np.float64, copy=True) if x0 is not None else np.zeros_like(b)
    total_iterations = 0
    all_residuals = []
    converged = False
    breakdown = False
    kernels = canonical_kernel_counters()
    target = None

    attempts = 0
    while attempts <= max_restarts_on_detection and not converged:
        attempts += 1
        remaining = maxiter - total_iterations
        if remaining <= 0:
            break
        try:
            result = gmres(
                operator,
                b,
                x0=x,
                tol=tol,
                atol=atol,
                restart=restart,
                maxiter=remaining,
                preconditioner=preconditioner,
                policy=engine_policy,
            )
        except CycleAbandoned as abandoned:
            # The corrupted cycle is discarded; the current iterate x is
            # still valid (it was formed before the corruption), so we
            # simply try again from it -- keeping the abandoned
            # attempt's kernel work in the accounting.
            if abandoned.kernels:
                kernels.merge_dict(abandoned.kernels)
            total_iterations += 1
            continue
        total_iterations += result.iterations
        all_residuals.extend(result.residual_norms)
        kernels.merge_dict(result.info["kernels"])
        target = result.info["target"]
        x = np.asarray(result.x)
        converged = result.converged
        breakdown = result.breakdown
        if converged or breakdown:
            break

    summary = monitor.summary()
    return SolveResult(
        x=x,
        converged=converged,
        iterations=total_iterations,
        residual_norms=all_residuals,
        breakdown=breakdown,
        detected_faults=monitor.n_detections,
        info={
            "detection_restarts": skeptical.detection_restarts,
            "checks_run": summary["checks_run"],
            "check_flops": summary["check_flops"],
            "policy": policy,
            "operator_norm_estimate": norm_estimate,
            "target": target,
            "kernels": kernels.as_dict(),
        },
    )
