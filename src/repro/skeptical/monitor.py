"""The skeptical monitor.

:class:`SkepticalMonitor` is the glue of the SkP model: it holds a set
of named checks, a check period, and a response policy, and exposes an
``observe`` method that iterative computations call with whatever state
they want validated.  It keeps a ledger of all check results so the
experiments can report detection latency, overhead and false-positive
rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.skeptical.checks import CheckResult
from repro.skeptical.policies import AbortPolicy, ResponsePolicy
from repro.utils.logging import EventLog
from repro.utils.validation import check_integer

__all__ = ["SkepticalMonitor"]


@dataclass
class _CheckEntry:
    name: str
    func: Callable[..., CheckResult]
    period: int


class SkepticalMonitor:
    """Periodic invariant checking with a configurable response policy.

    Parameters
    ----------
    policy:
        The :class:`~repro.skeptical.policies.ResponsePolicy` invoked on
        the first failed check of an observation (default: abort).
    log:
        Optional shared event log.

    Examples
    --------
    >>> from repro.skeptical.checks import finite_check
    >>> monitor = SkepticalMonitor()
    >>> monitor.add_check("finite", lambda state: finite_check(state["x"]))
    >>> import numpy as np
    >>> outcome = monitor.observe({"x": np.ones(4)})
    >>> outcome is None   # all checks passed
    True
    """

    def __init__(self, policy: Optional[ResponsePolicy] = None, log: Optional[EventLog] = None):
        self.policy = policy if policy is not None else AbortPolicy()
        self.log = log if log is not None else EventLog()
        self._checks: List[_CheckEntry] = []
        self._observation_count = 0
        self.results: List[CheckResult] = []
        self.detections: List[CheckResult] = []
        self.actions: List[str] = []
        self.total_check_flops = 0.0

    # ------------------------------------------------------------------
    def add_check(
        self,
        name: str,
        func: Callable[[dict], CheckResult],
        *,
        period: int = 1,
    ) -> None:
        """Register a check.

        Parameters
        ----------
        name:
            Identifier used in reports.
        func:
            Callable receiving the observation's state dictionary and
            returning a :class:`CheckResult`.
        period:
            Run the check only every ``period`` observations -- the
            knob that trades detection latency against overhead (the
            E1 ablation sweeps it).
        """
        check_integer(period, "period")
        if period <= 0:
            raise ValueError("period must be positive")
        self._checks.append(_CheckEntry(name=name, func=func, period=period))

    @property
    def n_checks(self) -> int:
        """Number of registered checks."""
        return len(self._checks)

    @property
    def n_detections(self) -> int:
        """Number of failed check evaluations so far."""
        return len(self.detections)

    @property
    def detected(self) -> bool:
        """Whether any check has failed so far."""
        return bool(self.detections)

    # ------------------------------------------------------------------
    def observe(self, state: dict) -> Optional[str]:
        """Run the due checks against ``state``.

        Returns ``None`` when everything passed, otherwise the action
        string returned by the policy (``"rollback"`` / ``"continue"``).
        The abort policy raises
        :class:`~repro.skeptical.policies.SkepticalAbort` instead of
        returning.
        """
        self._observation_count += 1
        action: Optional[str] = None
        for entry in self._checks:
            if self._observation_count % entry.period != 0:
                continue
            result = entry.func(state)
            if not isinstance(result, CheckResult):
                raise TypeError(f"check '{entry.name}' must return a CheckResult")
            self.results.append(result)
            self.total_check_flops += result.cost_flops
            if result.passed:
                continue
            self.detections.append(result)
            self.log.record(
                "check_failed",
                check=result.name,
                measure=result.measure,
                threshold=result.threshold,
                observation=self._observation_count,
            )
            if action is None:
                action = self.policy.handle(result, context=state)
                self.actions.append(action)
        return action

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Aggregate statistics for experiment tables."""
        return {
            "observations": float(self._observation_count),
            "checks_run": float(len(self.results)),
            "detections": float(len(self.detections)),
            "check_flops": float(self.total_check_flops),
        }

    def reset(self) -> None:
        """Clear all recorded results (checks stay registered)."""
        self._observation_count = 0
        self.results.clear()
        self.detections.clear()
        self.actions.clear()
        self.total_check_flops = 0.0
