"""Response policies for failed skeptical checks.

The paper (§II-A) lists the possible responses to a detected silent
error: "Recovery may be as simple as aborting, or may involve rolling
back to a previous valid state, or even continuing execution if the
error will be damped by subsequent computations."  Each option is a
policy class here; the :class:`~repro.skeptical.monitor.SkepticalMonitor`
invokes the configured policy when a check fails.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.skeptical.checks import CheckResult
from repro.utils.logging import EventLog

__all__ = [
    "SkepticalAbort",
    "ResponsePolicy",
    "AbortPolicy",
    "RollbackPolicy",
    "AcceptIfDampedPolicy",
]


class SkepticalAbort(RuntimeError):
    """Raised by :class:`AbortPolicy` when a check fails."""

    def __init__(self, check: CheckResult):
        super().__init__(
            f"skeptical check '{check.name}' failed: measure {check.measure:.3e} "
            f"exceeds threshold {check.threshold:.3e}"
        )
        self.check = check


class ResponsePolicy:
    """Base class: decides what happens after a failed check.

    ``handle`` returns one of the action strings ``"abort"``,
    ``"rollback"`` or ``"continue"``; the monitor acts on it (and the
    abort policy raises directly).
    """

    def handle(self, check: CheckResult, context: Optional[dict] = None) -> str:
        """Handle a failed check; return the action taken."""
        raise NotImplementedError


class AbortPolicy(ResponsePolicy):
    """Terminate the computation (fail-stop on detection)."""

    def handle(self, check: CheckResult, context: Optional[dict] = None) -> str:
        raise SkepticalAbort(check)


class RollbackPolicy(ResponsePolicy):
    """Restore a previously validated state and retry.

    Parameters
    ----------
    restore:
        Callable invoked with the context dictionary; it must restore
        whatever state the wrapped computation needs (the monitor's
        user supplies it, e.g. "reset GMRES to the last restart").
    max_rollbacks:
        After this many rollbacks the policy escalates to abort, so an
        unrecoverable persistent error cannot loop forever.
    """

    def __init__(self, restore: Callable[[Optional[dict]], Any], max_rollbacks: int = 3):
        if max_rollbacks <= 0:
            raise ValueError("max_rollbacks must be positive")
        self._restore = restore
        self.max_rollbacks = int(max_rollbacks)
        self.rollbacks_performed = 0

    def handle(self, check: CheckResult, context: Optional[dict] = None) -> str:
        if self.rollbacks_performed >= self.max_rollbacks:
            raise SkepticalAbort(check)
        self.rollbacks_performed += 1
        self._restore(context)
        return "rollback"


class AcceptIfDampedPolicy(ResponsePolicy):
    """Continue when the detected error is small enough to be damped.

    The policy compares the check's measure against a damping threshold
    (looser than the detection threshold): small violations are
    tolerated on the grounds that the iteration will damp them (e.g. a
    slightly perturbed Krylov vector just slows convergence), while
    large ones escalate to the fallback policy.
    """

    def __init__(self, damping_threshold: float, fallback: Optional[ResponsePolicy] = None,
                 log: Optional[EventLog] = None):
        if damping_threshold <= 0:
            raise ValueError("damping_threshold must be positive")
        self.damping_threshold = float(damping_threshold)
        self.fallback = fallback if fallback is not None else AbortPolicy()
        self.log = log if log is not None else EventLog()
        self.accepted = 0

    def handle(self, check: CheckResult, context: Optional[dict] = None) -> str:
        if check.measure <= self.damping_threshold:
            self.accepted += 1
            self.log.record("sdc_accepted", check=check.name, measure=check.measure)
            return "continue"
        return self.fallback.handle(check, context)
