"""First-order upwind linear advection.

``u_t + c u_x = 0`` on the unit interval with periodic boundaries,
discretized with the first-order upwind scheme.  Its exactly conserved
total (with periodic boundaries the discrete sum is preserved to
rounding) makes it the natural demonstration workload for the
conservation-based skeptical check of :mod:`repro.skeptical.checks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_integer, check_positive

__all__ = ["advection_step_upwind", "AdvectionProblem1D"]


def advection_step_upwind(u: np.ndarray, c: float, dt: float, h: float) -> np.ndarray:
    """One upwind step with periodic boundaries.

    Requires the CFL condition ``|c| dt / h <= 1`` for stability; the
    caller is responsible for choosing ``dt`` (see
    :class:`AdvectionProblem1D`).
    """
    u = np.asarray(u, dtype=np.float64)
    check_positive(dt, "dt")
    check_positive(h, "h")
    cfl = c * dt / h
    if abs(cfl) > 1.0 + 1e-12:
        raise ValueError(f"CFL number {cfl:.3f} exceeds 1; reduce dt")
    if c >= 0:
        return u - cfl * (u - np.roll(u, 1))
    return u - cfl * (np.roll(u, -1) - u)


@dataclass
class AdvectionProblem1D:
    """Periodic 1-D advection of a Gaussian pulse.

    Attributes
    ----------
    n_points:
        Grid points.
    speed:
        Advection speed ``c``.
    cfl:
        CFL number used to set the time step.
    """

    n_points: int = 256
    speed: float = 1.0
    cfl: float = 0.9

    def __post_init__(self) -> None:
        check_integer(self.n_points, "n_points")
        if self.n_points <= 1:
            raise ValueError("n_points must exceed 1")
        check_positive(abs(self.speed), "speed")
        check_positive(self.cfl, "cfl")
        if self.cfl > 1.0:
            raise ValueError("cfl must not exceed 1")
        self.h = 1.0 / self.n_points
        self.dt = self.cfl * self.h / abs(self.speed)
        self.x = np.arange(self.n_points) * self.h
        self.u = np.exp(-((self.x - 0.5) ** 2) / (2 * 0.05**2))

    def reset(self) -> None:
        """Restore the initial pulse."""
        self.u = np.exp(-((self.x - 0.5) ** 2) / (2 * 0.05**2))

    def step(self, n_steps: int = 1) -> np.ndarray:
        """Advance ``n_steps`` upwind steps and return the field."""
        check_integer(n_steps, "n_steps")
        for _ in range(n_steps):
            self.u = advection_step_upwind(self.u, self.speed, self.dt, self.h)
        return self.u

    def total_mass(self) -> float:
        """The conserved discrete total ``h * sum(u)``."""
        return float(self.u.sum() * self.h)
