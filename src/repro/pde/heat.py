"""Explicit (forward-Euler) heat equation.

``u_t = alpha * u_xx`` on the unit interval with homogeneous Dirichlet
boundaries, discretized with second-order central differences and
forward Euler in time.  The explicit stepper is the workload of the
LFLR experiments because, as the paper notes (§III-C), "an explicit
time-stepping algorithm can be easily implemented to recover locally,
given the LFLR features": the state needed to continue is exactly the
current field, one block per rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.pde.grid import Grid1D
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "stable_time_step",
    "gaussian_initial_condition",
    "heat_step_explicit",
    "heat_step_distributed",
    "HeatProblem1D",
]


def stable_time_step(h: float, alpha: float, safety: float = 0.9) -> float:
    """Largest stable forward-Euler step ``dt <= h^2 / (2 alpha)``, scaled."""
    check_positive(h, "h")
    check_positive(alpha, "alpha")
    check_positive(safety, "safety")
    return safety * h * h / (2.0 * alpha)


def gaussian_initial_condition(x: np.ndarray, center: float = 0.5, width: float = 0.1) -> np.ndarray:
    """A Gaussian bump, the standard smooth initial condition."""
    x = np.asarray(x, dtype=np.float64)
    check_positive(width, "width")
    return np.exp(-((x - center) ** 2) / (2.0 * width * width))


def heat_step_explicit(
    u: np.ndarray, dt: float, h: float, alpha: float,
    *, left_boundary: float = 0.0, right_boundary: float = 0.0,
) -> np.ndarray:
    """One forward-Euler step on a full (non-distributed) field."""
    u = np.asarray(u, dtype=np.float64)
    check_positive(dt, "dt")
    check_positive(h, "h")
    padded = np.empty(u.size + 2, dtype=np.float64)
    padded[0] = left_boundary
    padded[-1] = right_boundary
    padded[1:-1] = u
    laplacian = (padded[:-2] - 2.0 * padded[1:-1] + padded[2:]) / (h * h)
    return u + dt * alpha * laplacian


def heat_step_distributed(
    grid: Grid1D, u_local: np.ndarray, dt: float, alpha: float
) -> np.ndarray:
    """One forward-Euler step on this rank's block (halo exchange included)."""
    u_local = np.asarray(u_local, dtype=np.float64)
    left_ghost, right_ghost = grid.exchange_halos(u_local)
    padded = np.empty(u_local.size + 2, dtype=np.float64)
    padded[0] = left_ghost
    padded[-1] = right_ghost
    padded[1:-1] = u_local
    laplacian = (padded[:-2] - 2.0 * padded[1:-1] + padded[2:]) / (grid.h * grid.h)
    if grid.comm is not None:
        grid.comm.compute(5.0 * u_local.size)
    return u_local + dt * alpha * laplacian


@dataclass
class HeatProblem1D:
    """A sequential reference heat problem (used as the ground truth).

    Attributes
    ----------
    n_points:
        Number of interior grid points.
    alpha:
        Diffusivity.
    dt:
        Time step (defaults to the stable step).
    """

    n_points: int = 128
    alpha: float = 1.0
    dt: Optional[float] = None
    history: List[np.ndarray] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        check_integer(self.n_points, "n_points")
        if self.n_points <= 0:
            raise ValueError("n_points must be positive")
        check_positive(self.alpha, "alpha")
        self.h = 1.0 / (self.n_points + 1)
        if self.dt is None:
            self.dt = stable_time_step(self.h, self.alpha)
        check_positive(self.dt, "dt")
        self.x = (np.arange(self.n_points) + 1) * self.h
        self.u = gaussian_initial_condition(self.x)

    def reset(self) -> None:
        """Restore the initial condition."""
        self.u = gaussian_initial_condition(self.x)
        self.history.clear()

    def step(self, n_steps: int = 1, *, record: bool = False) -> np.ndarray:
        """Advance the solution ``n_steps`` steps; returns the field."""
        check_integer(n_steps, "n_steps")
        for _ in range(n_steps):
            self.u = heat_step_explicit(self.u, self.dt, self.h, self.alpha)
            if record:
                self.history.append(self.u.copy())
        return self.u

    def total_heat(self) -> float:
        """The conserved-up-to-boundary-flux total of the field."""
        return float(self.u.sum() * self.h)

    def run(self, n_steps: int) -> np.ndarray:
        """Reset and run ``n_steps`` steps from the initial condition."""
        self.reset()
        return self.step(n_steps)
