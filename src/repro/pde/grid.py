"""1-D block domain decomposition with halo exchange.

Rank ``r`` owns a contiguous block of grid points of the unit interval;
each explicit time step needs one ghost value from each side, obtained
with a neighbour ``sendrecv`` -- the canonical nearest-neighbour
communication pattern whose *local* nature is what makes local recovery
(LFLR) possible in the first place: losing one rank invalidates only
its own block, and only its neighbours hold the redundant copy needed
to rebuild it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.simmpi.comm import Comm
from repro.utils.validation import check_integer

__all__ = ["partition_interval", "Grid1D"]

_HALO_TAG_LEFT = 101
_HALO_TAG_RIGHT = 102


def partition_interval(n_points: int, n_ranks: int) -> List[Tuple[int, int]]:
    """Split ``n_points`` grid points into contiguous per-rank ranges."""
    check_integer(n_points, "n_points")
    check_integer(n_ranks, "n_ranks")
    if n_points <= 0 or n_ranks <= 0:
        raise ValueError("n_points and n_ranks must be positive")
    if n_points < n_ranks:
        raise ValueError("need at least one grid point per rank")
    base = n_points // n_ranks
    extra = n_points % n_ranks
    ranges = []
    start = 0
    for r in range(n_ranks):
        size = base + (1 if r < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class Grid1D:
    """This rank's block of a 1-D grid on ``[0, 1]`` with Dirichlet boundaries.

    Parameters
    ----------
    comm:
        The communicator (or ``None`` for a sequential grid spanning
        the whole domain).
    n_global:
        Total number of interior grid points.
    boundary_value:
        Dirichlet value used at both physical boundaries.
    """

    def __init__(self, comm: Optional[Comm], n_global: int, *, boundary_value: float = 0.0):
        check_integer(n_global, "n_global")
        if n_global <= 0:
            raise ValueError("n_global must be positive")
        self.comm = comm
        self.n_global = int(n_global)
        self.boundary_value = float(boundary_value)
        n_ranks = comm.size if comm is not None else 1
        rank = comm.rank if comm is not None else 0
        ranges = partition_interval(self.n_global, n_ranks)
        self.start, self.stop = ranges[rank]
        self.h = 1.0 / (self.n_global + 1)
        self.left_rank = rank - 1 if rank > 0 else None
        self.right_rank = rank + 1 if rank < n_ranks - 1 else None

    # ------------------------------------------------------------------
    @property
    def n_local(self) -> int:
        """Number of locally owned grid points."""
        return self.stop - self.start

    def local_coordinates(self) -> np.ndarray:
        """Physical x-coordinates of the locally owned points."""
        return (np.arange(self.start, self.stop) + 1) * self.h

    # ------------------------------------------------------------------
    def exchange_halos(self, u_local: np.ndarray) -> Tuple[float, float]:
        """Exchange boundary values with neighbours.

        Returns ``(left_ghost, right_ghost)``; physical boundaries use
        the Dirichlet value.  Communication goes through the simulated
        communicator and therefore participates in failure detection --
        a dead neighbour surfaces as
        :class:`~repro.simmpi.errors.RankFailedError` here.
        """
        u_local = np.asarray(u_local, dtype=np.float64)
        if u_local.size != self.n_local:
            raise ValueError("u_local has the wrong length for this rank's block")
        left_ghost = self.boundary_value
        right_ghost = self.boundary_value
        if self.comm is None:
            return left_ghost, right_ghost
        comm = self.comm
        # Exchange with the left neighbour: send my first value, receive
        # its last value.  Ordered to avoid send/recv cycles: even ranks
        # exchange right first, odd ranks left first.
        def exchange_with(neighbor: Optional[int], value: float, send_tag: int, recv_tag: int) -> Optional[float]:
            if neighbor is None:
                return None
            return comm.sendrecv(
                float(value), dest=neighbor, source=neighbor,
                sendtag=send_tag, recvtag=recv_tag,
            )

        if comm.rank % 2 == 0:
            right = exchange_with(self.right_rank, u_local[-1], _HALO_TAG_RIGHT, _HALO_TAG_LEFT)
            left = exchange_with(self.left_rank, u_local[0], _HALO_TAG_LEFT, _HALO_TAG_RIGHT)
        else:
            left = exchange_with(self.left_rank, u_local[0], _HALO_TAG_LEFT, _HALO_TAG_RIGHT)
            right = exchange_with(self.right_rank, u_local[-1], _HALO_TAG_RIGHT, _HALO_TAG_LEFT)
        if left is not None:
            left_ghost = left
        if right is not None:
            right_ghost = right
        return left_ghost, right_ghost

    def global_sum(self, values: np.ndarray) -> float:
        """Sum a local quantity across all ranks (or locally if sequential)."""
        local = float(np.sum(values))
        if self.comm is None:
            return local
        return float(self.comm.allreduce(local))

    def gather_field(self, u_local: np.ndarray) -> Optional[np.ndarray]:
        """Gather the full field on every rank (``None`` never returned)."""
        if self.comm is None:
            return np.asarray(u_local, dtype=np.float64).copy()
        pieces = self.comm.allgather(np.asarray(u_local, dtype=np.float64))
        return np.concatenate(pieces)
