"""Implicit (backward-Euler) heat equation solved with CG.

The implicit case is the interesting one for LFLR (paper §III-C): the
state lost with a failed rank cannot simply be recomputed from the
previous step without re-solving, and the paper suggests restoring "a
local state that is equivalent up to the truncation error of the PDE",
for example from a redundantly stored coarse model.  This module
provides the implicit stepper; the coarse-model recovery lives in
:mod:`repro.lflr.coarse` and the experiment in
:mod:`repro.experiments.e5_coarse_recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.krylov.cg import cg
from repro.linalg.csr import CsrMatrix
from repro.linalg.matgen import poisson_1d
from repro.pde.heat import gaussian_initial_condition
from repro.utils.validation import check_integer, check_positive

__all__ = ["backward_euler_matrix", "ImplicitHeatProblem1D"]


def backward_euler_matrix(n_points: int, dt: float, alpha: float) -> CsrMatrix:
    """The SPD system matrix ``I + dt * alpha / h^2 * L`` of one BE step."""
    check_integer(n_points, "n_points")
    check_positive(dt, "dt")
    check_positive(alpha, "alpha")
    h = 1.0 / (n_points + 1)
    laplacian = poisson_1d(n_points, scale=dt * alpha / (h * h))
    return laplacian + CsrMatrix.identity(n_points)


@dataclass
class ImplicitHeatProblem1D:
    """Backward-Euler heat equation with a CG inner solve per step.

    Attributes
    ----------
    n_points:
        Interior grid points.
    alpha:
        Diffusivity.
    dt:
        Time step; implicit stepping is unconditionally stable so this
        can be much larger than the explicit limit.
    cg_tol:
        Relative tolerance of the per-step CG solve.
    """

    n_points: int = 128
    alpha: float = 1.0
    dt: float = 1e-3
    cg_tol: float = 1e-10

    def __post_init__(self) -> None:
        check_integer(self.n_points, "n_points")
        if self.n_points <= 0:
            raise ValueError("n_points must be positive")
        check_positive(self.alpha, "alpha")
        check_positive(self.dt, "dt")
        check_positive(self.cg_tol, "cg_tol")
        self.h = 1.0 / (self.n_points + 1)
        self.x = (np.arange(self.n_points) + 1) * self.h
        self.matrix = backward_euler_matrix(self.n_points, self.dt, self.alpha)
        self.u = gaussian_initial_condition(self.x)
        self.cg_iterations: List[int] = []

    def reset(self) -> None:
        """Restore the initial condition and clear counters."""
        self.u = gaussian_initial_condition(self.x)
        self.cg_iterations.clear()

    def step(self, n_steps: int = 1, *, x0: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance ``n_steps`` backward-Euler steps.

        Each step solves ``(I + dt*alpha*L/h^2) u_new = u_old`` with CG,
        warm-started from ``x0`` (defaults to the previous solution,
        which is what makes the quality of a *recovered* state matter:
        a bad initial guess costs extra CG iterations -- the metric of
        experiment E5).
        """
        check_integer(n_steps, "n_steps")
        for _ in range(n_steps):
            guess = self.u if x0 is None else np.asarray(x0, dtype=np.float64)
            result = cg(self.matrix, self.u, x0=guess, tol=self.cg_tol, maxiter=10 * self.n_points)
            if not result.converged:
                raise RuntimeError("implicit heat step failed to converge")
            self.u = np.asarray(result.x, dtype=np.float64)
            self.cg_iterations.append(result.iterations)
            x0 = None
        return self.u

    def total_heat(self) -> float:
        """Discrete total of the field."""
        return float(self.u.sum() * self.h)
