"""Structured-grid PDE substrate.

The LFLR and checkpoint/restart experiments of the paper are framed
around time-dependent PDE computations (paper §III-C).  This subpackage
provides the model problems:

* :mod:`repro.pde.grid` -- 1-D block domain decomposition with halo
  exchange over the simulated runtime.
* :mod:`repro.pde.heat` -- explicit (forward-Euler) heat equation:
  sequential reference solver and the distributed step kernel.
* :mod:`repro.pde.advection` -- first-order upwind linear advection
  (a second explicit workload with an exactly conserved quantity).
* :mod:`repro.pde.implicit` -- implicit (backward-Euler) heat equation
  solved with CG, the workload of the coarse-model recovery experiment.
"""

from repro.pde.grid import Grid1D, partition_interval
from repro.pde.heat import (
    HeatProblem1D,
    heat_step_explicit,
    heat_step_distributed,
    stable_time_step,
    gaussian_initial_condition,
)
from repro.pde.advection import AdvectionProblem1D, advection_step_upwind
from repro.pde.implicit import ImplicitHeatProblem1D, backward_euler_matrix

__all__ = [
    "Grid1D",
    "partition_interval",
    "HeatProblem1D",
    "heat_step_explicit",
    "heat_step_distributed",
    "stable_time_step",
    "gaussian_initial_condition",
    "AdvectionProblem1D",
    "advection_step_upwind",
    "ImplicitHeatProblem1D",
    "backward_euler_matrix",
]
