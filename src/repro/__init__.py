"""repro -- Resilient Algorithms and Applications toolkit.

A from-scratch Python reproduction of the system envisioned in
M. A. Heroux, *"Toward Resilient Algorithms and Applications"*
(HPDC 2013 / arXiv:1402.3809): the four resilience-enabling programming
models -- Skeptical Programming (SkP), Relaxed Bulk-Synchronous
Programming (RBSP), Local Failure Local Recovery (LFLR) and Selective
Reliability Programming (SRP) -- together with the substrates they need
(a simulated message-passing runtime with failure semantics, fault
injectors, machine/performance models, sparse linear algebra, Krylov
solvers, PDE discretizations and a checkpoint/restart baseline) and the
resilient algorithms built on top (SDC-detecting GMRES, checksum ABFT,
pipelined Krylov methods, locally-recovered PDE time stepping, and
FT-GMRES with selective reliability).

Subpackage overview
-------------------
``repro.utils``
    RNG management, validation, timing, tables, event logs.
``repro.reliability``
    The unified reliability layer: declarative fault specs and the
    named fault-model registry over bit flips, fault schedules,
    injectors, process-failure models, SRP domains, TMR and the
    reliability cost model.  (``repro.faults`` and ``repro.srp``
    remain as deprecated shims.)
``repro.machine``
    Machine model, performance-variability models, collective cost and
    application-efficiency formulas.
``repro.simmpi``
    The simulated MPI runtime (virtual time, asynchronous collectives,
    ULFM-style failure notification, respawn).
``repro.linalg``
    CSR sparse matrices, model problems, preconditioners, checksummed
    (ABFT) operations, distributed vectors/matrices.
``repro.krylov``
    CG, GMRES, FGMRES, Arnoldi and their pipelined variants, unified
    under one solver engine and a named, sweepable solver registry.
``repro.precond``
    The declarative preconditioning layer: serializable
    ``PrecondSpec`` configurations, a named registry and
    ``resolve_preconds`` -- the third sweepable axis, and the natural
    home of selective reliability (only ``M^{-1} v`` unreliable).
``repro.skeptical``
    SkP: invariant checks, policies, monitors, SDC-detecting GMRES.
``repro.rbsp``
    RBSP: asynchronous-collective helpers and latency analysis.
``repro.ftgmres``
    FT-GMRES: reliable outer / unreliable inner iteration.
``repro.lflr``
    LFLR: persistent stores, recovery registry, manager, PDE recovery.
``repro.checkpoint``
    Global checkpoint/restart baseline and the Young/Daly model.
``repro.pde``
    Structured-grid heat/advection problems used by the experiments.
``repro.experiments``
    Drivers that regenerate every experiment in EXPERIMENTS.md.
"""

__version__ = "1.0.0"

__all__ = [
    "utils",
    "reliability",
    "faults",
    "machine",
    "simmpi",
    "linalg",
    "krylov",
    "precond",
    "skeptical",
    "rbsp",
    "srp",
    "ftgmres",
    "lflr",
    "checkpoint",
    "pde",
    "experiments",
    "__version__",
]
