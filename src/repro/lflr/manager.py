"""The LFLR recovery manager.

:class:`LFLRManager` implements, on top of the simulated runtime's
ULFM-style primitives, the protocol a real LFLR library would run when
a process failure is detected:

1. every survivor that sees a
   :class:`~repro.simmpi.errors.RankFailedError` calls
   :meth:`LFLRManager.recover`;
2. survivors advance to a new communication epoch (the analogue of
   ULFM's revoke + shrink + spawn + merge sequence);
3. the *designated* survivor (lowest alive rank) respawns every dead
   rank, running the registered recovery function in the replacement;
4. the designated survivor notifies the other survivors point-to-point
   (so nobody races ahead of the respawn), after which all ranks --
   survivors and replacements -- meet in a barrier in the new epoch;
5. the application then agrees on a resume point (for the PDE drivers:
   an allreduce of the minimum persisted step) and continues.

Only steps 1-4 live here; step 5 is application logic (see
:mod:`repro.lflr.explicit`) because what "resume" means depends on the
algorithm -- exactly the division of labour the paper's LFLR model
prescribes (the system restores the process and its persistent data,
the application restores its own semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.simmpi.comm import Comm
from repro.simmpi.errors import RankFailedError
from repro.simmpi.runtime import SimRuntime
from repro.utils.logging import EventLog

__all__ = ["RecoveryOutcome", "LFLRManager"]

_RECOVERY_NOTIFY_TAG = 250


@dataclass
class RecoveryOutcome:
    """What a call to :meth:`LFLRManager.recover` accomplished.

    Attributes
    ----------
    failed_ranks:
        The ranks that were found dead and respawned.
    new_epoch:
        The communication epoch in effect after recovery.
    recovery_start / recovery_end:
        Virtual times bracketing this rank's participation in the
        recovery protocol (their difference is the recovery overhead
        reported by experiment E4).
    """

    failed_ranks: List[int]
    new_epoch: int
    recovery_start: float
    recovery_end: float

    @property
    def recovery_time(self) -> float:
        """Virtual seconds this rank spent in recovery."""
        return max(self.recovery_end - self.recovery_start, 0.0)


class LFLRManager:
    """Per-rank LFLR coordination object.

    Parameters
    ----------
    comm:
        This rank's communicator.
    runtime:
        The owning :class:`~repro.simmpi.runtime.SimRuntime` (needed to
        respawn replacement ranks).
    recovery_entry:
        Callable run *as* the replacement rank:
        ``recovery_entry(comm, context)`` where ``context`` is the
        dictionary passed to :meth:`recover` (the application places
        whatever the replacement needs in it -- problem parameters,
        the failure plan, etc.).  It must begin by calling
        :meth:`join_as_replacement` so the replacement synchronizes
        with the survivors.
    log:
        Shared event log.
    """

    def __init__(
        self,
        comm: Comm,
        runtime: SimRuntime,
        recovery_entry: Optional[Callable[..., Any]] = None,
        log: Optional[EventLog] = None,
    ):
        self.comm = comm
        self.runtime = runtime
        self.recovery_entry = recovery_entry
        self.log = log if log is not None else comm.log
        self.recoveries: List[RecoveryOutcome] = []

    # ------------------------------------------------------------------
    def register_recovery(self, recovery_entry: Callable[..., Any]) -> None:
        """Register (or replace) the recovery function."""
        self.recovery_entry = recovery_entry

    @property
    def n_recoveries(self) -> int:
        """Number of recoveries this rank has participated in."""
        return len(self.recoveries)

    # ------------------------------------------------------------------
    def recover(
        self,
        error: RankFailedError,
        context: Optional[Dict[str, Any]] = None,
    ) -> RecoveryOutcome:
        """Survivor-side recovery protocol.

        Must be called by every surviving rank after catching a
        :class:`~repro.simmpi.errors.RankFailedError`; returns once the
        replacement ranks are alive and reachable in the new epoch.
        """
        if self.recovery_entry is None:
            raise RuntimeError("no recovery function registered")
        start = self.comm.now()
        # Revoke the failed epoch first so survivors still blocked in
        # pre-failure communication are interrupted rather than deadlocked.
        self.comm.revoke()
        new_epoch = self.comm.epoch + 1
        self.comm.advance_epoch(new_epoch)
        # The authoritative dead set is the runtime's, which may exceed
        # what this particular error reported.
        dead = sorted(set(self.comm.dead_ranks()) | set(error.failed_ranks))
        # The designated survivor must be computed identically by every
        # survivor even though they reach this point at different wall
        # times (a late survivor may already see the replacements alive):
        # use "lowest rank that has never died", falling back to the
        # lowest current survivor.
        ever_failed = set(self.runtime.state.death_times)
        candidates = [r for r in range(self.comm.size) if r not in ever_failed]
        survivors = [r for r in range(self.comm.size) if r not in dead]
        designated = min(candidates) if candidates else min(survivors)
        if self.comm.rank == designated:
            # Born-at is the designated survivor's own (virtual)
            # detection time plus the respawn latency -- a deterministic
            # quantity, unlike the live clocks of the other survivors,
            # which depend on wall-clock thread interleaving.
            born_at = start + self.comm.machine.local_recovery_overhead
            for rank in dead:
                self.runtime.respawn(
                    rank,
                    self._replacement_main,
                    new_epoch,
                    dict(context or {}),
                    born_at=born_at,
                )
            for rank in survivors:
                if rank != designated:
                    self.comm.send(
                        {"failed": dead, "epoch": new_epoch},
                        dest=rank,
                        tag=_RECOVERY_NOTIFY_TAG,
                    )
        else:
            notice = self.comm.recv(source=designated, tag=_RECOVERY_NOTIFY_TAG)
            dead = list(notice["failed"])
        # Model the respawn/connection-re-establishment latency.
        self.comm.advance(self.comm.machine.local_recovery_overhead)
        self.comm.barrier()
        end = self.comm.now()
        outcome = RecoveryOutcome(
            failed_ranks=list(dead),
            new_epoch=new_epoch,
            recovery_start=start,
            recovery_end=end,
        )
        self.recoveries.append(outcome)
        self.log.record(
            "lflr_recovery",
            time=end,
            rank=self.comm.rank,
            failed=list(dead),
            epoch=new_epoch,
        )
        return outcome

    # ------------------------------------------------------------------
    def _replacement_main(self, comm: Comm, new_epoch: int, context: Dict[str, Any]):
        """Entry point of a respawned rank (runs in the new thread)."""
        if self.recovery_entry is None:  # pragma: no cover - guarded in recover()
            raise RuntimeError("no recovery function registered")
        return self.recovery_entry(comm, new_epoch, context)

    @staticmethod
    def join_as_replacement(comm: Comm, new_epoch: int) -> None:
        """First call a replacement rank must make.

        Advances the replacement to the recovery epoch and joins the
        post-recovery barrier so it is synchronized with the survivors.
        """
        comm.advance_epoch(new_epoch)
        comm.barrier()
