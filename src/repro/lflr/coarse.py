"""Redundant coarse-model storage for implicit-method recovery.

For implicit methods the paper (§III-C) suggests "storing a coarse
model representation on neighboring processes that could be used to
boot-strap state recovery upon failure": the coarse representation is
cheap to keep redundant (a coarsening factor of c costs only 1/c of the
state in extra memory), and after a failure the lost block is rebuilt
by interpolation -- accurate "up to the truncation error of the PDE",
i.e. good enough that the next implicit solve converges in almost the
same number of iterations as from the true state.

* :func:`restrict_field` / :func:`prolong_field` -- the averaging
  restriction and linear-interpolation prolongation operators.
* :class:`CoarseModelStore` -- a per-rank store of coarse snapshots
  (its redundancy/mirroring across ranks reuses
  :class:`~repro.lflr.store.PersistentStore`; sequential experiments
  use it directly as a container).

Experiment E5 compares recovery from the coarse model against the
cheaper alternatives the paper implies are inadequate (restart the lost
block from zero, or average the neighbours).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.utils.validation import check_integer

__all__ = ["restrict_field", "prolong_field", "CoarseModelStore"]


def restrict_field(fine: np.ndarray, factor: int) -> np.ndarray:
    """Restrict a 1-D field by averaging ``factor`` neighbouring values.

    The tail segment (when the length is not divisible by the factor)
    is averaged over the remaining points, so no information is
    silently dropped.
    """
    check_integer(factor, "factor")
    if factor <= 0:
        raise ValueError("factor must be positive")
    fine = np.asarray(fine, dtype=np.float64)
    if fine.ndim != 1:
        raise ValueError("restrict_field expects a 1-D field")
    if factor == 1 or fine.size == 0:
        return fine.copy()
    n_coarse = int(np.ceil(fine.size / factor))
    coarse = np.empty(n_coarse, dtype=np.float64)
    for i in range(n_coarse):
        block = fine[i * factor : min((i + 1) * factor, fine.size)]
        coarse[i] = block.mean()
    return coarse


def prolong_field(coarse: np.ndarray, n_fine: int, factor: int) -> np.ndarray:
    """Interpolate a coarse field back to ``n_fine`` points.

    Piecewise-linear interpolation between coarse-cell centres, which
    reproduces smooth fields to second order -- the "up to the
    truncation error" accuracy the paper asks of the recovered state.
    """
    check_integer(n_fine, "n_fine")
    check_integer(factor, "factor")
    if n_fine < 0 or factor <= 0:
        raise ValueError("n_fine must be >= 0 and factor positive")
    coarse = np.asarray(coarse, dtype=np.float64)
    if n_fine == 0:
        return np.zeros(0, dtype=np.float64)
    if coarse.size == 0:
        return np.zeros(n_fine, dtype=np.float64)
    if coarse.size == 1:
        return np.full(n_fine, float(coarse[0]))
    # Coarse sample i represents the centre of fine block i.
    centres = np.array(
        [min((i * factor + min((i + 1) * factor, n_fine) - 1) / 2.0, n_fine - 1)
         for i in range(coarse.size)]
    )
    fine_coords = np.arange(n_fine, dtype=np.float64)
    return np.interp(fine_coords, centres, coarse)


class CoarseModelStore:
    """Per-owner store of coarse snapshots of a 1-D field.

    Parameters
    ----------
    factor:
        Coarsening factor (memory overhead of redundancy is ~1/factor).
    """

    def __init__(self, factor: int = 4):
        check_integer(factor, "factor")
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.factor = int(factor)
        self._snapshots: Dict[int, Dict[str, np.ndarray]] = {}
        self._sizes: Dict[int, int] = {}

    def store(self, owner: int, field: np.ndarray, step: Optional[int] = None) -> np.ndarray:
        """Store the coarse representation of ``owner``'s field; returns it."""
        field = np.asarray(field, dtype=np.float64)
        coarse = restrict_field(field, self.factor)
        self._snapshots[int(owner)] = {
            "coarse": coarse,
            "step": np.asarray(step if step is not None else -1),
        }
        self._sizes[int(owner)] = field.size
        return coarse

    def owners(self):
        """Owners with a stored snapshot."""
        return sorted(self._snapshots.keys())

    def recover(self, owner: int) -> Optional[np.ndarray]:
        """Rebuild ``owner``'s fine field from its stored coarse model."""
        snapshot = self._snapshots.get(int(owner))
        if snapshot is None:
            return None
        n_fine = self._sizes[int(owner)]
        return prolong_field(snapshot["coarse"], n_fine, self.factor)

    def memory_overhead(self, owner: int) -> float:
        """Bytes of coarse redundancy relative to the owner's fine state."""
        snapshot = self._snapshots.get(int(owner))
        if snapshot is None:
            return 0.0
        n_fine = self._sizes[int(owner)]
        if n_fine == 0:
            return 0.0
        return snapshot["coarse"].size / float(n_fine)
