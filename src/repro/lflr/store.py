"""The LFLR persistent store.

Each rank registers the state it would need to continue after losing a
process ("store specific data persistently for each MPI process",
paper §II-C).  The store keeps

* a bounded history of the rank's own snapshots (so ranks that have run
  slightly ahead can roll back to a globally consistent step), and
* a mirror of its **partner rank's** snapshots, received over the
  (simulated) network -- this is the neighbour redundancy that lets a
  replacement process rebuild the lost state without any global
  storage.

The store is a per-process object; mirroring to the partner uses an
explicit exchange so that it costs communication in the virtual-time
model and fails (visibly) if the partner is already dead.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.simmpi.comm import Comm, payload_nbytes
from repro.utils.validation import check_integer

__all__ = ["StoreEntry", "PersistentStore"]

_MIRROR_TAG = 201
_RESTORE_REQUEST_TAG = 202
_RESTORE_REPLY_TAG = 203


def _deep_copy_state(state: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            out[key] = value.copy()
        else:
            out[key] = copy.deepcopy(value)
    return out


@dataclass
class StoreEntry:
    """One persisted snapshot: a step label plus a state dictionary."""

    step: int
    state: Dict[str, Any]


class PersistentStore:
    """Per-rank persistent storage with partner mirroring.

    Parameters
    ----------
    comm:
        The communicator of the owning rank.
    partner_offset:
        The partner holding this rank's redundant copy is
        ``(rank + partner_offset) % size``; the default of 1 gives the
        ring pattern typically used by neighbour-based checkpointing.
    history:
        Number of snapshots retained (per owner).  Must cover the
        maximum step skew between ranks at failure time; the LFLR heat
        driver keeps ranks within one step of each other, so small
        values suffice.
    """

    def __init__(self, comm: Comm, *, partner_offset: int = 1, history: int = 4):
        check_integer(partner_offset, "partner_offset")
        check_integer(history, "history")
        if history <= 0:
            raise ValueError("history must be positive")
        if comm.size > 1 and partner_offset % comm.size == 0:
            raise ValueError("partner_offset must not map a rank onto itself")
        self.comm = comm
        self.partner_offset = int(partner_offset)
        self.history = int(history)
        self._own: List[StoreEntry] = []
        self._mirrored: Dict[int, List[StoreEntry]] = {}
        self.bytes_mirrored = 0

    # ------------------------------------------------------------------
    @property
    def partner(self) -> int:
        """Rank that holds this rank's redundant copy."""
        return (self.comm.rank + self.partner_offset) % self.comm.size

    @property
    def mirror_source(self) -> int:
        """Rank whose redundant copy this rank holds."""
        return (self.comm.rank - self.partner_offset) % self.comm.size

    # ------------------------------------------------------------------
    def persist(self, step: int, state: Dict[str, Any], *, mirror: bool = True) -> None:
        """Persist a snapshot locally and (by default) mirror it to the partner.

        Mirroring is a symmetric exchange: this rank sends its snapshot
        to its partner and receives its ``mirror_source``'s snapshot in
        the same call, so every rank ends the call holding exactly one
        remote copy per step.  With a single rank the mirror step is
        skipped (there is nowhere to put a redundant copy).
        """
        check_integer(step, "step")
        entry = StoreEntry(step=int(step), state=_deep_copy_state(state))
        self._own.append(entry)
        if len(self._own) > self.history:
            self._own.pop(0)
        if not mirror or self.comm.size == 1:
            return
        payload = {"step": entry.step, "state": entry.state, "owner": self.comm.rank}
        self.bytes_mirrored += payload_nbytes(payload.get("state"))
        received = self.comm.sendrecv(
            payload,
            dest=self.partner,
            source=self.mirror_source,
            sendtag=_MIRROR_TAG,
            recvtag=_MIRROR_TAG,
        )
        owner = int(received["owner"])
        mirrored = self._mirrored.setdefault(owner, [])
        mirrored.append(StoreEntry(step=int(received["step"]), state=received["state"]))
        if len(mirrored) > self.history:
            mirrored.pop(0)

    # ------------------------------------------------------------------
    def latest_own(self) -> Optional[StoreEntry]:
        """Most recent locally persisted snapshot."""
        return self._own[-1] if self._own else None

    def own_at_step(self, step: int) -> Optional[StoreEntry]:
        """Locally persisted snapshot with the given step label."""
        for entry in reversed(self._own):
            if entry.step == step:
                return StoreEntry(step=entry.step, state=_deep_copy_state(entry.state))
        return None

    def own_steps(self) -> List[int]:
        """Step labels currently retained locally."""
        return [entry.step for entry in self._own]

    # ------------------------------------------------------------------
    def mirrored_owners(self) -> List[int]:
        """Ranks whose snapshots this rank is mirroring."""
        return sorted(self._mirrored.keys())

    def mirrored_latest(self, owner: int) -> Optional[StoreEntry]:
        """Most recent mirrored snapshot of ``owner`` held here."""
        entries = self._mirrored.get(int(owner))
        if not entries:
            return None
        entry = entries[-1]
        return StoreEntry(step=entry.step, state=_deep_copy_state(entry.state))

    def mirrored_at_step(self, owner: int, step: int) -> Optional[StoreEntry]:
        """Mirrored snapshot of ``owner`` at a specific step, if held."""
        entries = self._mirrored.get(int(owner), [])
        for entry in reversed(entries):
            if entry.step == step:
                return StoreEntry(step=entry.step, state=_deep_copy_state(entry.state))
        return None

    # ------------------------------------------------------------------
    def reply_restore(self, requester: int, owner: int, step: Optional[int] = None) -> None:
        """Send the mirrored snapshot of ``owner`` to ``requester``."""
        entry = None
        if step is not None:
            entry = self.mirrored_at_step(owner, step)
        if entry is None:
            entry = self.mirrored_latest(owner)
        payload = None
        if entry is not None:
            payload = {"step": entry.step, "state": entry.state, "owner": owner}
        self.comm.send(payload, dest=requester, tag=_RESTORE_REPLY_TAG)

    def request_restore(self, holder: int) -> Optional[StoreEntry]:
        """Receive this rank's snapshot back from the rank holding its mirror.

        Used by a replacement process: its own store is empty (the old
        process died with it), so the redundant copy lives at
        ``holder`` -- normally ``self.partner`` of the *old* process,
        which equals this replacement's partner as well since the rank
        id is reused.
        """
        payload = self.comm.recv(source=holder, tag=_RESTORE_REPLY_TAG)
        if payload is None:
            return None
        entry = StoreEntry(step=int(payload["step"]), state=payload["state"])
        # Seed the local history so subsequent persists behave normally.
        self._own.append(StoreEntry(step=entry.step, state=_deep_copy_state(entry.state)))
        return entry
