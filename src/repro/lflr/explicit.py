"""Locally restarted explicit heat equation (experiment E4's workload).

This is the end-to-end demonstration of the LFLR model on the paper's
"easy" case (§III-C, explicit methods): a 1-D explicit heat solve
distributed over simulated ranks, with

* per-step persistence of each rank's block into the
  :class:`~repro.lflr.store.PersistentStore` (local copy + partner
  mirror),
* hard faults injected by the runtime's failure plan,
* detection through the ULFM-style errors of the simulated runtime,
* recovery by the :class:`~repro.lflr.manager.LFLRManager`: the dead
  rank is respawned, pulls its last persisted block from its partner's
  mirror, every rank rolls back to the globally agreed resume step, and
  the time loop continues.

Protocol of one loop iteration (every rank, every iteration):

1. ``allreduce(step, MIN)`` -- the *agreement*: doubles as the per-step
   failure detector (a dead rank fails the collective for everyone) and
   as the resume-point negotiation after a recovery;
2. roll back to the agreed step from the local persistent store if this
   rank had run ahead;
3. persist the current block (local + partner mirror);
4. one explicit step with halo exchange.

On any :class:`~repro.simmpi.errors.RankFailedError` the rank runs the
LFLR recovery protocol (revoke, new epoch, respawn, barrier), then --
if it holds the mirror of a failed rank -- sends that mirror to the
replacement, and re-enters the loop; the next agreement brings every
rank back to a consistent step.  The final field is therefore
bit-identical to a failure-free run.

The driver returns enough information to verify that correctness and to
measure cost (virtual time, number of recoveries, rolled-back steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.reliability.process import FailurePlan
from repro.lflr.manager import LFLRManager
from repro.lflr.store import PersistentStore
from repro.machine.model import MachineModel
from repro.pde.grid import Grid1D
from repro.pde.heat import gaussian_initial_condition, heat_step_distributed, stable_time_step
from repro.simmpi.errors import RankFailedError
from repro.simmpi.ops import MIN
from repro.simmpi.runtime import SimRuntime
from repro.utils.validation import check_integer, check_positive

__all__ = ["LflrHeatResult", "run_lflr_heat"]


@dataclass
class LflrHeatResult:
    """Outcome of an LFLR heat run.

    Attributes
    ----------
    field:
        The final global temperature field.
    n_steps:
        Number of time steps of the run.
    n_recoveries:
        How many recovery events occurred (max over ranks).
    steps_rolled_back:
        Total steps re-executed because of rollbacks (sum over ranks).
    virtual_time:
        Maximum virtual finish time over all ranks.
    recovery_time:
        Total virtual time spent inside recovery (max over ranks).
    events:
        Kind -> count summary of the runtime's event log.
    """

    field: np.ndarray
    n_steps: int
    n_recoveries: int
    steps_rolled_back: int
    virtual_time: float
    recovery_time: float
    events: Dict[str, int] = field(default_factory=dict)


def _rank_program(
    comm,
    runtime: SimRuntime,
    config: dict,
    *,
    needs_restore: bool = False,
):
    """The SPMD program each rank (and each replacement) runs."""
    n_global = config["n_global"]
    n_steps = config["n_steps"]
    alpha = config["alpha"]
    dt = config["dt"]
    partner_offset = config.get("partner_offset", 1)

    grid = Grid1D(comm, n_global)
    store = PersistentStore(
        comm, partner_offset=partner_offset, history=config.get("history", 4)
    )
    manager = LFLRManager(comm, runtime)

    def recovery_entry(new_comm, new_epoch, context):
        # Runs inside the replacement rank: synchronize with the
        # survivors, then restart the program in restore mode.
        LFLRManager.join_as_replacement(new_comm, new_epoch)
        return _rank_program(new_comm, runtime, config, needs_restore=True)

    manager.register_recovery(recovery_entry)

    rollback_steps = 0

    if needs_restore and comm.size > 1:
        # Replacement rank: the survivor holding this rank's mirror sends
        # it right after the recovery barrier (see the except-branch in
        # the loop below), so a plain receive pairs with it.
        entry = store.request_restore(holder=store.partner)
        if entry is None:
            u_local = gaussian_initial_condition(grid.local_coordinates())
            step = 0
        else:
            u_local = np.asarray(entry.state["u"], dtype=np.float64)
            step = int(entry.step)
    else:
        u_local = gaussian_initial_condition(grid.local_coordinates())
        step = 0

    while True:
        try:
            # Agreement: the global resume point.  Doubles as the per-step
            # failure detector and as the collective exit test.
            agreed = int(comm.allreduce(step, op=MIN))
            if agreed >= n_steps:
                break
            if agreed < step:
                restored = store.own_at_step(agreed)
                if restored is not None:
                    u_local = np.asarray(restored.state["u"], dtype=np.float64)
                    rollback_steps += step - agreed
                    step = agreed
            # Persist the state we are about to advance from.
            store.persist(step, {"u": u_local})
            u_local = heat_step_distributed(grid, u_local, dt, alpha)
            step += 1
        except RankFailedError as error:
            outcome = manager.recover(error, context={})
            # If this rank holds the mirror of a failed rank, hand the
            # mirrored snapshot to the freshly respawned replacement.
            for dead in outcome.failed_ranks:
                holder = (dead + partner_offset) % comm.size
                if holder == comm.rank and dead != comm.rank:
                    store.reply_restore(requester=dead, owner=dead)
            continue

    full_field = grid.gather_field(u_local)
    recovery_time = sum(o.recovery_time for o in manager.recoveries)
    return {
        "field": full_field,
        "rank": comm.rank,
        "recoveries": manager.n_recoveries,
        "rollback_steps": rollback_steps,
        "recovery_time": recovery_time,
        "finish_time": comm.now(),
    }


def run_lflr_heat(
    n_ranks: int = 4,
    *,
    n_global: int = 64,
    n_steps: int = 40,
    alpha: float = 1.0,
    failure_plan: Optional[FailurePlan] = None,
    machine: Optional[MachineModel] = None,
    faults=None,
    fault_seed: Optional[int] = None,
    partner_offset: int = 1,
    history: int = 4,
    watchdog: float = 60.0,
) -> LflrHeatResult:
    """Run the LFLR explicit heat solver end to end.

    Parameters
    ----------
    n_ranks:
        Number of simulated ranks.
    n_global:
        Global number of interior grid points.
    n_steps:
        Number of explicit time steps.
    alpha:
        Diffusivity (the stable time step is derived from it).
    failure_plan:
        Hard-fault plan in *virtual seconds* (``None`` = fault free).
    machine:
        Machine model (defaults to the commodity-cluster model so
        virtual times are non-trivial).
    faults, fault_seed:
        Declarative fault spec forwarded to :class:`SimRuntime`
        (an explicit ``failure_plan`` still wins for hard faults; the
        spec's ``msg_corrupt`` component corrupts message payloads).
    partner_offset, history:
        Persistent-store parameters (see
        :class:`~repro.lflr.store.PersistentStore`).
    watchdog:
        Wall-clock deadlock watchdog passed to the runtime.

    Returns
    -------
    LflrHeatResult

    Notes
    -----
    Simultaneous failure of a rank and the partner holding its mirror is
    not supported (the redundant copy would be lost); choose
    ``partner_offset`` so correlated failures map to distinct partners,
    or increase the failure-plan granularity.  Likewise, a second
    failure striking *while a recovery is still in progress* (within
    roughly ``machine.local_recovery_overhead`` virtual seconds of the
    first) is not handled; space planned failures further apart than the
    recovery time, which is also the physically sensible regime for the
    experiment.
    """
    check_integer(n_ranks, "n_ranks")
    check_integer(n_global, "n_global")
    check_integer(n_steps, "n_steps")
    check_positive(alpha, "alpha")
    if n_ranks < 2 and failure_plan is not None and len(failure_plan) > 0:
        raise ValueError("failures require at least 2 ranks (no partner otherwise)")
    machine = machine if machine is not None else MachineModel.commodity_cluster()
    h = 1.0 / (n_global + 1)
    config = {
        "n_global": n_global,
        "n_steps": n_steps,
        "alpha": alpha,
        "dt": stable_time_step(h, alpha),
        "partner_offset": partner_offset,
        "history": history,
    }
    runtime = SimRuntime(
        n_ranks, machine=machine, failure_plan=failure_plan,
        faults=faults, fault_seed=fault_seed, watchdog=watchdog,
    )
    results = runtime.run(_rank_program, runtime, config, timeout=300.0)
    payloads = [r.value for r in results if isinstance(r.value, dict)]
    if not payloads:
        raise RuntimeError("no rank returned a result")
    field_vec = payloads[0]["field"]
    n_recoveries = max(p["recoveries"] for p in payloads)
    rollback = sum(p["rollback_steps"] for p in payloads)
    recovery_time = max(p["recovery_time"] for p in payloads)
    events = {kind: runtime.log.count(kind) for kind in runtime.log.kinds()}
    return LflrHeatResult(
        field=np.asarray(field_vec, dtype=np.float64),
        n_steps=n_steps,
        n_recoveries=n_recoveries,
        steps_rolled_back=rollback,
        virtual_time=runtime.max_finish_time(),
        recovery_time=recovery_time,
        events=events,
    )
