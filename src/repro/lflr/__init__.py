"""Local Failure, Local Recovery (LFLR) -- paper §II-C and §III-C.

The LFLR model has two ingredients the paper spells out:

1. "store specific data persistently for each MPI process" -- the
   :class:`~repro.lflr.store.PersistentStore`, which keeps each rank's
   registered state locally *and* mirrors it to a partner rank so it
   survives the owner's death;
2. "a recovery function can be registered, such that, if a process
   fails, a new process is started and assigned to the rank of the
   failed process, and the user's recovery function is called" -- the
   :class:`~repro.lflr.manager.LFLRManager`, which detects failures
   (via the ULFM-style errors of the simulated runtime), respawns
   replacements, re-establishes collective communication, and invokes
   the registered recovery function with the restored persistent data.

On top of those, :mod:`repro.lflr.explicit` provides the locally
restarted explicit heat-equation driver of experiment E4 and
:mod:`repro.lflr.coarse` the redundantly stored coarse model used for
implicit-method recovery (experiment E5).
"""

from repro.lflr.store import PersistentStore, StoreEntry
from repro.lflr.manager import LFLRManager, RecoveryOutcome
from repro.lflr.explicit import LflrHeatResult, run_lflr_heat
from repro.lflr.coarse import CoarseModelStore, restrict_field, prolong_field

__all__ = [
    "PersistentStore",
    "StoreEntry",
    "LFLRManager",
    "RecoveryOutcome",
    "LflrHeatResult",
    "run_lflr_heat",
    "CoarseModelStore",
    "restrict_field",
    "prolong_field",
]
