"""Analytic application-efficiency models (experiment E7).

The introduction and conclusion of the paper argue that preserving the
"reliable digital machine" illusion via global checkpoint/restart
becomes too costly as systems grow, and that resilient algorithms
(LFLR-style local recovery, selective reliability) both restore
efficiency and let us run on cheaper, less reliable systems.

These are statements about the classical first-order efficiency models,
which we implement here:

* :func:`daly_optimal_interval` -- Young/Daly optimal checkpoint
  interval ``tau_opt ~ sqrt(2 * delta * M)`` (refined Daly form).
* :func:`cpr_efficiency` -- fraction of machine time doing useful work
  under periodic global checkpointing, accounting for checkpoint
  overhead, re-computed (lost) work and restart time.
* :func:`lflr_efficiency` -- the same quantity when a failure only
  costs a (small) local recovery plus the redundant-store maintenance
  overhead, as in the LFLR model.
* :func:`efficiency_crossover_mtbf` -- the system MTBF below which
  LFLR beats CPR by a given factor; used to produce the "crossover"
  rows of experiment E7.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "daly_optimal_interval",
    "cpr_efficiency",
    "lflr_efficiency",
    "efficiency_crossover_mtbf",
]


def daly_optimal_interval(checkpoint_time: float, system_mtbf: float) -> float:
    """Young/Daly optimal checkpoint interval.

    Uses Daly's higher-order approximation
    ``tau = sqrt(2 delta M) * [1 + (1/3) sqrt(delta / (2M)) + (delta)/(9*2M)] - delta``
    truncated to the familiar leading term when the correction would be
    negligible, and never returns a negative interval.

    Parameters
    ----------
    checkpoint_time:
        Time ``delta`` to write one global checkpoint (seconds).
    system_mtbf:
        System mean time between failures ``M`` (seconds).
    """
    delta = check_positive(checkpoint_time, "checkpoint_time")
    mtbf = check_positive(system_mtbf, "system_mtbf")
    if delta >= 2.0 * mtbf:
        # Checkpointing takes longer than the expected failure-free
        # window: the model degenerates; checkpoint continuously.
        return delta
    tau = math.sqrt(2.0 * delta * mtbf)
    correction = 1.0 + (1.0 / 3.0) * math.sqrt(delta / (2.0 * mtbf)) + delta / (
        9.0 * 2.0 * mtbf
    )
    return max(tau * correction - delta, delta)


def cpr_efficiency(
    checkpoint_time: float,
    system_mtbf: float,
    restart_time: float = 0.0,
    interval: Optional[float] = None,
) -> float:
    """Efficiency of periodic global checkpoint/restart.

    The standard first-order model: with checkpoint interval ``tau``
    (defaults to the Daly optimum) the fraction of time spent on useful
    work is::

        E = (tau / (tau + delta)) * exp(-(tau + delta + R) / (2 M)) ... (approx)

    We use the widely quoted waste decomposition instead of the exact
    renewal-theory expression: waste = checkpoint overhead + expected
    rework + restart cost per failure period::

        waste_fraction = delta / (tau + delta)
                         + (tau + delta) / (2 M)
                         + R / M
        E = max(0, 1 - waste_fraction)

    which is accurate for ``tau + delta << M`` and degrades gracefully
    (to zero efficiency) outside that regime -- exactly the behaviour
    the paper appeals to when it calls CPR "too costly or infeasible".
    """
    delta = check_positive(checkpoint_time, "checkpoint_time")
    mtbf = check_positive(system_mtbf, "system_mtbf")
    restart = check_non_negative(restart_time, "restart_time")
    tau = interval if interval is not None else daly_optimal_interval(delta, mtbf)
    tau = check_positive(tau, "interval")
    waste = delta / (tau + delta) + (tau + delta) / (2.0 * mtbf) + restart / mtbf
    return max(0.0, 1.0 - waste)


def lflr_efficiency(
    recovery_time: float,
    system_mtbf: float,
    redundancy_overhead: float = 0.02,
) -> float:
    """Efficiency of local-failure/local-recovery execution.

    Under LFLR a failure costs only the local recovery time ``r`` (the
    other ranks idle, at worst, for that long), and the application pays
    a constant throughput tax ``redundancy_overhead`` for maintaining
    the neighbour-redundant persistent store::

        E = (1 - redundancy_overhead) * max(0, 1 - r / M)

    The key qualitative property reproduced from the paper: ``r`` does
    not grow with the machine size (it depends only on one rank's
    state), whereas the CPR waste grows because the system MTBF shrinks
    like 1/P -- so LFLR's efficiency stays high where CPR's collapses.
    """
    recovery = check_non_negative(recovery_time, "recovery_time")
    mtbf = check_positive(system_mtbf, "system_mtbf")
    overhead = check_non_negative(redundancy_overhead, "redundancy_overhead")
    if overhead >= 1.0:
        raise ValueError("redundancy_overhead must be < 1")
    return (1.0 - overhead) * max(0.0, 1.0 - recovery / mtbf)


def efficiency_crossover_mtbf(
    checkpoint_time: float,
    recovery_time: float,
    restart_time: float = 0.0,
    redundancy_overhead: float = 0.02,
    *,
    lo: float = 1.0,
    hi: float = 1.0e9,
    tol: float = 1e-3,
) -> float:
    """System MTBF at which CPR efficiency equals LFLR efficiency.

    Below the returned MTBF, LFLR is strictly more efficient; above it,
    the constant redundancy overhead of LFLR can make CPR (with very
    rare failures) slightly better.  Found by bisection on the
    difference of the two efficiency models.
    """
    check_positive(lo, "lo")
    check_positive(hi, "hi")
    if hi <= lo:
        raise ValueError("hi must exceed lo")

    def diff(mtbf: float) -> float:
        return cpr_efficiency(checkpoint_time, mtbf, restart_time) - lflr_efficiency(
            recovery_time, mtbf, redundancy_overhead
        )

    f_lo, f_hi = diff(lo), diff(hi)
    if f_lo > 0 and f_hi > 0:
        return lo  # CPR always at least as good in range (tiny checkpoints).
    if f_lo < 0 and f_hi < 0:
        return hi  # LFLR always better in range.
    a, b = lo, hi
    while b - a > tol * max(1.0, a):
        mid = math.sqrt(a * b)  # bisection in log space
        if (diff(a) <= 0) == (diff(mid) <= 0):
            a = mid
        else:
            b = mid
    return math.sqrt(a * b)
