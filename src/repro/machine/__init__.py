"""Machine and performance models.

The paper's performance arguments (collectives limit scalability under
performance variability; checkpoint/restart efficiency collapses as the
system grows) are statements about *models* of extreme-scale machines,
not about any particular testbed.  This subpackage provides those
models:

* :mod:`repro.machine.model` -- :class:`MachineModel`: per-rank compute
  rate, network latency/bandwidth (the alpha-beta model) and hooks for
  the noise model; converts flop/byte counts into virtual seconds.
* :mod:`repro.machine.noise` -- performance-variability distributions
  (OS noise/detached daemons, ECC correction stalls) applied per rank
  per operation.
* :mod:`repro.machine.collective_cost` -- cost formulas for
  synchronous and asynchronous collectives (binomial-tree /
  recursive-doubling latency terms growing with ``log2 P``).
* :mod:`repro.machine.efficiency` -- analytic application-efficiency
  models used by experiment E7: Young/Daly checkpoint-restart
  efficiency versus an LFLR-style local-recovery efficiency.
"""

from repro.machine.model import MachineModel
from repro.machine.noise import NoiseModel, NoNoise, ExponentialNoise, BoundedParetoNoise, EccStallNoise, CompositeNoise
from repro.machine.collective_cost import (
    allreduce_time,
    broadcast_time,
    point_to_point_time,
    neighbor_exchange_time,
    barrier_time,
    CollectiveCostModel,
)
from repro.machine.efficiency import (
    daly_optimal_interval,
    cpr_efficiency,
    lflr_efficiency,
    efficiency_crossover_mtbf,
)

__all__ = [
    "MachineModel",
    "NoiseModel",
    "NoNoise",
    "ExponentialNoise",
    "BoundedParetoNoise",
    "EccStallNoise",
    "CompositeNoise",
    "allreduce_time",
    "broadcast_time",
    "point_to_point_time",
    "neighbor_exchange_time",
    "barrier_time",
    "CollectiveCostModel",
    "daly_optimal_interval",
    "cpr_efficiency",
    "lflr_efficiency",
    "efficiency_crossover_mtbf",
]
