"""Analytic cost models for collective operations.

The scaling arguments of the paper (Sections II-B and III-B) rest on a
simple fact: tree-based collectives have a latency term that grows like
``ceil(log2 P)`` while the useful per-rank work in a fixed-size-per-rank
(weak-scaling) regime stays constant, so at large enough P the
collective latency -- amplified by per-rank performance variability --
dominates.  The functions here implement the standard LogP/alpha-beta
style cost formulas used by the pipelined-Krylov literature, plus a
:class:`CollectiveCostModel` that also accounts for noise amplification
in synchronous collectives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.machine.model import MachineModel
from repro.utils.validation import check_integer, check_non_negative

__all__ = [
    "point_to_point_time",
    "allreduce_time",
    "broadcast_time",
    "barrier_time",
    "neighbor_exchange_time",
    "CollectiveCostModel",
]


def _log2ceil(n_ranks: int) -> int:
    if n_ranks <= 1:
        return 0
    return int(math.ceil(math.log2(n_ranks)))


def point_to_point_time(machine: MachineModel, n_bytes: float) -> float:
    """Alpha-beta cost of one message."""
    return machine.message_time(n_bytes)


def allreduce_time(machine: MachineModel, n_ranks: int, n_bytes: float) -> float:
    """Recursive-doubling allreduce cost.

    ``ceil(log2 P)`` rounds, each paying the latency plus transmission
    of the (typically tiny) payload.  The collective latency factor of
    the machine model scales the latency term.
    """
    check_integer(n_ranks, "n_ranks")
    check_non_negative(n_bytes, "n_bytes")
    rounds = _log2ceil(n_ranks)
    alpha = machine.latency * machine.collective_latency_factor
    return rounds * (alpha + n_bytes / machine.bandwidth)


def broadcast_time(machine: MachineModel, n_ranks: int, n_bytes: float) -> float:
    """Binomial-tree broadcast cost."""
    check_integer(n_ranks, "n_ranks")
    check_non_negative(n_bytes, "n_bytes")
    rounds = _log2ceil(n_ranks)
    alpha = machine.latency * machine.collective_latency_factor
    return rounds * (alpha + n_bytes / machine.bandwidth)


def barrier_time(machine: MachineModel, n_ranks: int) -> float:
    """Barrier modeled as a zero-byte allreduce."""
    return allreduce_time(machine, n_ranks, 0.0)


def neighbor_exchange_time(
    machine: MachineModel, n_neighbors: int, n_bytes: float
) -> float:
    """Halo exchange with ``n_neighbors`` neighbours, messages overlapped.

    Sends can be posted concurrently; the cost is one latency plus the
    serialized bandwidth term for all outgoing messages (a conservative
    single-port model).
    """
    check_integer(n_neighbors, "n_neighbors")
    check_non_negative(n_bytes, "n_bytes")
    if n_neighbors == 0:
        return 0.0
    return machine.latency + n_neighbors * n_bytes / machine.bandwidth


@dataclass
class CollectiveCostModel:
    """Cost model that includes noise amplification in synchronous collectives.

    A synchronous collective completes only when the *slowest*
    participant arrives.  If each rank's preceding compute interval is
    inflated by an independent noise term, the expected arrival of the
    maximum over P ranks grows with P; for exponential-tailed noise the
    expected maximum grows like ``mean_noise * H_P ~ mean_noise * ln P``
    (harmonic number), which is the amplification mechanism behind the
    paper's "severe limitations in scalability".

    Parameters
    ----------
    machine:
        The underlying machine model.
    noise_mean:
        Mean per-operation noise overhead (seconds) used in the
        analytic expectation.  When ``None`` the machine's own noise
        model is asked for its mean on a reference interval.
    """

    machine: MachineModel
    noise_mean: Optional[float] = None

    def _mean_noise(self, base_time: float) -> float:
        if self.noise_mean is not None:
            return self.noise_mean
        return self.machine.noise.mean_overhead(base_time)

    def synchronous_phase_time(
        self,
        n_ranks: int,
        compute_time: float,
        reduction_bytes: float = 8.0,
    ) -> float:
        """Expected time of one compute + blocking-allreduce phase.

        ``compute_time`` is the noise-free per-rank compute interval.
        The phase ends when the slowest rank has finished computing and
        the allreduce has completed.
        """
        check_integer(n_ranks, "n_ranks")
        check_non_negative(compute_time, "compute_time")
        mean_noise = self._mean_noise(compute_time)
        # Expected maximum of P i.i.d. exponential-ish noise terms:
        # harmonic-number growth.  H_P = sum_{k=1}^{P} 1/k.
        harmonic = sum(1.0 / k for k in range(1, max(n_ranks, 1) + 1))
        slowest_extra = mean_noise * harmonic
        return compute_time + slowest_extra + allreduce_time(
            self.machine, n_ranks, reduction_bytes
        )

    def asynchronous_phase_time(
        self,
        n_ranks: int,
        compute_time: float,
        overlap_time: float,
        reduction_bytes: float = 8.0,
    ) -> float:
        """Expected time of a phase using a non-blocking allreduce.

        The collective is started, ``overlap_time`` of independent work
        is performed, and only then is the collective waited on.  Noise
        still delays the start of the collective, but the latency term
        and part of the noise-induced straggler wait are hidden behind
        the overlapped work.
        """
        check_non_negative(overlap_time, "overlap_time")
        mean_noise = self._mean_noise(compute_time)
        harmonic = sum(1.0 / k for k in range(1, max(n_ranks, 1) + 1))
        slowest_extra = mean_noise * harmonic
        collective = allreduce_time(self.machine, n_ranks, reduction_bytes)
        exposed = max(collective + slowest_extra - overlap_time, 0.0)
        return compute_time + overlap_time + exposed
