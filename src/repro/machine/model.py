"""The machine model.

A :class:`MachineModel` converts abstract work descriptions (flops,
bytes moved, messages sent) into virtual seconds.  It is deliberately
simple -- the alpha-beta communication model plus a scalar flop rate --
because that is the level of abstraction at which the paper (and the
pipelined-Krylov literature it cites) reasons about scalability.

All the resilient-algorithm layers are written against this model, so
an experiment can re-run the same algorithm on "machines" with
different latency, bandwidth, noise intensity or reliability by just
passing a different model instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.machine.noise import NoiseModel, NoNoise
from repro.utils.validation import check_positive, check_non_negative

__all__ = ["MachineModel"]


@dataclass
class MachineModel:
    """Parameters of the simulated machine.

    Attributes
    ----------
    flop_rate:
        Sustained floating-point rate of one rank, in flop/s.
    latency:
        Point-to-point message latency ``alpha`` in seconds.
    bandwidth:
        Point-to-point bandwidth in bytes/s (the ``1/beta`` of the
        alpha-beta model).
    collective_latency_factor:
        Multiplier applied to the ``alpha * ceil(log2 P)`` term of tree
        collectives; >1 models software overhead of the collective
        implementation.
    memory_bandwidth:
        Per-rank memory bandwidth in bytes/s, used for memory-bound
        kernels such as sparse matrix-vector products.
    noise:
        Performance-variability model applied to compute intervals.
    checkpoint_bandwidth:
        Bandwidth to stable storage per rank (bytes/s), used by the
        checkpoint/restart cost model.
    restart_overhead:
        Fixed time (seconds) to relaunch a failed job under global CPR.
    local_recovery_overhead:
        Fixed time (seconds) for LFLR to spawn a replacement process
        and re-establish communication.
    """

    flop_rate: float = 1.0e9
    latency: float = 1.0e-6
    bandwidth: float = 1.0e9
    collective_latency_factor: float = 1.0
    memory_bandwidth: float = 5.0e9
    noise: NoiseModel = field(default_factory=NoNoise)
    checkpoint_bandwidth: float = 1.0e8
    restart_overhead: float = 30.0
    local_recovery_overhead: float = 0.5

    def __post_init__(self) -> None:
        check_positive(self.flop_rate, "flop_rate")
        check_non_negative(self.latency, "latency")
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.collective_latency_factor, "collective_latency_factor")
        check_positive(self.memory_bandwidth, "memory_bandwidth")
        check_positive(self.checkpoint_bandwidth, "checkpoint_bandwidth")
        check_non_negative(self.restart_overhead, "restart_overhead")
        check_non_negative(self.local_recovery_overhead, "local_recovery_overhead")
        if not isinstance(self.noise, NoiseModel):
            raise TypeError("noise must be a NoiseModel instance")

    # ------------------------------------------------------------------
    # Compute costs
    # ------------------------------------------------------------------
    def compute_time(self, flops: float, *, rank: Optional[int] = None) -> float:
        """Virtual seconds needed for ``flops`` floating point operations.

        The noise model may add a variability term; passing the rank
        lets rank-correlated noise models behave consistently.
        """
        check_non_negative(flops, "flops")
        base = flops / self.flop_rate
        return base + self.noise.sample(base, rank=rank)

    def memory_time(self, n_bytes: float, *, rank: Optional[int] = None) -> float:
        """Virtual seconds to stream ``n_bytes`` through memory."""
        check_non_negative(n_bytes, "n_bytes")
        base = n_bytes / self.memory_bandwidth
        return base + self.noise.sample(base, rank=rank)

    def spmv_time(
        self, nnz: float, n_rows: float, *, rank: Optional[int] = None
    ) -> float:
        """Cost of a sparse matrix-vector product with ``nnz`` nonzeros.

        Modeled as the max of the flop time (2 flops per nonzero) and
        the memory time (12 bytes per nonzero for value+index plus 8
        bytes per row for the result), i.e. a roofline-style bound.
        """
        flop_t = (2.0 * nnz) / self.flop_rate
        mem_t = (12.0 * nnz + 8.0 * n_rows) / self.memory_bandwidth
        base = max(flop_t, mem_t)
        return base + self.noise.sample(base, rank=rank)

    # ------------------------------------------------------------------
    # Communication costs (single message)
    # ------------------------------------------------------------------
    def message_time(self, n_bytes: float) -> float:
        """Alpha-beta cost of one point-to-point message."""
        check_non_negative(n_bytes, "n_bytes")
        return self.latency + n_bytes / self.bandwidth

    # ------------------------------------------------------------------
    # Resilience-related costs
    # ------------------------------------------------------------------
    def checkpoint_time(self, n_bytes_per_rank: float) -> float:
        """Time for every rank to write ``n_bytes_per_rank`` to stable storage."""
        check_non_negative(n_bytes_per_rank, "n_bytes_per_rank")
        return n_bytes_per_rank / self.checkpoint_bandwidth

    def restart_time(self, n_bytes_per_rank: float) -> float:
        """Time for a global restart: relaunch plus reading the checkpoint."""
        return self.restart_overhead + self.checkpoint_time(n_bytes_per_rank)

    def local_recovery_time(self, n_bytes_recovered: float) -> float:
        """Time for LFLR recovery of one rank's state from neighbours.

        Consists of the fixed respawn overhead plus pulling the
        redundant copy of the lost state over the network.
        """
        check_non_negative(n_bytes_recovered, "n_bytes_recovered")
        return self.local_recovery_overhead + self.message_time(n_bytes_recovered)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def ideal(cls) -> "MachineModel":
        """A noise-free machine with negligible latency (for unit tests)."""
        return cls(latency=0.0, noise=NoNoise())

    @classmethod
    def commodity_cluster(cls, noise: Optional[NoiseModel] = None) -> "MachineModel":
        """Parameters loosely resembling a commodity InfiniBand cluster."""
        return cls(
            flop_rate=5.0e9,
            latency=2.0e-6,
            bandwidth=5.0e9,
            memory_bandwidth=2.0e10,
            noise=noise if noise is not None else NoNoise(),
        )

    @classmethod
    def leadership_class(cls, noise: Optional[NoiseModel] = None) -> "MachineModel":
        """Parameters loosely resembling a leadership-class machine."""
        return cls(
            flop_rate=2.0e10,
            latency=1.0e-6,
            bandwidth=1.0e10,
            memory_bandwidth=1.0e11,
            collective_latency_factor=1.5,
            noise=noise if noise is not None else NoNoise(),
        )
