"""Performance-variability (noise) models.

Section II-B of the paper argues that the first observable impact of
decreasing hardware reliability is *performance variability*: error
detection and correction in hardware and system software keeps the
machine functionally correct but makes nominally equal work take
unequal time.  Coupled with frequent synchronous collectives this
destroys scalability.

The noise models here add a stochastic term to each compute interval:

* :class:`NoNoise` -- the idealized reliable digital machine.
* :class:`ExponentialNoise` -- classic OS-noise model: with some
  probability per operation a detour of exponentially distributed
  length is taken.
* :class:`BoundedParetoNoise` -- heavy-tailed noise, modelling rare
  but long stalls (page migrations, ECC scrubbing storms).
* :class:`EccStallNoise` -- stalls of fixed length occurring at a
  Poisson rate proportional to the interval length, modelling ECC
  correction events whose frequency grows as hardware reliability
  drops.
* :class:`CompositeNoise` -- sum of several models.

All models are seeded explicitly so experiments are reproducible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_non_negative, check_probability, check_positive

__all__ = [
    "NoiseModel",
    "NoNoise",
    "ExponentialNoise",
    "BoundedParetoNoise",
    "EccStallNoise",
    "CompositeNoise",
]


class NoiseModel:
    """Base class for per-operation noise models."""

    def sample(self, base_time: float, *, rank: Optional[int] = None) -> float:
        """Return the extra delay added to an operation of length ``base_time``."""
        raise NotImplementedError

    def mean_overhead(self, base_time: float) -> float:
        """Expected extra delay for an operation of length ``base_time``.

        Used by the analytic scaling models, which need expectations
        rather than samples.
        """
        raise NotImplementedError


class NoNoise(NoiseModel):
    """The reliable digital machine: zero variability."""

    def sample(self, base_time: float, *, rank: Optional[int] = None) -> float:
        return 0.0

    def mean_overhead(self, base_time: float) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NoNoise()"


class ExponentialNoise(NoiseModel):
    """Exponential detours with a per-operation hit probability.

    Parameters
    ----------
    probability:
        Probability that an operation is hit by a noise event.
    mean_duration:
        Mean length of a noise event, in seconds.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        probability: float,
        mean_duration: float,
        rng: Union[None, int, np.random.Generator] = None,
    ):
        self.probability = check_probability(probability, "probability")
        self.mean_duration = check_non_negative(mean_duration, "mean_duration")
        self._rng = as_generator(rng)

    def sample(self, base_time: float, *, rank: Optional[int] = None) -> float:
        if self.probability == 0.0 or self.mean_duration == 0.0:
            return 0.0
        if float(self._rng.random()) >= self.probability:
            return 0.0
        return float(self._rng.exponential(self.mean_duration))

    def mean_overhead(self, base_time: float) -> float:
        return self.probability * self.mean_duration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExponentialNoise(probability={self.probability}, "
            f"mean_duration={self.mean_duration})"
        )


class BoundedParetoNoise(NoiseModel):
    """Heavy-tailed stalls drawn from a bounded Pareto distribution.

    Parameters
    ----------
    probability:
        Per-operation hit probability.
    minimum, maximum:
        Support of the stall-length distribution in seconds.
    alpha:
        Pareto tail exponent (smaller = heavier tail).
    """

    def __init__(
        self,
        probability: float,
        minimum: float,
        maximum: float,
        alpha: float = 1.2,
        rng: Union[None, int, np.random.Generator] = None,
    ):
        self.probability = check_probability(probability, "probability")
        self.minimum = check_positive(minimum, "minimum")
        self.maximum = check_positive(maximum, "maximum")
        if self.maximum <= self.minimum:
            raise ValueError("maximum must exceed minimum")
        self.alpha = check_positive(alpha, "alpha")
        self._rng = as_generator(rng)

    def _sample_stall(self) -> float:
        # Inverse-CDF sampling of the bounded Pareto distribution.
        u = float(self._rng.random())
        lo, hi, a = self.minimum, self.maximum, self.alpha
        num = u * (hi**a - lo**a) + lo**a
        return float((lo**a * hi**a / num) ** (1.0 / a)) if a != 0 else lo

    def sample(self, base_time: float, *, rank: Optional[int] = None) -> float:
        if self.probability == 0.0:
            return 0.0
        if float(self._rng.random()) >= self.probability:
            return 0.0
        return self._sample_stall()

    def mean_overhead(self, base_time: float) -> float:
        lo, hi, a = self.minimum, self.maximum, self.alpha
        if a == 1.0:
            mean = (np.log(hi / lo) * lo * hi) / (hi - lo)
        else:
            mean = (
                lo**a / (1 - (lo / hi) ** a) * a / (a - 1) * (1 / lo ** (a - 1) - 1 / hi ** (a - 1))
            )
        return self.probability * float(mean)


class EccStallNoise(NoiseModel):
    """Stalls whose *rate* grows with the length of the interval.

    Models error detection/correction events: during an interval of
    length ``base_time`` the hardware performs ECC corrections at rate
    ``event_rate`` (events per second), each costing ``stall`` seconds.
    This is the mechanism the paper identifies: as reliability drops,
    correction events become more frequent and manifest as variability.
    """

    def __init__(
        self,
        event_rate: float,
        stall: float,
        rng: Union[None, int, np.random.Generator] = None,
    ):
        self.event_rate = check_non_negative(event_rate, "event_rate")
        self.stall = check_non_negative(stall, "stall")
        self._rng = as_generator(rng)

    def sample(self, base_time: float, *, rank: Optional[int] = None) -> float:
        check_non_negative(base_time, "base_time")
        if self.event_rate == 0.0 or self.stall == 0.0 or base_time == 0.0:
            return 0.0
        events = int(self._rng.poisson(self.event_rate * base_time))
        return events * self.stall

    def mean_overhead(self, base_time: float) -> float:
        return self.event_rate * base_time * self.stall


class CompositeNoise(NoiseModel):
    """Sum of several independent noise models."""

    def __init__(self, models: Sequence[NoiseModel]):
        models = tuple(models)
        if not models:
            raise ValueError("CompositeNoise needs at least one model")
        for model in models:
            if not isinstance(model, NoiseModel):
                raise TypeError("all components must be NoiseModel instances")
        self.models = models

    def sample(self, base_time: float, *, rank: Optional[int] = None) -> float:
        return sum(m.sample(base_time, rank=rank) for m in self.models)

    def mean_overhead(self, base_time: float) -> float:
        return sum(m.mean_overhead(base_time) for m in self.models)
