"""SPMD execution of simulated ranks.

:class:`SimRuntime` creates one thread per rank, hands each a
:class:`~repro.simmpi.comm.Comm`, and runs the user's SPMD function.
Hard faults (from a :class:`~repro.reliability.process.FailurePlan`) surface
inside the affected rank as
:class:`~repro.simmpi.errors.ProcessDeathError`, which the runtime
catches: the rank is marked dead, its thread exits, and all other ranks
learn about it through their next dependent communication.

The LFLR programming model additionally needs the ability to *replace*
a failed rank: :meth:`SimRuntime.respawn` starts a new incarnation of a
dead rank, typically running a user-registered recovery function (see
:mod:`repro.lflr`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.reliability.process import FailurePlan
from repro.machine.model import MachineModel
from repro.simmpi.comm import Comm
from repro.simmpi.errors import ProcessDeathError, SimMpiError
from repro.simmpi.state import RuntimeState
from repro.utils.logging import EventLog
from repro.utils.validation import check_integer

__all__ = ["SimRuntime", "RankResult", "run_spmd", "coerce_failure_plan"]


def coerce_failure_plan(plan, n_ranks: int, *, seed: Optional[int] = None) -> FailurePlan:
    """Coerce a failure plan or declarative fault spec into a plan.

    Accepts ``None`` (no failures), a ready
    :class:`~repro.reliability.process.FailurePlan`, or anything
    :func:`repro.reliability.resolve_faults` accepts (a registry name,
    a compact spec string such as ``"proc_fail:mtbf=3600,horizon=7200"``,
    a dict, a :class:`~repro.reliability.spec.FaultSpec` or a built
    model) -- the one uniform way every layer names its fault axis.
    Composite specs contribute their ``proc_fail`` component; specs
    with no process-failure component coerce to an empty plan.
    """
    if plan is None:
        return FailurePlan.none()
    if isinstance(plan, FailurePlan):
        return plan
    # Local import: the declarative layer sits above the runtime.
    from repro.reliability.models import FaultCapabilityError
    from repro.reliability.registry import resolve_faults

    model = resolve_faults(plan)
    try:
        return model.failure_plan(n_ranks=n_ranks, seed=seed)
    except FaultCapabilityError:
        return FailurePlan.none()


@dataclass
class RankResult:
    """Outcome of one rank incarnation.

    Attributes
    ----------
    rank:
        The rank id.
    value:
        Return value of the SPMD/recovery function (``None`` if the
        rank died or raised).
    died:
        Whether this incarnation was terminated by a hard fault.
    death_time:
        Virtual time of the hard fault, if any.
    exception:
        Unhandled exception raised by the rank function (excluding the
        hard-fault mechanism), if any.
    busy_time / idle_time / finish_time:
        Virtual-time accounting read off the rank's clock at exit.
    """

    rank: int
    value: Any = None
    died: bool = False
    death_time: Optional[float] = None
    exception: Optional[BaseException] = None
    busy_time: float = 0.0
    idle_time: float = 0.0
    finish_time: float = 0.0


@dataclass
class _RankThread:
    thread: threading.Thread
    comm: Comm
    result: RankResult


class SimRuntime:
    """Owns the shared state and the rank threads of one simulated job.

    Parameters
    ----------
    n_ranks:
        Number of simulated MPI ranks.
    machine:
        Machine model used for virtual-time accounting (defaults to
        :meth:`MachineModel.ideal`).
    failure_plan:
        Hard-fault plan; ``None`` means no rank ever dies.  Also
        accepts a declarative fault spec (registry name, compact spec
        string, dict, :class:`~repro.reliability.spec.FaultSpec` or
        built model) resolved through :func:`coerce_failure_plan`.
    faults:
        Declarative fault spec for the runtime as a whole: its
        ``proc_fail`` component supplies the failure plan (unless
        ``failure_plan`` is given explicitly) and its ``msg_corrupt``
        component corrupts message payloads on the simulated
        interconnect.
    fault_seed:
        Seed of the fault streams spec resolution draws from.
    watchdog:
        Wall-clock seconds a rank may block in one operation before the
        runtime declares the simulated program deadlocked.
    """

    def __init__(
        self,
        n_ranks: int,
        machine: Optional[MachineModel] = None,
        failure_plan: Optional[FailurePlan] = None,
        *,
        faults=None,
        fault_seed: Optional[int] = None,
        watchdog: float = 30.0,
    ):
        check_integer(n_ranks, "n_ranks")
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.machine = machine if machine is not None else MachineModel.ideal()
        self.fault_model = None
        self._corruptor_factory = None
        if faults is not None:
            from repro.reliability.registry import resolve_faults

            self.fault_model = resolve_faults(faults)
            if failure_plan is None:
                failure_plan = coerce_failure_plan(
                    self.fault_model, self.n_ranks, seed=fault_seed
                )
            msg_model = self.fault_model.component("msg_corrupt")
            if msg_model is not None:
                def _corruptor_factory(rank: int, _model=msg_model):
                    # One stream per rank, named so any entry point that
                    # agrees on (fault_seed, rank) replays the same
                    # corruption sequence (see repro.reliability.seeding).
                    return _model.message_corruptor(
                        seed=fault_seed, name=f"messages/{rank}"
                    )
                self._corruptor_factory = _corruptor_factory
        self.failure_plan = coerce_failure_plan(
            failure_plan, self.n_ranks, seed=fault_seed
        )
        self.state = RuntimeState(self.n_ranks, watchdog=watchdog)
        self._threads: Dict[int, _RankThread] = {}
        self._extra_results: List[RankResult] = []
        self._started = False

    # ------------------------------------------------------------------
    @property
    def log(self) -> EventLog:
        """Shared event log (rank deaths, respawns, collective failures)."""
        return self.state.log

    def _failure_times_for(self, rank: int) -> List[float]:
        return [f.time for f in self.failure_plan.failures_for_rank(rank)]

    def _make_comm(self, rank: int, born_at: float = 0.0) -> Comm:
        corruptor = (
            self._corruptor_factory(rank)
            if self._corruptor_factory is not None
            else None
        )
        return Comm(
            self.state,
            rank,
            self.machine,
            failure_times=self._failure_times_for(rank),
            born_at=born_at,
            message_corruptor=corruptor,
        )

    def _run_rank(
        self,
        comm: Comm,
        func: Callable[..., Any],
        args: Sequence[Any],
        kwargs: Dict[str, Any],
        result: RankResult,
    ) -> None:
        try:
            result.value = func(comm, *args, **kwargs)
        except ProcessDeathError as death:
            result.died = True
            result.death_time = death.time
            self.state.mark_dead(comm.rank, death.time)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            result.exception = exc
            # A crashed rank is as dead as a failed one from the other
            # ranks' perspective; mark it so they do not hang.
            self.state.mark_dead(comm.rank, comm.clock.now)
        finally:
            result.busy_time = comm.clock.busy_time
            result.idle_time = comm.clock.idle_time
            result.finish_time = comm.clock.now
            # Publish that this incarnation will never communicate again,
            # so receives/collectives blocked on it resolve -- but only
            # if it is still the current incarnation (a respawn may have
            # replaced it while this thread was winding down).  The
            # identity check and the mark must be one atomic step under
            # the state lock: respawn() swaps the entry and marks the
            # rank alive under the same lock, so a winding-down thread
            # can never stamp "terminated" onto a fresh replacement.
            with self.state.condition:
                entry = self._threads.get(comm.rank)
                if entry is not None and entry.comm is comm:
                    self.state.mark_terminated(comm.rank)

    # ------------------------------------------------------------------
    def start(
        self,
        func: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> None:
        """Launch all ranks running ``func(comm, *args, **kwargs)``.

        Non-blocking; use :meth:`join` (or :meth:`run`, which does both)
        to collect results.
        """
        if self._started:
            raise SimMpiError("this runtime has already been started")
        self._started = True
        for rank in range(self.n_ranks):
            comm = self._make_comm(rank)
            result = RankResult(rank=rank)
            thread = threading.Thread(
                target=self._run_rank,
                args=(comm, func, args, kwargs, result),
                name=f"simrank-{rank}",
                daemon=True,
            )
            self._threads[rank] = _RankThread(thread=thread, comm=comm, result=result)
        for entry in self._threads.values():
            entry.thread.start()

    def respawn(
        self,
        rank: int,
        func: Callable[..., Any],
        *args: Any,
        born_at: Optional[float] = None,
        **kwargs: Any,
    ) -> None:
        """Start a replacement incarnation of a dead rank.

        Parameters
        ----------
        rank:
            The dead rank to replace.
        func:
            Recovery function run as ``func(comm, *args, **kwargs)``.
        born_at:
            Virtual start time of the new incarnation.  Defaults to the
            dead rank's death time plus the machine model's
            local-recovery overhead.  The default deliberately uses
            only virtual-time quantities that are a pure function of
            the failure schedule: sampling the *live* clocks of the
            surviving rank threads here would make the respawn time
            depend on wall-clock thread interleaving and the whole
            simulation nondeterministic (the survivors' synchronization
            with the replacement is the recovery protocol's job --- see
            the barrier in :meth:`repro.lflr.manager.LFLRManager.recover`).
            Callers that model "respawn initiated after detection" pass
            the detecting rank's virtual time explicitly.
        """
        check_integer(rank, "rank")
        if rank not in self.state.dead:
            raise SimMpiError(f"rank {rank} is not dead; cannot respawn it")
        if born_at is None:
            base = self.state.death_times.get(rank, 0.0)
            born_at = base + self.machine.local_recovery_overhead
        comm = self._make_comm(rank, born_at=float(born_at))
        result = RankResult(rank=rank)
        thread = threading.Thread(
            target=self._run_rank,
            args=(comm, func, args, kwargs, result),
            name=f"simrank-{rank}-respawn",
            daemon=True,
        )
        # Swap in the new incarnation and mark it alive atomically with
        # respect to the old thread's wind-down (see _run_rank's
        # terminated-marking), preserving the original incarnation's
        # result for reporting.
        with self.state.condition:
            if rank in self._threads:
                self._extra_results.append(self._threads[rank].result)
            self._threads[rank] = _RankThread(thread=thread, comm=comm, result=result)
            self.state.mark_alive(rank, float(born_at))
        thread.start()

    def join(self, timeout: float = 120.0) -> List[RankResult]:
        """Wait for all rank threads and return their results.

        Raises the first unhandled exception of any rank (deadlock and
        programming errors should fail tests loudly); rank deaths from
        the failure plan are *not* exceptions -- they are reported via
        :attr:`RankResult.died`.
        """
        if not self._started:
            raise SimMpiError("runtime was never started")
        for entry in self._threads.values():
            entry.thread.join(timeout=timeout)
        for entry in self._threads.values():
            if entry.thread.is_alive():
                raise SimMpiError(
                    f"rank {entry.result.rank} did not finish within {timeout}s of wall time"
                )
        results = [entry.result for entry in self._threads.values()]
        for result in results:
            if result.exception is not None:
                raise result.exception
        return sorted(results + self._extra_results, key=lambda r: r.rank)

    def run(
        self,
        func: Callable[..., Any],
        *args: Any,
        timeout: float = 120.0,
        **kwargs: Any,
    ) -> List[RankResult]:
        """Convenience: :meth:`start` followed by :meth:`join`."""
        self.start(func, *args, **kwargs)
        return self.join(timeout=timeout)

    # ------------------------------------------------------------------
    def values(self, results: Optional[List[RankResult]] = None) -> List[Any]:
        """Return the per-rank return values in rank order."""
        if results is None:
            results = [entry.result for entry in self._threads.values()]
        ordered = sorted(results, key=lambda r: r.rank)
        return [r.value for r in ordered]

    def max_finish_time(self) -> float:
        """Latest virtual finish time over all rank incarnations."""
        times = [entry.result.finish_time for entry in self._threads.values()]
        times += [r.finish_time for r in self._extra_results]
        return max(times) if times else 0.0


def run_spmd(
    n_ranks: int,
    func: Callable[..., Any],
    *args: Any,
    machine: Optional[MachineModel] = None,
    failure_plan: Optional[FailurePlan] = None,
    faults=None,
    fault_seed: Optional[int] = None,
    watchdog: float = 30.0,
    **kwargs: Any,
) -> List[Any]:
    """One-shot helper: run ``func`` on ``n_ranks`` ranks, return values.

    This is the most common entry point for examples and tests::

        def program(comm):
            return comm.allreduce(comm.rank)

        totals = run_spmd(4, program)   # [6, 6, 6, 6]

    ``failure_plan`` and ``faults`` accept declarative fault specs
    exactly like :class:`SimRuntime`.
    """
    runtime = SimRuntime(
        n_ranks, machine=machine, failure_plan=failure_plan,
        faults=faults, fault_seed=fault_seed, watchdog=watchdog,
    )
    results = runtime.run(func, *args, **kwargs)
    by_rank: Dict[int, Any] = {}
    for result in results:
        # Prefer a surviving incarnation's value over a dead one's.
        if result.rank not in by_rank or not result.died:
            by_rank[result.rank] = result.value
    return [by_rank[rank] for rank in range(n_ranks)]
