"""Reduction operations for collectives.

A :class:`ReduceOp` pairs a binary combining function with an identity
element; reductions over NumPy arrays are element-wise.  The standard
MPI-like operations are provided as module-level singletons.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

__all__ = ["ReduceOp", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR"]


class ReduceOp:
    """A named, associative, commutative reduction operation.

    Parameters
    ----------
    name:
        Human-readable name used in reprs and error messages.
    func:
        Binary function combining two operands; must accept scalars and
        NumPy arrays.
    identity:
        Identity element (used to reduce an empty contribution list,
        which only happens in degenerate single-rank cases).
    """

    def __init__(self, name: str, func: Callable[[Any, Any], Any], identity: Any):
        self.name = name
        self._func = func
        self.identity = identity

    def combine(self, a: Any, b: Any) -> Any:
        """Combine two operands."""
        return self._func(a, b)

    def reduce(self, values: list) -> Any:
        """Reduce a list of operands left-to-right."""
        if not values:
            return self.identity
        result = values[0]
        for value in values[1:]:
            result = self._func(result, value)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"


def _add(a, b):
    return np.add(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a + b


def _mul(a, b):
    return np.multiply(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else a * b


def _max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)


def _min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)


def _land(a, b):
    return np.logical_and(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else bool(a) and bool(b)


def _lor(a, b):
    return np.logical_or(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else bool(a) or bool(b)


SUM = ReduceOp("SUM", _add, 0)
PROD = ReduceOp("PROD", _mul, 1)
MAX = ReduceOp("MAX", _max, float("-inf"))
MIN = ReduceOp("MIN", _min, float("inf"))
LAND = ReduceOp("LAND", _land, True)
LOR = ReduceOp("LOR", _lor, False)
