"""Non-blocking operation handles.

A :class:`Request` is returned by the ``i``-prefixed operations of
:class:`~repro.simmpi.comm.Comm` (``isend``, ``irecv``, ``iallreduce``,
``ibarrier``, ...).  Calling :meth:`Request.wait` blocks (in wall-clock
terms, briefly) until the operation has completed on all participants,
then advances the caller's virtual clock to the operation's completion
time -- unless the caller has already moved past it, in which case the
operation's latency was fully hidden by overlapped work.  That is
exactly the latency-hiding mechanism the RBSP model exposes.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["Request", "CompletedRequest", "waitall", "waitany"]


class Request:
    """Handle for an in-flight non-blocking operation.

    Parameters
    ----------
    wait_fn:
        Callable performing the actual completion.  It receives the
        request and must return the operation's result; it is also
        responsible for updating the caller's virtual clock.
    operation:
        Name used in error messages.
    """

    def __init__(self, wait_fn: Callable[["Request"], Any], operation: str = "request"):
        self._wait_fn = wait_fn
        self.operation = operation
        self._done = False
        self._result: Any = None

    @property
    def completed(self) -> bool:
        """Whether :meth:`wait` has already returned."""
        return self._done

    def wait(self) -> Any:
        """Complete the operation and return its result.

        Idempotent: waiting twice returns the cached result.
        """
        if not self._done:
            self._result = self._wait_fn(self)
            self._done = True
        return self._result

    def test(self) -> bool:
        """Non-blocking completion probe.

        The simulated runtime completes operations eagerly in data
        terms (payloads are available as soon as all participants have
        posted), so ``test`` simply reports whether ``wait`` has been
        called.  It never forces completion.
        """
        return self._done

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "completed" if self._done else "pending"
        return f"Request({self.operation}, {state})"


class CompletedRequest(Request):
    """A request that was already complete when it was created.

    Used for degenerate cases (e.g. a non-blocking operation on a
    single-rank communicator) so callers can treat everything
    uniformly.
    """

    def __init__(self, result: Any = None, operation: str = "request"):
        super().__init__(wait_fn=lambda _req: result, operation=operation)
        self._done = True
        self._result = result


def waitall(requests: Sequence[Request]) -> List[Any]:
    """Complete every request; results in *request* order.

    The MPI ``Waitall`` analogue: the result list lines up with the
    input list regardless of the order completions actually happen in,
    so ``waitall([isend(...), irecv(...)])[1]`` is always the received
    payload.
    """
    return [request.wait() for request in requests]


def waitany(requests: Sequence[Request]) -> Tuple[int, Any]:
    """Complete one request; returns ``(index, result)``.

    The MPI ``Waitany`` analogue.  Already-completed requests (their
    :meth:`~Request.test` is true) are preferred -- lowest index first
    -- so overlapped work that has finished is drained before anything
    blocks; only when none has completed is the first pending request
    waited on.
    """
    if not requests:
        raise ValueError("waitany requires at least one request")
    for index, request in enumerate(requests):
        if request.test():
            return index, request.wait()
    return 0, requests[0].wait()
