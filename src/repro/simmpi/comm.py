"""The simulated communicator.

Each rank thread is handed one :class:`Comm` instance; all interaction
between ranks goes through it.  The API deliberately mirrors the mpi4py
lower-case (pickle-object) interface, restricted to the operations the
resilient algorithms need, plus:

* explicit virtual-time hooks (:meth:`Comm.compute`, :meth:`Comm.advance`)
  driven by the machine model;
* MPI-3 style non-blocking collectives (``iallreduce``, ``ibarrier``,
  ``iallgather``) used by the RBSP / pipelined-Krylov algorithms;
* ULFM-style failure reporting: any operation that depends on a dead
  rank raises :class:`~repro.simmpi.errors.RankFailedError`;
* :meth:`Comm.advance_epoch`, the communicator-repair step executed by
  every participant after a recovery so that subsequent collectives
  match again (ULFM ``shrink``/agree analogue).
"""

from __future__ import annotations

import copy
import sys
from typing import Any, Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.machine.collective_cost import (
    allreduce_time,
    barrier_time,
    broadcast_time,
)
from repro.machine.model import MachineModel
from repro.simmpi.clock import VirtualClock
from repro.simmpi.errors import (
    InvalidRankError,
    ProcessDeathError,
    RankFailedError,
)
from repro.simmpi.ops import ReduceOp, SUM
from repro.simmpi.requests import CompletedRequest, Request
from repro.simmpi.state import RuntimeState

__all__ = ["Comm", "payload_nbytes"]


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of a payload in bytes.

    NumPy arrays report their true buffer size; Python scalars count as
    8 bytes; everything else falls back to ``sys.getsizeof``.  The
    estimate only feeds the timing model, never correctness.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return 8
    if obj is None:
        return 0
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    return int(sys.getsizeof(obj))


def _copy_payload(obj: Any) -> Any:
    """Deep-copy a payload so ranks never share mutable state."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (int, float, complex, bool, str, bytes, type(None), np.generic)):
        return obj
    return copy.deepcopy(obj)


class Comm:
    """Simulated communicator bound to one rank.

    Instances are created by :class:`~repro.simmpi.runtime.SimRuntime`;
    user code receives them as the first argument of the SPMD function.

    Parameters
    ----------
    state:
        Shared runtime state.
    rank:
        This rank's id in ``[0, size)``.
    machine:
        Machine model used for virtual-time accounting.
    failure_times:
        Sorted virtual times at which this rank is scheduled to die.
    born_at:
        Virtual time at which this incarnation of the rank started
        (non-zero for respawned ranks).
    message_corruptor:
        Optional callable ``(payload, dest, tag) -> payload`` applied
        to the already-copied payload of every point-to-point send --
        the runtime's hook for declarative message-corruption fault
        models (``"msg_corrupt:p=..."``).  It runs in the sender's
        thread in program order, so corruption stays a deterministic
        function of the per-rank fault stream.
    """

    def __init__(
        self,
        state: RuntimeState,
        rank: int,
        machine: MachineModel,
        failure_times: Sequence[float] = (),
        born_at: float = 0.0,
        message_corruptor: Optional[Callable[[Any, int, int], Any]] = None,
    ):
        self._state = state
        self._rank = int(rank)
        self._machine = machine
        self._failure_times = sorted(float(t) for t in failure_times)
        self._message_corruptor = message_corruptor
        self.clock = VirtualClock(born_at)
        self._born_at = float(born_at)
        self._epoch = 0
        self._seq = 0

    def _outgoing_payload(self, obj: Any, dest: int, tag: int) -> Any:
        """Copy (and possibly corrupt) a payload entering the network."""
        payload = _copy_payload(obj)
        if self._message_corruptor is not None:
            payload = self._message_corruptor(payload, dest, tag)
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks the communicator was created with."""
        return self._state.n_ranks

    @property
    def machine(self) -> MachineModel:
        """The machine model in effect."""
        return self._machine

    @property
    def epoch(self) -> int:
        """Current communication epoch (bumped by recovery)."""
        return self._epoch

    @property
    def log(self):
        """The shared runtime event log."""
        return self._state.log

    def alive_ranks(self) -> List[int]:
        """Sorted list of ranks currently alive."""
        with self._state.condition:
            return sorted(self._state.alive)

    def dead_ranks(self) -> List[int]:
        """Sorted list of ranks currently dead."""
        with self._state.condition:
            return sorted(self._state.dead)

    def is_alive(self, rank: int) -> bool:
        """Whether ``rank`` is currently alive."""
        self._check_rank(rank)
        return self._state.is_alive(rank)

    def _check_rank(self, rank: int) -> None:
        if not isinstance(rank, (int, np.integer)) or isinstance(rank, bool):
            raise InvalidRankError(f"rank must be an integer, got {rank!r}")
        if not 0 <= rank < self.size:
            raise InvalidRankError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )

    # ------------------------------------------------------------------
    # Virtual time
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time of this rank."""
        return self.clock.now

    def compute(self, flops: float) -> float:
        """Account for ``flops`` of local computation; returns new time.

        A hard fault scheduled to strike *during* the interval manifests
        at its end (the process dies mid-computation), so the failure
        check runs both before and after the clock advance.
        """
        self._check_own_failure()
        now = self.clock.advance(self._machine.compute_time(flops, rank=self._rank))
        self._check_own_failure()
        return now

    def advance(self, seconds: float) -> float:
        """Advance this rank's clock by an explicit busy interval.

        Like :meth:`compute`, a fault scheduled within the interval
        strikes at its end.
        """
        self._check_own_failure()
        now = self.clock.advance(seconds)
        self._check_own_failure()
        return now

    # ------------------------------------------------------------------
    # Failure machinery
    # ------------------------------------------------------------------
    def _check_own_failure(self) -> None:
        """Die if a scheduled hard fault has struck this incarnation."""
        now = self.clock.now
        for t in self._failure_times:
            if t < self._born_at:
                continue
            key = (self._rank, t)
            if key in self._state.consumed_failures:
                continue
            if t <= now:
                with self._state.condition:
                    self._state.consumed_failures.add(key)
                raise ProcessDeathError(self._rank, now)
            break

    def pending_failure_time(self) -> Optional[float]:
        """Next scheduled (unconsumed) failure time of this incarnation."""
        for t in self._failure_times:
            if t < self._born_at:
                continue
            if (self._rank, t) not in self._state.consumed_failures:
                return t
        return None

    def revoke(self) -> None:
        """Revoke the current epoch (ULFM ``MPI_Comm_revoke`` analogue).

        Records the revocation event and wakes every blocked rank so
        failure propagation is prompt in wall-clock terms.  The actual
        *failing* of pending operations is driven by the deterministic
        liveness predicate
        (:meth:`~repro.simmpi.state.RuntimeState.may_still_operate`):
        a blocked receive or collective fails once the awaited rank has
        died, returned, or advanced past this epoch -- never merely
        because the revoked flag went up, which would race against
        messages the epoch is still (virtually) owed.  Recovery
        protocols call this before advancing to a new epoch; it is the
        epoch advance that marks this rank gone for the old epoch.
        """
        self._state.revoke_epoch(self._epoch, rank=self._rank, time=self.clock.now)

    def advance_epoch(self, epoch: Optional[int] = None) -> int:
        """Re-establish collective matching after a repair.

        Every surviving and respawned rank must call this with the same
        ``epoch`` value (or ``None`` to simply increment); afterwards
        collectives are matched afresh, independent of how many
        collectives each rank had executed before the failure.
        """
        if epoch is None:
            epoch = self._epoch + 1
        epoch = int(epoch)
        if epoch <= self._epoch:
            raise ValueError(
                f"epoch must increase (current {self._epoch}, requested {epoch})"
            )
        self._epoch = epoch
        self._seq = 0
        # Publish the advance: operations of older epochs blocked on
        # this rank now resolve as failed (see state.may_still_operate).
        self._state.enter_epoch(self._rank, epoch)
        return self._epoch

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send.

        A buffered send never detects the death of its destination:
        the payload is accepted by the "network" (the mailbox) and the
        sender moves on, exactly like an eager-protocol MPI send.
        Failures surface at the operations that genuinely depend on the
        peer -- receives and collectives -- whose outcomes are pure
        functions of virtual time.  (Checking the wall-clock ``dead``
        set here would make the outcome depend on whether the doomed
        rank's *thread* happened to have reached its death yet -- the
        simulation would stop being deterministic.)
        """
        self._check_own_failure()
        self._check_rank(dest)
        if dest == self._rank:
            raise InvalidRankError("send to self is not supported; use local state")
        nbytes = payload_nbytes(obj)
        cost = self._machine.message_time(nbytes)
        with self._state.condition:
            send_time = self.clock.now
            available = send_time + cost
            box = self._state.mailbox((self._epoch, self._rank, dest, int(tag)))
            box.append((self._outgoing_payload(obj, dest, int(tag)), available))
            self._state.condition.notify_all()
        # Sender pays the message cost (eager protocol).
        self.clock.advance(cost)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; the payload is buffered immediately.

        The sender does not pay the transmission time until the request
        is waited on, modelling send/compute overlap.
        """
        self._check_own_failure()
        self._check_rank(dest)
        if dest == self._rank:
            raise InvalidRankError("send to self is not supported; use local state")
        nbytes = payload_nbytes(obj)
        cost = self._machine.message_time(nbytes)
        with self._state.condition:
            # Buffered like send(): never detects peer death (see there).
            send_time = self.clock.now
            available = send_time + cost
            box = self._state.mailbox((self._epoch, self._rank, dest, int(tag)))
            box.append((self._outgoing_payload(obj, dest, int(tag)), available))
            self._state.condition.notify_all()
        latency = self._machine.latency

        def _complete(_req: Request) -> None:
            # By wait time the transfer proceeded in the background; the
            # sender only pays the injection latency if it has not
            # already moved past it.
            self.clock.wait_until(send_time + latency)
            return None

        return Request(_complete, operation="isend")

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from ``source``.

        Fails (:class:`RankFailedError`) only when the mailbox is empty
        *and* the source can no longer send in this epoch -- it died,
        returned, or advanced to a newer epoch.  A source that is
        merely lagging in wall-clock terms is waited for, so whether an
        in-flight pre-failure message is received never depends on
        thread interleaving.
        """
        self._check_own_failure()
        self._check_rank(source)
        if source == self._rank:
            raise InvalidRankError("recv from self is not supported")
        key = (self._epoch, source, self._rank, int(tag))
        with self._state.condition:
            box = self._state.mailbox(key)

            def ready() -> bool:
                return bool(box) or not self._state.may_still_operate(
                    source, self._epoch
                )

            self._state.wait_for(ready, rank=self._rank, operation=f"recv(src={source})")
            if not box:
                if source in self._state.dead:
                    raise RankFailedError(
                        [source], "recv", detected_at=self.clock.now
                    )
                # The source is alive but finished with this epoch
                # (returned or moved on during recovery).  Report no
                # failed ranks: naming the living source would invite a
                # recovery layer to respawn it, and snapshotting the
                # wall-clock dead set would make the payload depend on
                # thread interleaving.  Recovery protocols read the
                # authoritative dead set themselves (dead_ranks()).
                raise RankFailedError(
                    frozenset(),
                    f"recv (source rank {source} departed the epoch)",
                    detected_at=self.clock.now,
                )
            payload, available = box.popleft()
        self.clock.wait_until(available)
        return payload

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; completion happens at :meth:`Request.wait`."""
        self._check_own_failure()
        self._check_rank(source)
        if source == self._rank:
            raise InvalidRankError("recv from self is not supported")

        def _complete(_req: Request) -> Any:
            return self.recv(source, tag)

        return Request(_complete, operation="irecv")

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
    ) -> Any:
        """Combined send and receive (the halo-exchange workhorse)."""
        req = self.isend(sendobj, dest, tag=sendtag)
        received = self.recv(source, tag=recvtag)
        req.wait()
        return received

    # ------------------------------------------------------------------
    # Collectives (built on a generic non-blocking core)
    # ------------------------------------------------------------------
    def _next_collective_key(self):
        key = (self._epoch, self._seq)
        self._seq += 1
        return key

    def _collective_cost(self, kind: str, n_ranks: int, nbytes: float) -> float:
        if kind in ("barrier",):
            return barrier_time(self._machine, n_ranks)
        if kind in ("bcast", "scatter"):
            return broadcast_time(self._machine, n_ranks, nbytes)
        if kind in ("gather", "allgather"):
            # gather modeled like a (reversed) broadcast tree plus payload
            return broadcast_time(self._machine, n_ranks, nbytes)
        return allreduce_time(self._machine, n_ranks, nbytes)

    def _start_collective(
        self,
        kind: str,
        value: Any,
        *,
        op: Optional[ReduceOp] = None,
        root: Optional[int] = None,
    ) -> Request:
        """Post this rank's contribution and return a completion request."""
        self._check_own_failure()
        key = self._next_collective_key()
        arrive = self.clock.now
        nbytes = payload_nbytes(value)
        with self._state.condition:
            slot = self._state.collective_slot(key, kind, root)
            slot.contributions[self._rank] = _copy_payload(value)
            slot.arrival_times[self._rank] = arrive
            self._maybe_finish_collective(slot, kind, op, root, nbytes)
            self._state.condition.notify_all()

        def _complete(_req: Request) -> Any:
            with self._state.condition:

                def ready() -> bool:
                    if slot.done or slot.failed:
                        return True
                    # The collective fails once some expected rank can no
                    # longer contribute in this epoch (died, returned, or
                    # advanced during recovery).  A rank that is merely
                    # lagging in wall-clock terms is waited for -- its
                    # (virtual) contribution must count no matter how the
                    # threads interleave.
                    missing = slot.missing()
                    gone = {
                        r for r in missing
                        if not self._state.may_still_operate(r, self._epoch)
                    }
                    if gone:
                        slot.failed = True
                        # Report only actual deaths among the missing
                        # ranks; a living-but-departed participant is
                        # not failed, and snapshotting the global dead
                        # set would be wall-clock dependent.  Recovery
                        # layers consult dead_ranks() for the full
                        # picture.
                        slot.failed_ranks = set(gone & self._state.dead)
                        return True
                    return False

                self._state.wait_for(
                    ready, rank=self._rank, operation=f"{kind}{key}"
                )
                if slot.failed and not slot.done:
                    self._state.log.record(
                        "collective_failed",
                        time=self.clock.now,
                        rank=self._rank,
                        collective=kind,
                        failed=sorted(slot.failed_ranks),
                    )
                    raise RankFailedError(
                        slot.failed_ranks, kind, detected_at=self.clock.now
                    )
                completion = slot.completion_time
                if root is None or self._rank == root or kind in ("bcast", "scatter"):
                    result = slot.result
                else:
                    result = None
            self.clock.wait_until(completion)
            if kind == "gather" and root is not None and self._rank != root:
                return None
            if kind == "reduce" and root is not None and self._rank != root:
                return None
            if isinstance(result, np.ndarray):
                return result.copy()
            if isinstance(result, list):
                return [_copy_payload(item) for item in result]
            return _copy_payload(result)

        return Request(_complete, operation=kind)

    def _maybe_finish_collective(
        self,
        slot,
        kind: str,
        op: Optional[ReduceOp],
        root: Optional[int],
        nbytes: float,
    ) -> None:
        """If all expected live contributions are in, compute the result.

        Caller must hold the lock.
        """
        missing = slot.missing()
        if missing:
            return
        participants = sorted(slot.contributions.keys())
        values = [slot.contributions[r] for r in participants]
        if kind in ("allreduce", "reduce"):
            reducer = op if op is not None else SUM
            slot.result = reducer.reduce(values)
        elif kind == "barrier":
            slot.result = None
        elif kind == "bcast":
            slot.result = slot.contributions.get(root)
        elif kind in ("gather", "allgather"):
            slot.result = values
        elif kind == "scatter":
            chunks = slot.contributions.get(root)
            if chunks is None or len(chunks) < len(participants):
                raise ValueError(
                    "scatter root must provide one chunk per participant"
                )
            slot.result = {
                rank: chunks[i] for i, rank in enumerate(participants)
            }
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown collective kind {kind!r}")
        arrival_max = max(slot.arrival_times.values())
        cost = self._collective_cost(kind, len(participants), nbytes)
        slot.completion_time = arrival_max + cost
        slot.done = True

    # -- blocking forms -------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all live ranks."""
        self._start_collective("barrier", None).wait()

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root``; all ranks return it."""
        self._check_rank(root)
        return self._start_collective("bcast", value if self._rank == root else None,
                                      root=root).wait()

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        """Reduce to ``root``; non-root ranks return ``None``."""
        self._check_rank(root)
        return self._start_collective("reduce", value, op=op, root=root).wait()

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Reduce and broadcast the result to every rank."""
        return self._start_collective("allreduce", value, op=op).wait()

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather per-rank values into a list at ``root``."""
        self._check_rank(root)
        return self._start_collective("gather", value, root=root).wait()

    def allgather(self, value: Any) -> List[Any]:
        """Gather per-rank values into a list available on every rank."""
        return self._start_collective("allgather", value).wait()

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter a sequence from ``root``; each rank gets one element."""
        self._check_rank(root)
        payload = list(values) if (self._rank == root and values is not None) else None
        result = self._start_collective("scatter", payload, root=root).wait()
        if isinstance(result, dict):
            return result.get(self._rank)
        return result

    # -- non-blocking forms ----------------------------------------------
    def iallreduce(self, value: Any, op: ReduceOp = SUM) -> Request:
        """MPI-3 style non-blocking allreduce (the RBSP workhorse)."""
        return self._start_collective("allreduce", value, op=op)

    def ibarrier(self) -> Request:
        """Non-blocking barrier."""
        return self._start_collective("barrier", None)

    def iallgather(self, value: Any) -> Request:
        """Non-blocking allgather."""
        return self._start_collective("allgather", value)

    def ibcast(self, value: Any, root: int = 0) -> Request:
        """Non-blocking broadcast."""
        self._check_rank(root)
        return self._start_collective(
            "bcast", value if self._rank == root else None, root=root
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def single_rank(self) -> bool:
        """True when the communicator has exactly one rank."""
        return self.size == 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Comm(rank={self._rank}, size={self.size}, epoch={self._epoch}, "
            f"t={self.clock.now:.6g})"
        )
