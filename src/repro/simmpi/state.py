"""Shared state of the simulated runtime (internal module).

One :class:`RuntimeState` instance is shared by all rank threads of a
:class:`~repro.simmpi.runtime.SimRuntime`.  It owns the single lock /
condition variable protecting mailboxes, collective slots and the
alive/dead sets.  All blocking waits go through
:meth:`RuntimeState.wait_for`, which enforces a wall-clock watchdog so
mismatched simulated programs fail fast instead of hanging the test
suite.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.simmpi.errors import SimDeadlockError
from repro.utils.logging import EventLog

__all__ = ["RuntimeState", "CollectiveSlot"]

MailboxKey = Tuple[int, int, int, int]  # (epoch, src, dest, tag)
CollectiveKey = Tuple[int, int]  # (epoch, sequence)


@dataclass
class CollectiveSlot:
    """Book-keeping for one collective operation instance."""

    kind: str
    expected: Set[int]
    root: Optional[int] = None
    contributions: Dict[int, Any] = field(default_factory=dict)
    arrival_times: Dict[int, float] = field(default_factory=dict)
    done: bool = False
    failed: bool = False
    failed_ranks: Set[int] = field(default_factory=set)
    result: Any = None
    completion_time: float = 0.0

    def missing(self) -> Set[int]:
        """Ranks expected but not yet arrived."""
        return self.expected - set(self.contributions.keys())


class RuntimeState:
    """All mutable state shared between simulated ranks."""

    def __init__(self, n_ranks: int, *, watchdog: float = 30.0):
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = int(n_ranks)
        self.watchdog = float(watchdog)
        self.condition = threading.Condition()
        self.alive: Set[int] = set(range(n_ranks))
        self.dead: Set[int] = set()
        self.mailboxes: Dict[MailboxKey, deque] = {}
        self.collectives: Dict[CollectiveKey, CollectiveSlot] = {}
        self.consumed_failures: Set[Tuple[int, float]] = set()
        self.death_times: Dict[int, float] = {}
        self.revoked_epochs: Set[int] = set()
        # Ranks whose thread has returned (this incarnation will never
        # communicate again) and the highest epoch each rank has
        # entered.  Together with the dead set these define
        # may_still_operate(), the *deterministic* liveness predicate
        # blocked operations resolve against.
        self.terminated: Set[int] = set()
        self.rank_epochs: Dict[int, int] = {}
        self.log = EventLog()

    def revoke_epoch(self, epoch: int, *, rank: int, time: float) -> None:
        """Record an ULFM-style revoke of ``epoch`` and wake all waiters.

        Revocation is an *event marker*, not an abort trigger: blocked
        operations are failed by the deterministic liveness predicate
        (:meth:`may_still_operate`) -- a rank is gone for an epoch once
        it has died, returned, or advanced to a newer epoch, all of
        which are facts of virtual program order.  Aborting on the
        revoked flag itself would race against messages and collective
        contributions the revoked epoch is still (virtually) owed:
        whether a peer's thread had wall-clock-executed a pre-failure
        send when the flag went up must never change an outcome.
        """
        with self.condition:
            if epoch not in self.revoked_epochs:
                self.revoked_epochs.add(int(epoch))
                self.log.record("epoch_revoked", time=time, rank=rank, epoch=int(epoch))
            self.condition.notify_all()

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def mark_dead(self, rank: int, time: float) -> None:
        """Record the death of a rank and wake all waiters."""
        with self.condition:
            self.alive.discard(rank)
            self.dead.add(rank)
            self.death_times[rank] = time
            self.log.record("rank_death", time=time, rank=rank)
            self.condition.notify_all()

    def mark_alive(self, rank: int, time: float) -> None:
        """Record that a (replacement) rank has joined."""
        with self.condition:
            self.dead.discard(rank)
            self.terminated.discard(rank)
            self.alive.add(rank)
            self.log.record("rank_respawn", time=time, rank=rank)
            self.condition.notify_all()

    def mark_terminated(self, rank: int) -> None:
        """Record that a rank's thread returned (no further communication)."""
        with self.condition:
            self.terminated.add(rank)
            self.condition.notify_all()

    def enter_epoch(self, rank: int, epoch: int) -> None:
        """Record that ``rank`` advanced to ``epoch``.

        Operations of older epochs blocked on this rank resolve as
        failed: the rank will never again send or contribute there.
        """
        with self.condition:
            if epoch > self.rank_epochs.get(rank, 0):
                self.rank_epochs[rank] = int(epoch)
            self.condition.notify_all()

    def is_alive(self, rank: int) -> bool:
        """Whether the rank is currently alive (no lock needed for reads)."""
        return rank in self.alive

    def may_still_operate(self, rank: int, epoch: int) -> bool:
        """Whether ``rank`` may still send/contribute in ``epoch``.

        False once the rank has died, returned from its program, or
        advanced past ``epoch``.  All three are facts of virtual
        program order, so operations that block until this predicate
        flips (or until the awaited message/contribution arrives) have
        outcomes independent of wall-clock thread interleaving -- the
        property the golden regression tests pin.  Caller must hold the
        lock (or tolerate a stale read inside a wait loop).
        """
        return (
            rank not in self.dead
            and rank not in self.terminated
            and self.rank_epochs.get(rank, 0) <= epoch
        )

    # ------------------------------------------------------------------
    # Blocking helper
    # ------------------------------------------------------------------
    def wait_for(
        self,
        predicate: Callable[[], bool],
        *,
        rank: int,
        operation: str,
    ) -> None:
        """Block until ``predicate()`` is true (caller must hold the lock).

        Raises :class:`SimDeadlockError` if the wall-clock watchdog
        expires first.  ``predicate`` is evaluated with the lock held.
        """
        deadline = _time.monotonic() + self.watchdog
        while not predicate():
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise SimDeadlockError(rank, operation, self.watchdog)
            self.condition.wait(timeout=min(remaining, 0.25))

    # ------------------------------------------------------------------
    # Mailboxes
    # ------------------------------------------------------------------
    def mailbox(self, key: MailboxKey) -> deque:
        """Return (creating if needed) the mailbox for ``key``.

        Caller must hold the lock.
        """
        box = self.mailboxes.get(key)
        if box is None:
            box = deque()
            self.mailboxes[key] = box
        return box

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def collective_slot(
        self, key: CollectiveKey, kind: str, root: Optional[int]
    ) -> CollectiveSlot:
        """Return (creating if needed) the slot for collective ``key``.

        Every rank of the communicator is expected to participate
        (MPI semantics: membership is fixed at communicator creation),
        so a collective involving a dead member fails for the survivors
        rather than silently completing without it.  Caller must hold
        the lock.
        """
        slot = self.collectives.get(key)
        if slot is None:
            slot = CollectiveSlot(
                kind=kind, expected=set(range(self.n_ranks)), root=root
            )
            self.collectives[key] = slot
        else:
            if slot.kind != kind:
                raise RuntimeError(
                    f"collective mismatch at {key}: {slot.kind} vs {kind} "
                    "(ranks called different collectives in the same order slot)"
                )
        return slot
