"""Cartesian process topologies.

The PDE substrates partition structured grids over ranks; this module
provides the rank <-> grid-coordinate mapping and neighbour lookup that
MPI's Cartesian communicators would normally supply.  It is a pure
index-arithmetic helper -- no communication happens here -- so it is
also usable outside the simulated runtime (e.g. by the analytic cost
models, which need neighbour counts).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_integer

__all__ = ["CartTopology", "balanced_dims"]


def balanced_dims(n_ranks: int, ndim: int) -> Tuple[int, ...]:
    """Factor ``n_ranks`` into ``ndim`` factors as evenly as possible.

    The equivalent of ``MPI_Dims_create``: the product of the returned
    factors equals ``n_ranks`` and the factors are as close to each
    other as possible (sorted descending).
    """
    check_integer(n_ranks, "n_ranks")
    check_integer(ndim, "ndim")
    if n_ranks <= 0 or ndim <= 0:
        raise ValueError("n_ranks and ndim must be positive")
    dims = [1] * ndim
    remaining = n_ranks
    # Greedy: repeatedly pull the largest factor <= remaining**(1/slots).
    for i in range(ndim - 1):
        slots = ndim - i
        target = int(round(remaining ** (1.0 / slots)))
        best = 1
        for candidate in range(target, 0, -1):
            if remaining % candidate == 0:
                best = candidate
                break
        # Also look upward in case rounding down missed a better factor.
        for candidate in range(target + 1, remaining + 1):
            if remaining % candidate == 0:
                if abs(candidate - target) < abs(best - target):
                    best = candidate
                break
        dims[i] = best
        remaining //= best
    dims[ndim - 1] = remaining
    return tuple(sorted(dims, reverse=True))


class CartTopology:
    """A Cartesian layout of ranks.

    Parameters
    ----------
    dims:
        Number of ranks along each dimension.
    periodic:
        Per-dimension periodicity flags (default: non-periodic).
    """

    def __init__(self, dims: Sequence[int], periodic: Optional[Sequence[bool]] = None):
        dims = tuple(int(d) for d in dims)
        if not dims or any(d <= 0 for d in dims):
            raise ValueError(f"dims must be positive integers, got {dims!r}")
        self.dims = dims
        if periodic is None:
            periodic = tuple(False for _ in dims)
        periodic = tuple(bool(p) for p in periodic)
        if len(periodic) != len(dims):
            raise ValueError("periodic must have one flag per dimension")
        self.periodic = periodic

    @classmethod
    def balanced(cls, n_ranks: int, ndim: int, periodic: Optional[Sequence[bool]] = None) -> "CartTopology":
        """Create a balanced topology for ``n_ranks`` ranks in ``ndim`` dims."""
        return cls(balanced_dims(n_ranks, ndim), periodic=periodic)

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    @property
    def size(self) -> int:
        """Total number of ranks in the topology."""
        return int(np.prod(self.dims))

    def coords(self, rank: int) -> Tuple[int, ...]:
        """Cartesian coordinates of ``rank`` (row-major ordering)."""
        check_integer(rank, "rank")
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for topology of size {self.size}")
        return tuple(int(c) for c in np.unravel_index(rank, self.dims))

    def rank(self, coords: Sequence[int]) -> int:
        """Rank at the given coordinates (honouring periodicity)."""
        coords = list(int(c) for c in coords)
        if len(coords) != self.ndim:
            raise ValueError("coords must have one entry per dimension")
        for axis, c in enumerate(coords):
            n = self.dims[axis]
            if self.periodic[axis]:
                coords[axis] = c % n
            elif not 0 <= c < n:
                raise ValueError(
                    f"coordinate {c} out of range for non-periodic axis {axis} of size {n}"
                )
        return int(np.ravel_multi_index(coords, self.dims))

    def shift(self, rank: int, axis: int, displacement: int) -> Optional[int]:
        """Neighbour of ``rank`` along ``axis`` at the given displacement.

        Returns ``None`` when the neighbour would fall off a
        non-periodic boundary (the analogue of ``MPI_PROC_NULL``).
        """
        check_integer(axis, "axis")
        if not 0 <= axis < self.ndim:
            raise ValueError(f"axis {axis} out of range")
        coords = list(self.coords(rank))
        coords[axis] += int(displacement)
        n = self.dims[axis]
        if self.periodic[axis]:
            coords[axis] %= n
        elif not 0 <= coords[axis] < n:
            return None
        return self.rank(coords)

    def neighbors(self, rank: int) -> List[int]:
        """All face neighbours of ``rank`` (excluding ``None`` boundaries)."""
        out: List[int] = []
        for axis in range(self.ndim):
            for disp in (-1, +1):
                neighbor = self.shift(rank, axis, disp)
                if neighbor is not None and neighbor != rank:
                    out.append(neighbor)
        # Deduplicate while preserving order (possible with tiny periodic dims).
        seen = set()
        unique = []
        for r in out:
            if r not in seen:
                seen.add(r)
                unique.append(r)
        return unique

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CartTopology(dims={self.dims}, periodic={self.periodic})"
