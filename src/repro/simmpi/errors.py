"""Exception hierarchy of the simulated MPI runtime.

The failure-notification design follows ULFM: a process failure is not
delivered asynchronously; instead, any communication operation that
*depends on* a failed process raises :class:`RankFailedError` in the
surviving callers.  The failed process itself experiences
:class:`ProcessDeathError`, which the runtime wrapper catches to mark
the rank dead (application code normally never sees it).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

__all__ = [
    "SimMpiError",
    "InvalidRankError",
    "ProcessDeathError",
    "RankFailedError",
    "SimDeadlockError",
]


class SimMpiError(RuntimeError):
    """Base class of all simulated-MPI errors."""


class InvalidRankError(SimMpiError, ValueError):
    """A rank argument is outside ``[0, size)`` or otherwise invalid."""


class ProcessDeathError(SimMpiError):
    """Raised *inside* a rank when its scheduled hard fault strikes.

    Application code should not catch this: the runtime wrapper uses it
    to terminate the rank's thread and mark the rank dead.  Catching it
    would amount to a process surviving its own crash.
    """

    def __init__(self, rank: int, time: float):
        super().__init__(f"rank {rank} suffered a hard fault at t={time:.6g}s")
        self.rank = rank
        self.time = time


class RankFailedError(SimMpiError):
    """Raised in survivors when communication involves failed rank(s).

    Mirrors ULFM's ``MPI_ERR_PROC_FAILED``: the operation did not
    complete, and the set of ranks known to have failed is attached so
    the recovery layer (e.g. :class:`repro.lflr.manager.LFLRManager`)
    can decide what to do.
    """

    def __init__(self, failed_ranks: Iterable[int], operation: str = "communication",
                 detected_at: Optional[float] = None):
        failed = frozenset(int(r) for r in failed_ranks)
        ranks_str = ", ".join(str(r) for r in sorted(failed))
        super().__init__(
            f"{operation} failed because rank(s) {{{ranks_str}}} are dead"
        )
        self.failed_ranks: FrozenSet[int] = failed
        self.operation = operation
        self.detected_at = detected_at

    def __reduce__(self):
        # BaseException pickles via self.args (the formatted message),
        # which does not match this constructor; rebuild from the real
        # fields so the error survives a process boundary (the shmem
        # backend ships rank outcomes through pipes).
        return (
            type(self),
            (sorted(self.failed_ranks), self.operation, self.detected_at),
        )


class SimDeadlockError(SimMpiError):
    """The runtime's wall-clock watchdog expired while a rank was waiting.

    Indicates a bug in the simulated program (mismatched sends/receives
    or collectives) rather than a modeled fault; raised so the test
    suite fails fast instead of hanging.
    """

    def __init__(self, rank: int, operation: str, waited: float):
        super().__init__(
            f"rank {rank} waited {waited:.1f}s of wall-clock time in {operation}; "
            "likely mismatched communication in the simulated program"
        )
        self.rank = rank
        self.operation = operation
        self.waited = waited

    def __reduce__(self):
        # See RankFailedError.__reduce__; type(self) keeps subclasses
        # (repro.comm.errors.CommTimeoutError) pickling as themselves.
        return (type(self), (self.rank, self.operation, self.waited))
