"""Per-rank virtual clocks.

Every simulated rank owns a :class:`VirtualClock`.  Compute intervals
and message/collective costs advance it; synchronizing operations set
it to the maximum over the participants.  All performance results of
the toolkit are read off these clocks (never the wall clock), which is
what makes the experiments deterministic and machine-parameterized.
"""

from __future__ import annotations

from repro.utils.validation import check_non_negative

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically non-decreasing virtual clock (seconds)."""

    def __init__(self, start: float = 0.0):
        check_non_negative(start, "start")
        self._now = float(start)
        self._busy = 0.0
        self._idle = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def busy_time(self) -> float:
        """Accumulated time attributed to useful work (``advance``)."""
        return self._busy

    @property
    def idle_time(self) -> float:
        """Accumulated time spent waiting for others (``wait_until``)."""
        return self._idle

    def advance(self, seconds: float) -> float:
        """Advance the clock by a busy interval and return the new time."""
        check_non_negative(seconds, "seconds")
        self._now += seconds
        self._busy += seconds
        return self._now

    def wait_until(self, time: float) -> float:
        """Advance the clock to ``time`` if that is in the future.

        The skipped interval is attributed to idle (synchronization)
        time.  Returns the new current time.
        """
        if time > self._now:
            self._idle += time - self._now
            self._now = time
        return self._now

    def copy(self) -> "VirtualClock":
        """Return an independent copy (used when respawning a rank)."""
        clone = VirtualClock(self._now)
        clone._busy = self._busy
        clone._idle = self._idle
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VirtualClock(now={self._now:.6g}, busy={self._busy:.6g}, "
            f"idle={self._idle:.6g})"
        )
