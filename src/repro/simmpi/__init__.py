"""A simulated MPI-like runtime with failure semantics and virtual time.

The programming models of the paper (RBSP, LFLR, SRP) all presuppose a
message-passing runtime richer than MPI-2: asynchronous collectives
(MPI-3), failure notification and communicator repair (ULFM), and some
notion of persistent per-process storage.  Real machines with those
features are not available here, so this subpackage provides an
**in-process simulation** that preserves the semantics the algorithms
care about:

* SPMD execution: each simulated rank runs the same Python function in
  its own thread, communicating only through the
  :class:`~repro.simmpi.comm.Comm` object it is handed.
* Virtual time: each rank owns a :class:`~repro.simmpi.clock.VirtualClock`;
  compute and communication advance it according to a
  :class:`~repro.machine.model.MachineModel`, so performance results
  are deterministic and machine-parameterized rather than wall-clock
  noise.
* Blocking and non-blocking point-to-point messages and collectives
  (barrier, broadcast, reduce, allreduce, gather, allgather, scatter,
  and their ``i``-prefixed asynchronous forms).
* Hard-fault injection: a :class:`~repro.reliability.process.FailurePlan`
  kills ranks at prescribed virtual times; surviving ranks observe the
  failure as a :class:`~repro.simmpi.errors.RankFailedError` raised
  from their next communication involving the dead rank -- the ULFM
  error-on-communication model.
* Recovery primitives: :meth:`SimRuntime.respawn` starts a replacement
  rank, and :meth:`Comm.advance_epoch` re-establishes collective
  matching after a repair, mirroring ULFM's revoke/shrink/spawn cycle.

The runtime is intended for tens of ranks (tests and examples use
4--64); large-process scaling results use the analytic models in
:mod:`repro.machine` instead.
"""

from repro.simmpi.errors import (
    SimMpiError,
    RankFailedError,
    ProcessDeathError,
    SimDeadlockError,
    InvalidRankError,
)
from repro.simmpi.clock import VirtualClock
from repro.simmpi.ops import SUM, MAX, MIN, PROD, LAND, LOR, ReduceOp
from repro.simmpi.requests import Request, CompletedRequest
from repro.simmpi.comm import Comm
from repro.simmpi.runtime import SimRuntime, RankResult, run_spmd
from repro.simmpi.topology import CartTopology

__all__ = [
    "SimMpiError",
    "RankFailedError",
    "ProcessDeathError",
    "SimDeadlockError",
    "InvalidRankError",
    "VirtualClock",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "LAND",
    "LOR",
    "ReduceOp",
    "Request",
    "CompletedRequest",
    "Comm",
    "SimRuntime",
    "RankResult",
    "run_spmd",
    "CartTopology",
]
