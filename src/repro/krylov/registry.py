"""Named solver registry: every engine configuration under a stable name.

The campaign layer treats *experiments* as first-class sweepable axes
through :mod:`repro.campaign.registry`; this module does the same for
*solvers*.  Each :class:`RegisteredSolver` names one configuration of
the :mod:`repro.krylov.engine` (strategy combination plus resilience
wiring) and exposes a uniform ``solve(operator, b, x0=None, *,
policy=..., **params)`` entry point, so drivers and campaigns resolve
solvers by name and sweep solver x policy x fault-schedule grids
without importing solver modules.

Policies are resolved per solver: every entry lists the policy names it
supports, and :meth:`RegisteredSolver.resolve_policy` maps the generic
sweep values (``"none"``, ``"guard"``, ``"skeptical"``) onto the
strongest supported concrete policy -- full Arnoldi-state skeptical
checks for GMRES, the solver-agnostic residual guard for the rest, and
selective reliability (which is always on) for FT-GMRES.

Preconditioning is declarative too: ``solve(..., precond=...)`` accepts
anything :func:`repro.precond.resolve_preconds` does -- a registry name
(``"jacobi"``), a compact spec string (``"ssor:omega=1.2"``,
``"poly:k=4"``, ``"bjacobi:bs=8"``), a dict, a
:class:`~repro.precond.PrecondSpec`, or an already-built
preconditioner object such as the fault-injecting proxy returned by
:meth:`repro.reliability.ReliabilityDomain.preconditioner`.  Specs are
built against the operator when it is matrix-like; pass the clean
matrix via ``precond_matrix=`` when the operator is wrapped (e.g. an
:class:`~repro.reliability.environment.UnreliableOperator`).  Each
entry's :attr:`RegisteredSolver.precond_param` records which underlying
keyword receives the built object (``preconditioner=`` everywhere
except FGMRES, whose variable preconditioner is its ``inner_solve=``),
and the canonical spec string is recorded in
``result.info["precond"]``.

Precision is the fourth declarative axis: ``solve(..., precision=...)``
accepts anything :func:`repro.reliability.parse_precision` does -- a
registry name (``"fp32"``), a compact spec string
(``"fp32:storage=fp16"``), a dict or a
:class:`~repro.reliability.PrecisionSpec`.  The default (``"fp64"`` or
``None``) leaves the solve bit-for-bit identical to the historical
path; any lower precision casts the operator, right-hand side and
initial guess down before the solve, records the canonical spec string
in ``result.info["precision"]`` and returns the answer cast back to
float64 so callers always receive a double-precision ``x``.

``python -m repro.campaign list`` prints this registry as the solver
table (one row per solver: name, family, supported policies, title)
next to the experiment, fault-model and preconditioner tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.krylov.result import SolveResult

__all__ = [
    "RegisteredSolver",
    "SolverRegistry",
    "default_solver_registry",
    "solver_names",
    "batch_solve",
    "BATCHABLE_SOLVERS",
]

# Generic policy axis values campaigns sweep; resolve_policy maps them
# onto each solver's concrete policies.
GENERIC_POLICIES = ("none", "guard", "skeptical")


def _guarded(solve_fn: Callable) -> Callable:
    """Wrap a policy-aware solver function with residual-guard support."""
    from repro.krylov.engine import ResidualGuardPolicy

    def run(operator, b, x0, policy: str, options: dict, params: dict) -> SolveResult:
        if policy == "none":
            return solve_fn(operator, b, x0, **params)
        guard = ResidualGuardPolicy(**options)
        return solve_fn(operator, b, x0, policy=guard, **params)

    return run


@dataclass(frozen=True)
class RegisteredSolver:
    """One named solver configuration.

    Attributes
    ----------
    name:
        Stable registry key (``"gmres"``, ``"pipelined_cg"``, ...).
    family:
        ``"gmres"`` (nonsymmetric Arnoldi), ``"cg"`` (SPD recurrence)
        or ``"outer_inner"`` (composed reliable-outer solvers).
    title:
        One-line human description.
    policies:
        Concrete resilience-policy names this solver supports; the
        first entry is the default.
    spd_only:
        Whether the solver requires a symmetric positive definite
        operator.
    distributed:
        Whether the solver runs on the simulated distributed backend.
    experiments:
        Experiment ids whose benchmarks exercise this solver (drives
        ``run_benchmarks.py --solver``).
    precond_param:
        The underlying solver keyword that receives a preconditioner
        built from ``solve(..., precond=...)`` (``"preconditioner"``
        for the fixed-preconditioner solvers, ``"inner_solve"`` for
        FGMRES, whose preconditioner is the variable inner solve).
    """

    name: str
    family: str
    title: str
    policies: Tuple[str, ...]
    _solve: Callable = field(repr=False)
    spd_only: bool = False
    distributed: bool = True
    experiments: Tuple[str, ...] = ()
    precond_param: str = "preconditioner"

    @property
    def default_policy(self) -> str:
        return self.policies[0]

    def resolve_policy(self, requested: Optional[str]) -> str:
        """Map a requested (possibly generic) policy onto a supported one.

        ``None`` selects the solver default.  Generic values degrade
        gracefully: ``"skeptical"`` prefers the full Arnoldi-state
        checks, then the residual guard, then whatever resilience the
        solver has built in; ``"guard"`` prefers the residual guard.
        Concrete names must be supported exactly.
        """
        if requested is None:
            return self.default_policy
        requested = requested.lower()
        if requested in self.policies:
            return requested
        preferences = {
            "none": ("none",),
            "guard": ("residual_guard", "none"),
            "skeptical": ("skeptical_restart", "residual_guard", "srp"),
        }
        for candidate in preferences.get(requested, ()):
            if candidate in self.policies:
                return candidate
        if requested in GENERIC_POLICIES:
            # Solver has a single built-in behaviour (e.g. FT-GMRES's
            # selective reliability); every generic request maps to it.
            return self.default_policy
        raise ValueError(
            f"solver {self.name!r} does not support policy {requested!r} "
            f"(supported: {self.policies}; generic: {GENERIC_POLICIES})"
        )

    def solve(
        self,
        operator,
        b,
        x0=None,
        *,
        policy: Optional[str] = None,
        policy_options: Optional[Mapping] = None,
        precond=None,
        precond_matrix=None,
        precision=None,
        **params,
    ) -> SolveResult:
        """Run this solver with a named resilience policy.

        ``params`` are forwarded to the underlying solver function;
        ``policy_options`` configure the policy object (e.g. the
        residual guard's ``growth_factor``).  ``precond`` is anything
        :func:`repro.precond.resolve_preconds` accepts (registry name,
        compact spec string, dict, :class:`~repro.precond.PrecondSpec`
        or a built preconditioner object); spec-shaped values are built
        against ``precond_matrix`` when given, else against the
        operator itself.  ``precision`` is anything
        :func:`repro.reliability.parse_precision` accepts; ``None`` and
        ``"fp64"`` leave the solve bit-for-bit identical to the
        historical path, while lower precisions cast the operator and
        vectors down (spec-shaped preconditioners are then built from
        the cast operator, so ``M^{-1} v`` runs at the swept precision
        too) and the answer is cast back to float64.  The effective
        policy name is recorded in ``result.info["policy_name"]``, the
        preconditioner in ``result.info["precond"]`` and -- whenever
        ``precision`` was requested -- the canonical precision string
        in ``result.info["precision"]``.
        """
        precision_label = None
        if precision is not None:
            from repro.reliability.precision import (
                cast_operator,
                cast_vector,
                parse_precision,
            )

            pspec = parse_precision(precision)
            precision_label = pspec.to_string()
            if not pspec.is_default:
                operator = cast_operator(operator, pspec)
                if precond_matrix is not None:
                    precond_matrix = cast_operator(precond_matrix, pspec)
                b = cast_vector(b, pspec)
                if x0 is not None:
                    x0 = cast_vector(x0, pspec)
        precond_label = None
        if precond is not None:
            from repro.precond import parse_precond, resolve_preconds

            built = resolve_preconds(
                precond,
                matrix=precond_matrix if precond_matrix is not None else operator,
            )
            if built is precond:
                # An already-built object passed through; its type is
                # the most descriptive stable label available.
                precond_label = type(precond).__name__
            else:
                precond_label = parse_precond(precond).to_string()
            if built is not None:
                params[self.precond_param] = built
        effective = self.resolve_policy(policy)
        result = self._solve(operator, b, x0, effective, dict(policy_options or {}), dict(params))
        result.info.setdefault("solver_name", self.name)
        result.info["policy_name"] = effective
        if precond_label is not None:
            result.info.setdefault("precond", precond_label)
        if precision_label is not None:
            result.info["precision"] = precision_label
            if isinstance(result.x, np.ndarray) and result.x.dtype != np.float64:
                result.x = np.asarray(result.x, dtype=np.float64)
        return result


class SolverRegistry:
    """Index of named solver configurations."""

    def __init__(self, solvers: Optional[List[RegisteredSolver]] = None):
        self._by_name: Dict[str, RegisteredSolver] = {}
        for solver in solvers if solvers is not None else _builtin_solvers():
            self.add(solver)

    def add(self, solver: RegisteredSolver) -> None:
        key = solver.name.lower()
        if key in self._by_name:
            raise ValueError(f"duplicate solver name {key!r}")
        self._by_name[key] = solver

    def get(self, name: str) -> RegisteredSolver:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown solver {name!r} (known: {', '.join(self.names())})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._by_name

    def __iter__(self):
        return iter(sorted(self._by_name.values(), key=lambda s: s.name))

    def __len__(self) -> int:
        return len(self._by_name)


def _builtin_solvers() -> List[RegisteredSolver]:
    # Local imports: the registry is imported by repro.krylov.__init__.
    from repro.ftgmres.outer import ft_gmres
    from repro.krylov.cg import cg
    from repro.krylov.fgmres import fgmres
    from repro.krylov.gmres import gmres
    from repro.krylov.pipelined_cg import pipelined_cg
    from repro.krylov.pipelined_gmres import pipelined_gmres
    from repro.skeptical.gmres_sdc import sdc_detecting_gmres

    def solve_sdc(operator, b, x0, policy, options, params):
        response = {"skeptical_restart": "restart", "skeptical_abort": "abort"}[policy]
        return sdc_detecting_gmres(operator, b, x0, policy=response, **options, **params)

    def solve_ft(operator, b, x0, policy, options, params):
        return ft_gmres(operator, b, x0, **options, **params)

    guard_only = ("none", "residual_guard")
    return [
        RegisteredSolver(
            name="gmres",
            family="gmres",
            title="Restarted GMRES, right preconditioning, blocking CGS2",
            policies=("none", "residual_guard", "skeptical_restart", "skeptical_abort"),
            _solve=_dispatch_gmres(gmres, sdc_detecting_gmres),
            experiments=("E1", "E3", "E6", "E8", "E9", "E10"),
        ),
        RegisteredSolver(
            name="fgmres",
            family="gmres",
            title="Flexible GMRES (variable preconditioner, reliable outer)",
            policies=guard_only,
            _solve=_guarded(fgmres),
            experiments=("E6", "E8", "E9", "E10"),
            precond_param="inner_solve",
        ),
        RegisteredSolver(
            name="pipelined_gmres",
            family="gmres",
            title="Single-reduction (latency-tolerant) GMRES",
            policies=guard_only,
            _solve=_guarded(pipelined_gmres),
            experiments=("E3", "E8", "E9"),
        ),
        RegisteredSolver(
            name="cg",
            family="cg",
            title="Preconditioned conjugate gradients",
            policies=guard_only,
            _solve=_guarded(cg),
            spd_only=True,
            experiments=("E3", "E5", "E8", "E9", "E10"),
        ),
        RegisteredSolver(
            name="pipelined_cg",
            family="cg",
            title="Pipelined (overlapped single-reduction) CG",
            policies=guard_only,
            _solve=_guarded(pipelined_cg),
            spd_only=True,
            experiments=("E3", "E8", "E9"),
        ),
        RegisteredSolver(
            name="sdc_gmres",
            family="gmres",
            title="SDC-detecting (skeptical) GMRES",
            policies=("skeptical_restart", "skeptical_abort"),
            _solve=solve_sdc,
            distributed=False,
            experiments=("E1", "E8"),
        ),
        RegisteredSolver(
            name="ft_gmres",
            family="outer_inner",
            title="Fault-tolerant GMRES (selective reliability, unreliable inner)",
            policies=("srp",),
            _solve=solve_ft,
            distributed=False,
            experiments=("E6", "E8"),
        ),
    ]


def _dispatch_gmres(gmres_fn, sdc_fn) -> Callable:
    """GMRES dispatch: plain / guarded / full skeptical by policy name."""
    from repro.krylov.engine import ResidualGuardPolicy

    def run(operator, b, x0, policy, options, params):
        if policy == "none":
            return gmres_fn(operator, b, x0, **params)
        if policy == "residual_guard":
            return gmres_fn(operator, b, x0, policy=ResidualGuardPolicy(**options), **params)
        response = {"skeptical_restart": "restart", "skeptical_abort": "abort"}[policy]
        params.pop("gram_schmidt", None)  # the skeptical solver pins CGS2
        # Uniform solve() contract: a gmres iteration_hook becomes the
        # skeptical solver's pre-check hook (same run-before-checks slot).
        hook = params.pop("iteration_hook", None)
        if hook is not None and "fault_hook" not in params:
            params["fault_hook"] = hook
        return sdc_fn(operator, b, x0, policy=response, **options, **params)

    return run


#: Solvers with a batched lockstep engine path; everything else falls
#: back to per-lane sequential solves inside :func:`batch_solve`.
BATCHABLE_SOLVERS = ("gmres", "cg", "sdc_gmres")

#: Concrete policy names the lockstep lanes support.  ``skeptical_abort``
#: is deliberately absent: aborting one lane must not kill its siblings,
#: so those solves always run sequentially.
_BATCHABLE_POLICIES = ("none", "residual_guard", "skeptical_restart")

# SdcLaneSpec fields that may arrive via solver params / policy options.
_SDC_LANE_FIELDS = (
    "tol",
    "atol",
    "restart",
    "maxiter",
    "preconditioner",
    "check_period",
    "orthogonality_period",
    "residual_check_period",
    "hessenberg_safety",
    "orthogonality_tol",
    "max_restarts_on_detection",
    "operator_norm",
    "fault_hook",
)


def _is_batchable(entry: RegisteredSolver, effective: str, merged: Mapping) -> bool:
    """Whether one lane's (solver, policy, params) has a lockstep path."""
    if entry.name not in BATCHABLE_SOLVERS:
        return False
    if effective not in _BATCHABLE_POLICIES:
        return False
    if entry.family == "gmres" and effective in ("none", "residual_guard"):
        from repro.krylov.engine.batch import BATCH_GRAM_SCHMIDT

        if merged.get("gram_schmidt", "cgs2") not in BATCH_GRAM_SCHMIDT:
            return False
    return True


def _default_precision(value) -> bool:
    """Whether a lane's precision request keeps the float64 fast path."""
    if value is None:
        return True
    from repro.reliability.precision import parse_precision

    return parse_precision(value).is_default


def _precond_label(precond) -> str:
    """The ``info["precond"]`` label, mirroring ``RegisteredSolver.solve``."""
    if hasattr(precond, "apply") or callable(precond):
        return type(precond).__name__
    from repro.precond import parse_precond

    return parse_precond(precond).to_string()


def batch_solve(
    solver: str,
    operator,
    bs,
    x0s=None,
    *,
    policy: Optional[str] = None,
    policy_options: Optional[Mapping] = None,
    precond=None,
    precond_matrix=None,
    precision=None,
    lane_params: Optional[List[Mapping]] = None,
    operators: Optional[List] = None,
    registry: Optional[SolverRegistry] = None,
    **params,
) -> List[SolveResult]:
    """Solve ``S`` independent right-hand sides of one named solver.

    The batched counterpart of :meth:`RegisteredSolver.solve`: the same
    declarative surface (named solver, named policy, ``policy_options``,
    declarative ``precond``), applied to a list of right-hand sides
    ``bs`` (optionally per-lane ``x0s`` and per-lane parameter
    overrides ``lane_params``, e.g. a per-scenario ``iteration_hook``).
    Results are bit-identical to ``S`` separate ``solve`` calls.

    Lanes whose configuration has a lockstep path (``gmres``/``cg``/
    ``sdc_gmres`` with ``none``/``residual_guard``/``skeptical_restart``
    and a batchable Gram-Schmidt kernel) advance together through
    :func:`repro.krylov.engine.batch.run_arnoldi_batch` /
    :func:`~repro.krylov.engine.batch.run_cg_batch`; anything else
    (``skeptical_abort``, ``gram_schmidt="modified"``, the pipelined /
    flexible / distributed solvers) falls back to per-lane sequential
    solves, so callers never need to special-case batchability.

    ``precision`` (batch-wide, or per lane via a ``"precision"`` key in
    ``lane_params``) is the same declarative axis as
    :meth:`RegisteredSolver.solve`.  The lockstep engine is pinned to
    the bit-exact float64 contract, so any lane requesting a
    non-default precision routes the whole batch through the
    sequential fallback -- results stay identical to ``S`` separate
    ``solve`` calls either way.  (On current NumPy the stacked fp32
    kernels do match the per-lane forms bit for bit, so lifting this
    restriction is measured headroom, not a correctness risk.)

    ``operators`` optionally gives each lane its own operator (e.g. a
    per-scenario fault-injecting wrapper); the shared ``operator`` then
    only anchors the batch (and builds spec-shaped preconditioners when
    no ``precond_matrix`` is given).  Lanes with private operators still
    advance in lockstep, each applying its own operator per step.
    """
    entry = (registry or default_solver_registry()).get(solver)
    effective = entry.resolve_policy(policy)
    options = dict(policy_options or {})
    bs = list(bs)
    n_lanes = len(bs)
    if x0s is None:
        x0s = [None] * n_lanes
    elif len(x0s) != n_lanes:
        raise ValueError("x0s must match the number of right-hand sides")
    if lane_params is None:
        lane_params = [{}] * n_lanes
    elif len(lane_params) != n_lanes:
        raise ValueError("lane_params must match the number of right-hand sides")
    if operators is None:
        lane_operators = [None] * n_lanes
    elif len(operators) != n_lanes:
        raise ValueError("operators must match the number of right-hand sides")
    else:
        lane_operators = list(operators)

    merged_all = [dict(params, **dict(extra)) for extra in lane_params]
    lane_precisions = [merged.pop("precision", precision) for merged in merged_all]
    if not (
        all(_default_precision(value) for value in lane_precisions)
        and all(_is_batchable(entry, effective, merged) for merged in merged_all)
    ):
        # Sequential fallback: exactly S independent solve() calls.
        return [
            entry.solve(
                lane_op if lane_op is not None else operator,
                b,
                x0,
                policy=effective,
                policy_options=options,
                precond=merged.pop("precond", precond),
                precond_matrix=precond_matrix,
                precision=lane_precision,
                **merged,
            )
            for b, x0, merged, lane_op, lane_precision in zip(
                bs, x0s, merged_all, lane_operators, lane_precisions
            )
        ]

    from repro.krylov.engine import ResidualGuardPolicy
    from repro.krylov.engine.batch import (
        CgLaneSpec,
        GmresLaneSpec,
        SdcLaneSpec,
        run_arnoldi_batch,
        run_cg_batch,
    )
    from repro.precond import resolve_preconds

    precond_label = None
    specs = []
    for b, x0, merged, lane_op in zip(bs, x0s, merged_all, lane_operators):
        # Preconditioners are resolved per lane, exactly as S separate
        # solve() calls would build them (stateful injecting proxies
        # must not be shared across lanes).
        lane_precond = merged.pop("precond", precond)
        built = None
        if lane_precond is not None:
            built = resolve_preconds(
                lane_precond,
                matrix=precond_matrix if precond_matrix is not None else operator,
            )
            if precond_label is None:
                precond_label = _precond_label(lane_precond)
        if built is not None:
            merged["preconditioner"] = built
        if entry.family == "cg":
            guard = ResidualGuardPolicy(**options) if effective == "residual_guard" else None
            specs.append(CgLaneSpec(b=b, x0=x0, policy=guard, operator=lane_op, **merged))
        elif effective == "skeptical_restart":
            # Mirror _dispatch_gmres: CGS2 is pinned, and a generic
            # iteration hook becomes the pre-check fault hook.
            merged.pop("gram_schmidt", None)
            hook = merged.pop("iteration_hook", None)
            if hook is not None and "fault_hook" not in merged:
                merged["fault_hook"] = hook
            merged.update(options)
            unknown = set(merged) - set(_SDC_LANE_FIELDS)
            if unknown:
                raise TypeError(f"unsupported skeptical solver options: {sorted(unknown)}")
            specs.append(SdcLaneSpec(b=b, x0=x0, operator=lane_op, **merged))
        else:
            guard = ResidualGuardPolicy(**options) if effective == "residual_guard" else None
            specs.append(GmresLaneSpec(b=b, x0=x0, policy=guard, operator=lane_op, **merged))

    if entry.family == "cg":
        results = run_cg_batch(operator, specs)
    else:
        results = run_arnoldi_batch(operator, specs)
    for result, lane_precision in zip(results, lane_precisions):
        result.info.setdefault("solver_name", entry.name)
        result.info["policy_name"] = effective
        if precond_label is not None:
            result.info.setdefault("precond", precond_label)
        if lane_precision is not None:
            # Lanes only reach the lockstep engine with the default
            # precision; mirror the label solve() would have recorded.
            from repro.reliability.precision import parse_precision

            result.info["precision"] = parse_precision(lane_precision).to_string()
    return results


_DEFAULT: Optional[SolverRegistry] = None


def default_solver_registry() -> SolverRegistry:
    """The process-wide registry of named solver configurations."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SolverRegistry()
    return _DEFAULT


def solver_names() -> List[str]:
    """Sorted names of all registered solvers."""
    return default_solver_registry().names()
