"""Pipelined conjugate gradients (Ghysels & Vanroose).

Standard CG performs two *blocking* global reductions per iteration,
serialized with the matrix-vector product.  The pipelined variant
restructures the recurrences so that the single fused reduction of an
iteration can be **overlapped with the next matrix-vector product**:
the reduction is started as ONE ``iallreduce`` carrying both
``gamma = (r, u)`` and ``delta = (w, u)`` (via
:func:`repro.krylov.ops.fused_dots`), the operator application
``q = A w`` proceeds while the reduction is in flight, and only then is
the reduction waited on.  On the simulated runtime this uses the
MPI-3-style non-blocking collectives of :mod:`repro.simmpi`, i.e. the
RBSP programming model of paper §II-B; sequentially it degenerates to
plain arithmetic with identical convergence behaviour (up to rounding).

The price is one extra vector recurrence (and slightly worse rounding
behaviour), which is the trade-off the latency-tolerance literature
accepts.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.result import SolveResult
from repro.utils.timing import KernelCounters

__all__ = ["pipelined_cg"]


def pipelined_cg(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    maxiter: int = 1000,
    preconditioner=None,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve the SPD system ``A x = b`` with pipelined (overlapped) CG.

    Parameters and return value match :func:`repro.krylov.cg.cg`;
    ``info["overlapped_reductions"]`` counts how many reductions were
    overlapped with a matrix-vector product.
    """
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    kernels = KernelCounters()
    b_norm = ops.norm(b)
    target = max(tol * b_norm, atol)
    if target == 0.0:
        target = tol

    x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
    t0 = kernels.tick()
    r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
    kernels.charge("matvec", t0)
    t0 = kernels.tick()
    u = ops.apply_preconditioner(preconditioner, r)
    kernels.charge("preconditioner", t0)
    t0 = kernels.tick()
    w = ops.matvec(operator, u)
    kernels.charge("matvec", t0)

    residual = ops.norm(r)
    residual_norms: List[float] = [residual]
    converged = residual <= target
    breakdown = False
    iteration = 0
    overlapped = 0

    gamma_old = 0.0
    alpha_old = 0.0
    z = None
    q = None
    s = None
    p = None

    while not converged and not breakdown and iteration < maxiter:
        # Start the fused reduction for gamma = (r, u) and delta = (w, u):
        # one non-blocking allreduce carrying both partial sums.
        fused = ops.fused_dots(((r, u), (w, u)))
        # Overlap: apply the preconditioner and the operator while the
        # reduction is in flight.
        t0 = kernels.tick()
        m_w = ops.apply_preconditioner(preconditioner, w)
        kernels.charge("preconditioner", t0)
        t0 = kernels.tick()
        n_w = ops.matvec(operator, m_w)
        kernels.charge("matvec", t0)
        overlapped += 1
        gamma, delta = (float(v) for v in fused.wait())

        if not np.isfinite(gamma) or not np.isfinite(delta):
            breakdown = True
            break

        if iteration > 0:
            if gamma_old == 0.0 or alpha_old == 0.0:
                breakdown = True
                break
            beta = gamma / gamma_old
            denom = delta - beta * gamma / alpha_old
        else:
            beta = 0.0
            denom = delta
        if denom == 0.0 or not np.isfinite(denom):
            breakdown = True
            break
        alpha = gamma / denom

        if iteration == 0:
            z = ops.copy_vector(n_w)
            q = ops.copy_vector(m_w)
            s = ops.copy_vector(w)
            p = ops.copy_vector(u)
        else:
            z = ops.axpby(1.0, n_w, float(beta), z)
            q = ops.axpby(1.0, m_w, float(beta), q)
            s = ops.axpby(1.0, w, float(beta), s)
            p = ops.axpby(1.0, u, float(beta), p)

        x = ops.axpby(1.0, x, float(alpha), p)
        r = ops.axpby(1.0, r, -float(alpha), s)
        u = ops.axpby(1.0, u, -float(alpha), q)
        w = ops.axpby(1.0, w, -float(alpha), z)

        gamma_old = gamma
        alpha_old = alpha
        iteration += 1
        residual = ops.norm(r)
        residual_norms.append(residual)
        if iteration_hook is not None:
            iteration_hook(iteration, residual)
        if not np.isfinite(residual):
            breakdown = True
            break
        if residual <= target:
            converged = True

    return SolveResult(
        x=x,
        converged=converged,
        iterations=iteration,
        residual_norms=residual_norms,
        breakdown=breakdown,
        info={
            "target": target,
            "overlapped_reductions": overlapped,
            "kernels": kernels.as_dict(),
        },
    )
