"""Pipelined conjugate gradients (Ghysels & Vanroose).

Standard CG performs two *blocking* global reductions per iteration,
serialized with the matrix-vector product.  The pipelined variant
restructures the recurrences so that the single fused reduction of an
iteration can be **overlapped with the next matrix-vector product**:
the reduction is started as ONE ``iallreduce`` carrying both
``gamma = (r, u)`` and ``delta = (w, u)`` (via
:func:`repro.krylov.ops.fused_dots`), the operator application
``q = A w`` proceeds while the reduction is in flight, and only then is
the reduction waited on.  On the simulated runtime this uses the
MPI-3-style non-blocking collectives of :mod:`repro.simmpi`, i.e. the
RBSP programming model of paper §II-B; sequentially it degenerates to
plain arithmetic with identical convergence behaviour (up to rounding).

The price is one extra vector recurrence (and slightly worse rounding
behaviour), which is the trade-off the latency-tolerance literature
accepts.  Thin wrapper over the :mod:`repro.krylov.engine` running
:class:`~repro.krylov.engine.cg.PipelinedCgScheme`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.krylov.engine import ConvergenceTest, PipelinedCgScheme, SolverEngine
from repro.krylov.engine.resilience import compose_policy
from repro.krylov.result import SolveResult

__all__ = ["pipelined_cg"]


def pipelined_cg(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    maxiter: int = 1000,
    preconditioner=None,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
    policy=None,
) -> SolveResult:
    """Solve the SPD system ``A x = b`` with pipelined (overlapped) CG.

    Parameters and return value match :func:`repro.krylov.cg.cg`;
    ``info["overlapped_reductions"]`` counts how many reductions were
    overlapped with a matrix-vector product.
    """
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    engine = SolverEngine(
        operator,
        PipelinedCgScheme(preconditioner, maxiter=maxiter),
        convergence=ConvergenceTest(tol=tol, atol=atol),
        policy=compose_policy(policy, iteration_hook, "scalar"),
    )
    return engine.solve(b, x0)
