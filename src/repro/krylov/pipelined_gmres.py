"""Latency-reduced (single-reduction) GMRES.

Classic GMRES with modified Gram-Schmidt performs ``j + 2`` *separate,
serialized* global reductions in iteration ``j`` (one per projection
coefficient plus the norm).  The latency-tolerant reformulation cited
by the paper (p(l)-GMRES of Ghysels et al.) attacks exactly this: use
classical Gram-Schmidt so all projection coefficients come from **one**
fused reduction, obtain the new basis vector's norm from the same
reduction via the Pythagorean identity
``|w_orth|^2 = |w|^2 - sum_i c_i^2``, and post that reduction as a
non-blocking collective so it can be overlapped with local work.

This configuration pairs the shared restarted-Arnoldi engine core with
:class:`~repro.krylov.engine.orthogonalize.PipelinedOrthogonalizer`:
the fused wave is ONE ``iallreduce`` of the stacked ``[V_jᵀ w, |w|²]``
payload (sequentially, one gemv), and the local orthogonalization
update is a single ``w -= V_j h`` gemv.  The *depth-l* pipelining of
p(l)-GMRES -- overlapping the reduction with the next matrix--vector
product across iterations -- changes only the timing, not the
numerics; its timing effect is modeled analytically in experiment E3
(:mod:`repro.rbsp.variability`), while this implementation demonstrates
the reduced synchronization count (1 fused reduction per iteration
versus ``j + 2``) on the simulated runtime.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.krylov.engine import (
    ArnoldiScheme,
    ConvergenceTest,
    PipelinedOrthogonalizer,
    RightPreconditioner,
    SolverEngine,
)
from repro.krylov.engine.resilience import compose_policy
from repro.krylov.result import SolveResult

__all__ = ["pipelined_gmres"]


def pipelined_gmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 1000,
    preconditioner=None,
    reorthogonalize: bool = True,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
    policy=None,
) -> SolveResult:
    """Solve ``A x = b`` with single-reduction (latency-reduced) GMRES.

    Parameters match :func:`repro.krylov.gmres.gmres`;
    ``reorthogonalize`` adds a second (also fused) orthogonalization
    pass, which restores most of MGS's robustness at the cost of a
    second reduction wave -- together the two passes are exactly the
    CGS2 kernel of the baseline solver, split so each wave can be
    posted non-blocking.

    Returns
    -------
    SolveResult
        ``info["reduction_waves"]`` counts fused reductions, for
        comparison against the ``sum_j (j + 2)`` serialized reductions
        classic MGS-GMRES would have required
        (``info["mgs_equivalent_reductions"]``); ``info["kernels"]``
        carries per-kernel counts and seconds.
    """
    if restart <= 0 or maxiter <= 0:
        raise ValueError("restart and maxiter must be positive")
    engine = SolverEngine(
        operator,
        ArnoldiScheme(
            PipelinedOrthogonalizer(reorthogonalize),
            RightPreconditioner(preconditioner),
            restart=restart,
            maxiter=maxiter,
        ),
        convergence=ConvergenceTest(tol=tol, atol=atol),
        policy=compose_policy(policy, iteration_hook, "scalar"),
    )
    return engine.solve(b, x0)
