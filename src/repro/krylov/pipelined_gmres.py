"""Latency-reduced (single-reduction) GMRES.

Classic GMRES with modified Gram-Schmidt performs ``j + 2`` *separate,
serialized* global reductions in iteration ``j`` (one per projection
coefficient plus the norm).  The latency-tolerant reformulation cited
by the paper (p(l)-GMRES of Ghysels et al.) attacks exactly this: use
classical Gram-Schmidt so all projection coefficients come from **one**
fused reduction, obtain the new basis vector's norm from the same
reduction via the Pythagorean identity
``|w_orth|^2 = |w|^2 - sum_i c_i^2``, and post that reduction as a
non-blocking collective so it can be overlapped with local work.

This module implements that single-reduction variant (with optional
re-orthogonalization for robustness) on the blocked
:class:`~repro.krylov.ops.KrylovBasis` kernels: the fused wave is ONE
``iallreduce`` of the stacked ``[V_jᵀ w, |w|²]`` payload (sequentially,
one gemv), and the local orthogonalization update is a single
``w -= V_j h`` gemv.  The *depth-l* pipelining of p(l)-GMRES --
overlapping the reduction with the next matrix--vector product across
iterations -- changes only the timing, not the numerics; its timing
effect is modeled analytically in experiment E3
(:mod:`repro.rbsp.variability`), while this implementation demonstrates
the reduced synchronization count (1 fused reduction per iteration
versus ``j + 2``) on the simulated runtime.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.result import SolveResult
from repro.linalg.blas import back_substitution, rotate_hessenberg_column
from repro.utils.timing import KernelCounters

__all__ = ["pipelined_gmres"]


def pipelined_gmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 1000,
    preconditioner=None,
    reorthogonalize: bool = True,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve ``A x = b`` with single-reduction (latency-reduced) GMRES.

    Parameters match :func:`repro.krylov.gmres.gmres`;
    ``reorthogonalize`` adds a second (also fused) orthogonalization
    pass, which restores most of MGS's robustness at the cost of a
    second reduction wave -- together the two passes are exactly the
    CGS2 kernel of the baseline solver, split so each wave can be
    posted non-blocking.

    Returns
    -------
    SolveResult
        ``info["reduction_waves"]`` counts fused reductions, for
        comparison against the ``sum_j (j + 2)`` serialized reductions
        classic MGS-GMRES would have required
        (``info["mgs_equivalent_reductions"]``); ``info["kernels"]``
        carries per-kernel counts and seconds.
    """
    if restart <= 0 or maxiter <= 0:
        raise ValueError("restart and maxiter must be positive")
    kernels = KernelCounters()
    b_norm = ops.norm(b)
    target = max(tol * b_norm, atol)
    if target == 0.0:
        target = tol

    x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
    residual_norms: List[float] = []
    total_iteration = 0
    reduction_waves = 0
    mgs_equivalent = 0
    converged = False
    breakdown = False
    outer = 0

    while total_iteration < maxiter and not converged and not breakdown:
        t0 = kernels.tick()
        r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
        kernels.charge("matvec", t0)
        beta = ops.norm(r)
        if not residual_norms:
            residual_norms.append(beta)
        if beta <= target:
            converged = True
            break
        m = min(restart, maxiter - total_iteration)
        basis = ops.allocate_basis(b, m + 1)
        basis.append(r, scale=1.0 / beta)
        hessenberg = np.zeros((m + 1, m), dtype=np.float64)
        givens: List[tuple] = []
        g = [0.0] * (m + 1)
        g[0] = beta
        inner_used = 0
        cycle_residual = beta

        for j in range(m):
            if preconditioner is None:
                z = basis.column(j)
            else:
                t0 = kernels.tick()
                z = ops.apply_preconditioner(preconditioner, basis.column(j))
                kernels.charge("preconditioner", t0)
            t0 = kernels.tick()
            w = ops.matvec(operator, z)
            kernels.charge("matvec", t0)
            # One fused, non-blocking reduction wave for all coefficients
            # and the norm.
            t0 = kernels.tick()
            projection = basis.fused_projection(w, k=j + 1)
            reduction_waves += 1
            mgs_equivalent += j + 2
            payload = projection.wait()
            coefficients = np.asarray(payload[: j + 1], dtype=np.float64)
            w_norm_sq = float(payload[j + 1])
            # Form the orthogonalized vector locally (one gemv).
            w = basis.block_axpy(coefficients, w, k=j + 1)
            if reorthogonalize:
                projection2 = basis.fused_projection(w, k=j + 1)
                reduction_waves += 1
                payload2 = projection2.wait()
                corrections = np.asarray(payload2[: j + 1], dtype=np.float64)
                w = basis.block_axpy(corrections, w, k=j + 1)
                coefficients = coefficients + corrections
                h_next = ops.norm(w)
            else:
                # Pythagorean identity: avoids a second reduction, at the
                # price of squared-cancellation sensitivity.
                h_next_sq = w_norm_sq - float(coefficients @ coefficients)
                h_next = math.sqrt(max(h_next_sq, 0.0))
            happy = h_next <= 1e-12 * max(math.sqrt(max(w_norm_sq, 0.0)), 1.0)
            if not happy:
                basis.append(w, scale=1.0 / h_next)
            else:
                basis.append_zero()
            kernels.charge("orthogonalization", t0)

            col = coefficients.tolist()
            col.append(h_next)
            cycle_residual = rotate_hessenberg_column(col, g, givens, j)
            hessenberg[: j + 2, j] = col
            inner_used = j + 1
            total_iteration += 1
            residual_norms.append(cycle_residual)
            if iteration_hook is not None:
                iteration_hook(total_iteration, cycle_residual)
            if not math.isfinite(cycle_residual):
                breakdown = True
                break
            if cycle_residual <= target or happy or total_iteration >= maxiter:
                break

        if inner_used > 0 and not breakdown:
            try:
                y = back_substitution(hessenberg[:inner_used, :inner_used], g[:inner_used])
            except np.linalg.LinAlgError:
                breakdown = True
                y = None
            if y is not None and np.all(np.isfinite(y)):
                t0 = kernels.tick()
                update = basis.lincomb(y, k=inner_used)
                kernels.charge("basis_update", t0)
                if preconditioner is not None:
                    t0 = kernels.tick()
                    update = ops.apply_preconditioner(preconditioner, update)
                    kernels.charge("preconditioner", t0)
                x = ops.axpby(1.0, x, 1.0, update)
            else:
                breakdown = True

        t0 = kernels.tick()
        true_residual = ops.norm(ops.axpby(1.0, b, -1.0, ops.matvec(operator, x)))
        kernels.charge("matvec", t0)
        if residual_norms:
            residual_norms[-1] = true_residual
        if true_residual <= target:
            converged = True
        outer += 1

    return SolveResult(
        x=x,
        converged=converged,
        iterations=total_iteration,
        residual_norms=residual_norms,
        breakdown=breakdown,
        info={
            "restarts": outer,
            "target": target,
            "reduction_waves": reduction_waves,
            "mgs_equivalent_reductions": mgs_equivalent,
            "kernels": kernels.as_dict(),
        },
    )
