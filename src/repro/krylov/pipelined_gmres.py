"""Latency-reduced (single-reduction) GMRES.

Classic GMRES with modified Gram-Schmidt performs ``j + 2`` *separate,
serialized* global reductions in iteration ``j`` (one per projection
coefficient plus the norm).  The latency-tolerant reformulation cited
by the paper (p(l)-GMRES of Ghysels et al.) attacks exactly this: use
classical Gram-Schmidt so all projection coefficients come from **one**
fused reduction, obtain the new basis vector's norm from the same
reduction via the Pythagorean identity
``|w_orth|^2 = |w|^2 - sum_i c_i^2``, and post that reduction as a
non-blocking collective so it can be overlapped with local work.

This module implements that single-reduction variant (with optional
re-orthogonalization for robustness).  The *depth-l* pipelining of
p(l)-GMRES -- overlapping the reduction with the next matrix--vector
product across iterations -- changes only the timing, not the
numerics; its timing effect is modeled analytically in experiment E3
(:mod:`repro.rbsp.variability`), while this implementation demonstrates
the reduced synchronization count (1 fused reduction per iteration
versus ``j + 2``) on the simulated runtime.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.result import SolveResult
from repro.linalg.blas import apply_givens, back_substitution, givens_rotation

__all__ = ["pipelined_gmres"]


def _fused_projection(basis: List[Any], w: Any) -> tuple:
    """Start the fused reduction for CGS coefficients and the norm.

    Returns a list of requests (one per coefficient plus one for
    ``|w|^2``); on distributed vectors each request is a non-blocking
    allreduce, so all of them are in flight simultaneously -- one
    synchronization "wave" instead of a serialized sequence.
    """
    coefficient_requests = [ops.idot(v, w) for v in basis]
    norm_request = ops.idot(w, w)
    return coefficient_requests, norm_request


def pipelined_gmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 1000,
    preconditioner=None,
    reorthogonalize: bool = True,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve ``A x = b`` with single-reduction (latency-reduced) GMRES.

    Parameters match :func:`repro.krylov.gmres.gmres`;
    ``reorthogonalize`` adds a second (also fused) orthogonalization
    pass, which restores most of MGS's robustness at the cost of a
    second reduction wave.

    Returns
    -------
    SolveResult
        ``info["reduction_waves"]`` counts fused reductions, for
        comparison against the ``sum_j (j + 2)`` serialized reductions
        classic MGS-GMRES would have required
        (``info["mgs_equivalent_reductions"]``).
    """
    if restart <= 0 or maxiter <= 0:
        raise ValueError("restart and maxiter must be positive")
    b_norm = ops.norm(b)
    target = max(tol * b_norm, atol)
    if target == 0.0:
        target = tol

    x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
    residual_norms: List[float] = []
    total_iteration = 0
    reduction_waves = 0
    mgs_equivalent = 0
    converged = False
    breakdown = False
    outer = 0

    while total_iteration < maxiter and not converged and not breakdown:
        r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
        beta = ops.norm(r)
        if not residual_norms:
            residual_norms.append(beta)
        if beta <= target:
            converged = True
            break
        m = min(restart, maxiter - total_iteration)
        basis: List[Any] = [ops.scale(1.0 / beta, r)]
        hessenberg = np.zeros((m + 1, m), dtype=np.float64)
        givens: List[tuple] = []
        g = np.zeros(m + 1, dtype=np.float64)
        g[0] = beta
        inner_used = 0
        cycle_residual = beta

        for j in range(m):
            z = ops.apply_preconditioner(preconditioner, basis[j])
            w = ops.matvec(operator, z)
            # One fused, non-blocking reduction wave for all coefficients
            # and the norm.
            coeff_reqs, norm_req = _fused_projection(basis[: j + 1], w)
            reduction_waves += 1
            mgs_equivalent += j + 2
            coefficients = np.array([req.wait() for req in coeff_reqs])
            w_norm_sq = norm_req.wait()
            # Form the orthogonalized vector locally.
            for i in range(j + 1):
                w = ops.axpby(1.0, w, -float(coefficients[i]), basis[i])
            hessenberg[: j + 1, j] = coefficients
            if reorthogonalize:
                coeff_reqs2, _ = _fused_projection(basis[: j + 1], w)
                reduction_waves += 1
                corrections = np.array([req.wait() for req in coeff_reqs2])
                for i in range(j + 1):
                    w = ops.axpby(1.0, w, -float(corrections[i]), basis[i])
                hessenberg[: j + 1, j] += corrections
                h_next = ops.norm(w)
            else:
                # Pythagorean identity: avoids a second reduction, at the
                # price of squared-cancellation sensitivity.
                h_next_sq = w_norm_sq - float(coefficients @ coefficients)
                h_next = float(np.sqrt(max(h_next_sq, 0.0)))
            hessenberg[j + 1, j] = h_next
            happy = h_next <= 1e-12 * max(np.sqrt(max(w_norm_sq, 0.0)), 1.0)
            basis.append(
                ops.scale(1.0 / h_next, w) if not happy else ops.zeros_like(w)
            )

            for i, (c, s) in enumerate(givens):
                hessenberg[i, j], hessenberg[i + 1, j] = apply_givens(
                    c, s, hessenberg[i, j], hessenberg[i + 1, j]
                )
            c, s = givens_rotation(hessenberg[j, j], hessenberg[j + 1, j])
            givens.append((c, s))
            hessenberg[j, j], hessenberg[j + 1, j] = apply_givens(
                c, s, hessenberg[j, j], hessenberg[j + 1, j]
            )
            g[j], g[j + 1] = apply_givens(c, s, g[j], g[j + 1])
            cycle_residual = abs(g[j + 1])
            inner_used = j + 1
            total_iteration += 1
            residual_norms.append(cycle_residual)
            if iteration_hook is not None:
                iteration_hook(total_iteration, cycle_residual)
            if not np.isfinite(cycle_residual):
                breakdown = True
                break
            if cycle_residual <= target or happy or total_iteration >= maxiter:
                break

        if inner_used > 0 and not breakdown:
            try:
                y = back_substitution(hessenberg[:inner_used, :inner_used], g[:inner_used])
            except np.linalg.LinAlgError:
                breakdown = True
                y = None
            if y is not None and np.all(np.isfinite(y)):
                update = ops.zeros_like(x)
                for i in range(inner_used):
                    update = ops.axpby(1.0, update, float(y[i]), basis[i])
                update = ops.apply_preconditioner(preconditioner, update)
                x = ops.axpby(1.0, x, 1.0, update)
            else:
                breakdown = True

        true_residual = ops.norm(ops.axpby(1.0, b, -1.0, ops.matvec(operator, x)))
        if residual_norms:
            residual_norms[-1] = true_residual
        if true_residual <= target:
            converged = True
        outer += 1

    return SolveResult(
        x=x,
        converged=converged,
        iterations=total_iteration,
        residual_norms=residual_norms,
        breakdown=breakdown,
        info={
            "restarts": outer,
            "target": target,
            "reduction_waves": reduction_waves,
            "mgs_equivalent_reductions": mgs_equivalent,
        },
    )
