"""Krylov subspace solvers.

One engine, many configurations: the restarted-Arnoldi and CG
machinery lives in :mod:`repro.krylov.engine` (core loop plus
orthogonalization / preconditioning / convergence / resilience
strategy objects), the public solver functions below are thin named
configurations of it, and :mod:`repro.krylov.registry` exposes every
configuration to the campaign layer as a sweepable axis.

* :mod:`repro.krylov.result` -- the :class:`SolveResult` returned by
  every solver.
* :mod:`repro.krylov.ops` -- a small dispatch layer so the same solver
  source runs on plain NumPy vectors and on
  :class:`~repro.linalg.distributed.DistributedVector` objects over the
  simulated runtime, plus the :class:`~repro.krylov.ops.KrylovBasis`
  block store whose fused BLAS-2 kernels (CGS2 orthogonalization,
  single-gemv restart correction) all Arnoldi-type solvers share.
* :mod:`repro.krylov.engine` -- the unified solver engine and its
  strategy objects (see ARCHITECTURE.md).
* :mod:`repro.krylov.registry` -- named solver configurations for
  campaigns (solver x resilience-policy sweeps).
* :mod:`repro.krylov.arnoldi` -- the standalone Arnoldi process (kept
  for the construction tests and as the textbook reference).
* :mod:`repro.krylov.gmres` -- restarted GMRES with right
  preconditioning and iteration hooks.
* :mod:`repro.krylov.fgmres` -- flexible GMRES (the reliable *outer*
  solver of FT-GMRES).
* :mod:`repro.krylov.cg` -- conjugate gradients.
* :mod:`repro.krylov.pipelined_gmres` -- one-step pipelined GMRES in
  the spirit of Ghysels et al.'s p(l)-GMRES: classical Gram-Schmidt
  with a single non-blocking reduction per iteration overlapped with
  the next matrix-vector product.
* :mod:`repro.krylov.pipelined_cg` -- pipelined conjugate gradients
  (Ghysels & Vanroose), one overlapped reduction per iteration.
"""

from repro.krylov.result import SolveResult
from repro.krylov.arnoldi import arnoldi_step, ArnoldiBreakdown
from repro.krylov.engine import SolverEngine
from repro.krylov.gmres import gmres, GmresState
from repro.krylov.fgmres import fgmres
from repro.krylov.cg import cg
from repro.krylov.ops import KrylovBasis, allocate_basis
from repro.krylov.pipelined_gmres import pipelined_gmres
from repro.krylov.pipelined_cg import pipelined_cg
from repro.krylov.registry import (
    RegisteredSolver,
    SolverRegistry,
    batch_solve,
    default_solver_registry,
    solver_names,
)

__all__ = [
    "SolveResult",
    "arnoldi_step",
    "ArnoldiBreakdown",
    "SolverEngine",
    "gmres",
    "GmresState",
    "fgmres",
    "cg",
    "KrylovBasis",
    "allocate_basis",
    "pipelined_gmres",
    "pipelined_cg",
    "RegisteredSolver",
    "SolverRegistry",
    "default_solver_registry",
    "solver_names",
    "batch_solve",
]
