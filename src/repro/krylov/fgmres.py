"""Flexible GMRES (FGMRES).

FGMRES allows the preconditioner to *change from iteration to
iteration* -- including being another iterative solver -- by storing
the preconditioned vectors ``z_j = M_j^{-1} v_j`` explicitly and
forming the solution update from them.  This is exactly the structure
the paper's "reliable outer iterations" (Section III-D) require: the
outer FGMRES runs in reliable mode and is provably tolerant of an
inner solver that returns *anything* (even garbage produced by faults),
because a bad ``z_j`` can at worst fail to reduce the residual -- the
outer least-squares problem never amplifies it.

Both the Arnoldi basis ``V`` and the preconditioned block ``Z`` are
preallocated :class:`~repro.krylov.ops.KrylovBasis` stores;
orthogonalization is blocked CGS2 and the solution update is a single
``Z_k @ y`` gemv.

:mod:`repro.ftgmres` builds the full fault-tolerant solver on top of
this routine.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.result import SolveResult
from repro.linalg.blas import back_substitution, rotate_hessenberg_column
from repro.utils.timing import KernelCounters

__all__ = ["fgmres"]


def fgmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 300,
    inner_solve: Optional[Callable[[Any], Any]] = None,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve ``A x = b`` with flexible (variable-preconditioner) GMRES.

    Parameters
    ----------
    operator:
        The matrix ``A`` (any type accepted by :mod:`repro.krylov.ops`).
    b, x0, tol, atol, restart, maxiter:
        As in :func:`repro.krylov.gmres.gmres`.
    inner_solve:
        Callable mapping a basis vector ``v_j`` to a preconditioned
        vector ``z_j`` (typically an approximate solve of
        ``A z = v_j``).  ``None`` means ``z_j = v_j`` (unpreconditioned,
        equivalent to plain GMRES).
    iteration_hook:
        Optional callback ``hook(total_iteration, residual_norm)``.

    Returns
    -------
    SolveResult
        ``info["z_norms"]`` records the norms of the inner-solve
        outputs, which the FT-GMRES experiments use to show that faulty
        inner solves were absorbed rather than amplified;
        ``info["kernels"]`` carries per-kernel counts and seconds.
    """
    if restart <= 0 or maxiter <= 0:
        raise ValueError("restart and maxiter must be positive")

    kernels = KernelCounters()
    b_norm = ops.norm(b)
    target = max(tol * b_norm, atol)
    if target == 0.0:
        target = tol

    x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
    residual_norms: List[float] = []
    z_norms: List[float] = []
    total_iteration = 0
    converged = False
    breakdown = False
    outer = 0

    while total_iteration < maxiter and not converged and not breakdown:
        t0 = kernels.tick()
        r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
        kernels.charge("matvec", t0)
        beta = ops.norm(r)
        if not residual_norms:
            residual_norms.append(beta)
        if beta <= target:
            converged = True
            break
        m = min(restart, maxiter - total_iteration)
        basis = ops.allocate_basis(b, m + 1)
        basis.append(r, scale=1.0 / beta)
        z_block = ops.allocate_basis(b, m)
        hessenberg = np.zeros((m + 1, m), dtype=np.float64)
        givens: List[tuple] = []
        g = [0.0] * (m + 1)
        g[0] = beta
        inner_used = 0
        cycle_residual = beta

        for j in range(m):
            v = basis.column(j)
            t0 = kernels.tick()
            z = inner_solve(v) if inner_solve is not None else ops.copy_vector(v)
            kernels.charge("inner_solve", t0)
            # The reliable outer iteration inspects what the (possibly
            # unreliable) inner solve returned and discards unusable
            # results, replacing them with the unpreconditioned vector --
            # the "analyzed and used or discarded" behaviour of the
            # paper's reliable-outer formulation.  Unusable means
            # non-finite, or so large that applying the operator would
            # overflow and poison the reliable outer state.
            z_local = ops.to_local(z)
            z_norm = float(np.linalg.norm(z_local)) if np.all(np.isfinite(z_local)) else float("inf")
            v_norm = ops.norm(v)
            if (
                not np.isfinite(z_norm)
                or z_norm == 0.0
                or z_norm > 1e120
                or z_norm > 1e16 * max(v_norm, 1.0)
            ):
                z = ops.copy_vector(v)
                z_norm = v_norm
            t0 = kernels.tick()
            with np.errstate(over="ignore", invalid="ignore"):
                w = ops.matvec(operator, z)
            if not np.all(np.isfinite(ops.to_local(w))):
                z = ops.copy_vector(v)
                z_norm = v_norm
                w = ops.matvec(operator, z)
            kernels.charge("matvec", t0)
            z_block.append(z)
            z_norms.append(z_norm)
            t0 = kernels.tick()
            w, coefficients = basis.orthogonalize(w, method="cgs2", k=j + 1)
            h_next = ops.norm(w)
            happy = h_next <= 1e-14 * max(cycle_residual, 1.0)
            if not happy:
                basis.append(w, scale=1.0 / h_next)
            else:
                basis.append_zero()
            kernels.charge("orthogonalization", t0)
            col = coefficients.tolist()
            col.append(h_next)
            cycle_residual = rotate_hessenberg_column(col, g, givens, j)
            hessenberg[: j + 2, j] = col
            inner_used = j + 1
            total_iteration += 1
            residual_norms.append(cycle_residual)
            if iteration_hook is not None:
                iteration_hook(total_iteration, cycle_residual)
            if not math.isfinite(cycle_residual):
                breakdown = True
                break
            if cycle_residual <= target or happy or total_iteration >= maxiter:
                break

        if inner_used > 0 and not breakdown:
            try:
                y = back_substitution(hessenberg[:inner_used, :inner_used], g[:inner_used])
            except np.linalg.LinAlgError:
                breakdown = True
                y = None
            if y is not None and np.all(np.isfinite(y)):
                t0 = kernels.tick()
                x = ops.axpby(1.0, x, 1.0, z_block.lincomb(y, k=inner_used))
                kernels.charge("basis_update", t0)
            else:
                breakdown = True

        t0 = kernels.tick()
        true_residual = ops.norm(ops.axpby(1.0, b, -1.0, ops.matvec(operator, x)))
        kernels.charge("matvec", t0)
        if residual_norms:
            residual_norms[-1] = true_residual
        if true_residual <= target:
            converged = True
        outer += 1

    return SolveResult(
        x=x,
        converged=converged,
        iterations=total_iteration,
        residual_norms=residual_norms,
        breakdown=breakdown,
        info={
            "restarts": outer,
            "target": target,
            "z_norms": z_norms,
            "kernels": kernels.as_dict(),
        },
    )
