"""Flexible GMRES (FGMRES).

FGMRES allows the preconditioner to *change from iteration to
iteration* -- including being another iterative solver -- by storing
the preconditioned vectors ``z_j = M_j^{-1} v_j`` explicitly and
forming the solution update from them.  This is exactly the structure
the paper's "reliable outer iterations" (Section III-D) require: the
outer FGMRES runs in reliable mode and is provably tolerant of an
inner solver that returns *anything* (even garbage produced by faults),
because a bad ``z_j`` can at worst fail to reduce the residual -- the
outer least-squares problem never amplifies it.

This is now a thin wrapper over the :mod:`repro.krylov.engine`: the
restarted-Arnoldi core is shared with plain GMRES, and the flexible
behaviour (the ``Z`` block, the vetting of inner-solve outputs) lives
in :class:`~repro.krylov.engine.precondition.FlexiblePreconditioner`.

:mod:`repro.ftgmres` builds the full fault-tolerant solver on top of
this configuration.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.krylov.engine import (
    ArnoldiScheme,
    BlockedOrthogonalizer,
    ConvergenceTest,
    FlexiblePreconditioner,
    SolverEngine,
)
from repro.krylov.engine.resilience import compose_policy
from repro.krylov.result import SolveResult

__all__ = ["fgmres"]


def fgmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 300,
    inner_solve: Optional[Callable[[Any], Any]] = None,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
    policy=None,
) -> SolveResult:
    """Solve ``A x = b`` with flexible (variable-preconditioner) GMRES.

    Parameters
    ----------
    operator:
        The matrix ``A`` (any type accepted by :mod:`repro.krylov.ops`).
    b, x0, tol, atol, restart, maxiter:
        As in :func:`repro.krylov.gmres.gmres`.
    inner_solve:
        Callable mapping a basis vector ``v_j`` to a preconditioned
        vector ``z_j`` (typically an approximate solve of
        ``A z = v_j``).  ``None`` means ``z_j = v_j`` (unpreconditioned,
        equivalent to plain GMRES).
    iteration_hook:
        Optional callback ``hook(total_iteration, residual_norm)``.
    policy:
        Optional :class:`~repro.krylov.engine.resilience.ResiliencePolicy`.

    Returns
    -------
    SolveResult
        ``info["z_norms"]`` records the norms of the inner-solve
        outputs, which the FT-GMRES experiments use to show that faulty
        inner solves were absorbed rather than amplified;
        ``info["kernels"]`` carries per-kernel counts and seconds.
    """
    if restart <= 0 or maxiter <= 0:
        raise ValueError("restart and maxiter must be positive")
    engine = SolverEngine(
        operator,
        ArnoldiScheme(
            BlockedOrthogonalizer("cgs2", advertise=False),
            FlexiblePreconditioner(inner_solve),
            restart=restart,
            maxiter=maxiter,
        ),
        convergence=ConvergenceTest(tol=tol, atol=atol),
        policy=compose_policy(policy, iteration_hook, "scalar"),
    )
    return engine.solve(b, x0)
