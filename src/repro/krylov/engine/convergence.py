"""Convergence-test strategy of the solver engine.

Every solver in the toolkit uses the same stopping rule -- converge
when ``|r| <= max(tol * |b|, atol)`` with a fallback to ``tol`` for a
zero right-hand side -- but each used to inline it.  The engine owns a
:class:`ConvergenceTest` instead, so alternative rules (absolute-only,
per-component, energy norm) slot in without touching the core loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ConvergenceTest"]


class ConvergenceTest:
    """Relative residual test with an absolute floor.

    Parameters
    ----------
    tol:
        Relative tolerance (against ``|b|``).
    atol:
        Absolute tolerance; the effective target is
        ``max(tol * |b|, atol)``, falling back to ``tol`` when both
        terms vanish (zero right-hand side).
    """

    def __init__(self, tol: float = 1e-8, atol: float = 0.0):
        self.tol = float(tol)
        self.atol = float(atol)

    def resolve_target(self, b_norm: float) -> float:
        """The absolute residual target for a right-hand side of norm ``b_norm``."""
        target = max(self.tol * b_norm, self.atol)
        if target == 0.0:
            target = self.tol
        return target

    def is_met(self, residual_norm: float, target: float) -> bool:
        """Whether ``residual_norm`` satisfies the resolved target."""
        return residual_norm <= target

    def is_met_many(self, residual_norms, targets) -> np.ndarray:
        """Vectorized :meth:`is_met` over a batch of lockstep solves.

        ``residual_norms`` and ``targets`` are broadcastable arrays (one
        entry per scenario lane); the comparison is the same ``<=`` as
        the scalar rule, so a lane's batched convergence decision is
        bit-for-bit the sequential one.
        """
        return np.asarray(residual_norms, dtype=np.float64) <= np.asarray(
            targets, dtype=np.float64
        )
