"""Preconditioning strategies of the solver engine.

The strategy decides how the Arnoldi candidate direction is produced
from the newest basis vector and how the cycle's correction is mapped
back onto the iterate:

* :class:`RightPreconditioner` -- classic fixed right preconditioning
  ``A M^{-1}``: the candidate is ``A (M^{-1} v_j)`` and the restart
  correction ``V_k y`` is pushed through ``M^{-1}`` once.  With
  ``preconditioner=None`` this degenerates to plain GMRES.
* :class:`FlexiblePreconditioner` -- FGMRES: the preconditioner may
  change every iteration (``z_j = M_j^{-1} v_j``, typically an inner
  iterative solve), the preconditioned vectors are stored in a second
  :class:`~repro.krylov.ops.KrylovBasis` block and the update is formed
  from them directly.  This strategy also implements the paper's
  *reliable outer iteration* contract (Heroux §III-D): the inner
  solve's output is analyzed and -- when non-finite or absurdly scaled
  -- discarded in favour of the unpreconditioned vector, so a faulty
  inner solver can waste an iteration but never poison the reliable
  outer state.  FT-GMRES is exactly the engine with this strategy and
  an unreliable inner solver.
"""

from __future__ import annotations

import numpy as np

from repro.krylov import ops

__all__ = [
    "PreconditionerStrategy",
    "RightPreconditioner",
    "FlexiblePreconditioner",
]


class PreconditionerStrategy:
    """Strategy interface: candidate production and update mapping."""

    def start_cycle(self, engine, b, m: int) -> None:
        """Reset per-cycle state (called once per restart cycle)."""

    def candidate(self, engine, basis, j: int):
        """Produce the Arnoldi candidate ``w`` from basis vector ``j``."""
        raise NotImplementedError

    def apply_update(self, engine, x, basis, y: np.ndarray, k: int):
        """Fold the cycle's least-squares solution ``y`` into ``x``."""
        raise NotImplementedError

    def contribute_info(self, info: dict) -> None:
        """Add strategy-specific entries to ``SolveResult.info``."""


class RightPreconditioner(PreconditionerStrategy):
    """Fixed right preconditioning ``A M^{-1} y = b`` (or none)."""

    def __init__(self, preconditioner=None):
        self.preconditioner = preconditioner

    def preconditioned_vector(self, engine, basis, j: int):
        """``M^{-1} v_j`` (or ``v_j`` itself), charged to the counters.

        The half of :meth:`candidate` before the operator application,
        split out so the batched lockstep path can run the (cheap,
        per-lane) preconditioner application exactly as the sequential
        path does while batching the matvec across lanes.
        """
        if self.preconditioner is None:
            return basis.column(j)
        kernels = engine.kernels
        t0 = kernels.tick()
        z = ops.apply_preconditioner(self.preconditioner, basis.column(j))
        kernels.charge("preconditioner", t0)
        return z

    def candidate(self, engine, basis, j: int):
        kernels = engine.kernels
        z = self.preconditioned_vector(engine, basis, j)
        t0 = kernels.tick()
        w = ops.matvec(engine.operator, z)
        kernels.charge("matvec", t0)
        return w

    def apply_update(self, engine, x, basis, y: np.ndarray, k: int):
        kernels = engine.kernels
        t0 = kernels.tick()
        update = basis.lincomb(y, k=k)
        kernels.charge("basis_update", t0)
        if self.preconditioner is not None:
            t0 = kernels.tick()
            update = ops.apply_preconditioner(self.preconditioner, update)
            kernels.charge("preconditioner", t0)
        return ops.axpby(1.0, x, 1.0, update)


class FlexiblePreconditioner(PreconditionerStrategy):
    """Variable (per-iteration) preconditioning with a reliable outer contract.

    Parameters
    ----------
    inner_solve:
        Callable mapping a basis vector ``v_j`` to a preconditioned
        vector ``z_j`` (typically an approximate solve of
        ``A z = v_j``); ``None`` means ``z_j = v_j``.  The callable may
        be *unreliable* -- its output is vetted before use.
    """

    def __init__(self, inner_solve=None):
        self.inner_solve = inner_solve
        self.z_norms: list = []
        self._z_block = None

    def start_cycle(self, engine, b, m: int) -> None:
        self._z_block = ops.allocate_basis(b, m)

    def candidate(self, engine, basis, j: int):
        kernels = engine.kernels
        v = basis.column(j)
        t0 = kernels.tick()
        z = self.inner_solve(v) if self.inner_solve is not None else ops.copy_vector(v)
        kernels.charge("inner_solve", t0)
        # The reliable outer iteration inspects what the (possibly
        # unreliable) inner solve returned and discards unusable
        # results, replacing them with the unpreconditioned vector --
        # the "analyzed and used or discarded" behaviour of the paper's
        # reliable-outer formulation.  Unusable means non-finite, or so
        # large that applying the operator would overflow and poison the
        # reliable outer state.
        z_local = ops.to_local(z)
        z_norm = float(np.linalg.norm(z_local)) if np.all(np.isfinite(z_local)) else float("inf")
        v_norm = ops.norm(v)
        if (
            not np.isfinite(z_norm)
            or z_norm == 0.0
            or z_norm > 1e120
            or z_norm > 1e16 * max(v_norm, 1.0)
        ):
            z = ops.copy_vector(v)
            z_norm = v_norm
        t0 = kernels.tick()
        with np.errstate(over="ignore", invalid="ignore"):
            w = ops.matvec(engine.operator, z)
        if not np.all(np.isfinite(ops.to_local(w))):
            z = ops.copy_vector(v)
            z_norm = v_norm
            w = ops.matvec(engine.operator, z)
        kernels.charge("matvec", t0)
        self._z_block.append(z)
        self.z_norms.append(z_norm)
        return w

    def apply_update(self, engine, x, basis, y: np.ndarray, k: int):
        kernels = engine.kernels
        t0 = kernels.tick()
        x = ops.axpby(1.0, x, 1.0, self._z_block.lincomb(y, k=k))
        kernels.charge("basis_update", t0)
        return x

    def contribute_info(self, info: dict) -> None:
        info["z_norms"] = self.z_norms
