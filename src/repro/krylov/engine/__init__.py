"""The unified Krylov solver engine.

One core loop (:class:`~repro.krylov.engine.core.SolverEngine` driving
an :class:`~repro.krylov.engine.core.IterationScheme`), with the
variation points of the solver family factored into strategy objects:

* :mod:`~repro.krylov.engine.orthogonalize` -- blocking vs fused-wave
  Gram-Schmidt kernels.
* :mod:`~repro.krylov.engine.precondition` -- fixed right vs flexible
  (inner-solver, reliable-outer) preconditioning.
* :mod:`~repro.krylov.engine.convergence` -- the stopping rule.
* :mod:`~repro.krylov.engine.resilience` -- pluggable per-iteration
  resilience policies (hooks, skeptical monitors, residual guards).
* :mod:`~repro.krylov.engine.cg` -- the SPD (CG) iteration schemes.

See ARCHITECTURE.md for the layer diagram and
:mod:`repro.krylov.registry` for the named solver configurations the
campaign layer sweeps.
"""

from repro.krylov.engine.cg import CgScheme, PipelinedCgScheme
from repro.krylov.engine.convergence import ConvergenceTest
from repro.krylov.engine.core import ArnoldiScheme, GmresState, IterationScheme, SolverEngine
from repro.krylov.engine.orthogonalize import (
    GRAM_SCHMIDT_METHODS,
    BlockedOrthogonalizer,
    Orthogonalizer,
    PipelinedOrthogonalizer,
)
from repro.krylov.engine.precondition import (
    FlexiblePreconditioner,
    PreconditionerStrategy,
    RightPreconditioner,
)
from repro.krylov.engine.resilience import (
    CallbackPolicy,
    CompositePolicy,
    CycleAbandoned,
    FaultInjectionPolicy,
    IterationEvent,
    NullPolicy,
    ResidualGuardPolicy,
    ResiliencePolicy,
    SkepticalGmresPolicy,
)

# The batched lockstep path imports the engine submodules above; keep
# this import last so the package namespace is populated first.
from repro.krylov.engine.batch import (
    BATCH_GRAM_SCHMIDT,
    CgLaneSpec,
    GmresLaneSpec,
    SdcLaneSpec,
    batched_matvec,
    run_arnoldi_batch,
    run_cg_batch,
)

__all__ = [
    "SolverEngine",
    "IterationScheme",
    "ArnoldiScheme",
    "CgScheme",
    "PipelinedCgScheme",
    "GmresState",
    "ConvergenceTest",
    "Orthogonalizer",
    "BlockedOrthogonalizer",
    "PipelinedOrthogonalizer",
    "GRAM_SCHMIDT_METHODS",
    "PreconditionerStrategy",
    "RightPreconditioner",
    "FlexiblePreconditioner",
    "ResiliencePolicy",
    "NullPolicy",
    "CallbackPolicy",
    "CompositePolicy",
    "ResidualGuardPolicy",
    "SkepticalGmresPolicy",
    "FaultInjectionPolicy",
    "CycleAbandoned",
    "IterationEvent",
    "GmresLaneSpec",
    "SdcLaneSpec",
    "CgLaneSpec",
    "run_arnoldi_batch",
    "run_cg_batch",
    "batched_matvec",
    "BATCH_GRAM_SCHMIDT",
]
