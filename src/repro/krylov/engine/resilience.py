"""Resilience-policy adapters of the solver engine.

The paper's thesis is that resilience is an *algorithmic layer*: the
same solver can run bare, with cheap skeptical checks, or inside a
selective-reliability harness, and the choice should be a composition,
not a fork of the solver source.  Before the engine existed, that
wiring was scattered -- GMRES took a ``GmresState`` hook, FGMRES/CG
took ``(iteration, residual)`` callbacks, the SDC solver hand-rolled a
monitor adapter, and the SRP layer wrapped operators ad hoc.

A :class:`ResiliencePolicy` unifies all of it behind one ``observe``
call per inner iteration.  The engine constructs an iteration event
(the full :class:`~repro.krylov.engine.core.GmresState` for
Arnoldi-type schemes, a scalar :class:`IterationEvent` for the CG
recurrences) and hands it to the policy, which may

* record/report (detection-only policies such as
  :class:`ResidualGuardPolicy`),
* mutate the live solver state through the event's basis/Hessenberg
  views (fault-injection campaigns),
* raise :class:`CycleAbandoned` to discard the current Krylov cycle
  (the skeptical *restart* response), or
* re-raise :class:`~repro.skeptical.policies.SkepticalAbort` (the
  *abort* response).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = [
    "IterationEvent",
    "CycleAbandoned",
    "ResiliencePolicy",
    "NullPolicy",
    "CallbackPolicy",
    "CompositePolicy",
    "ResidualGuardPolicy",
    "SkepticalGmresPolicy",
    "FaultInjectionPolicy",
    "compose_policy",
]


@dataclass
class IterationEvent:
    """Minimal per-iteration view for solvers without Arnoldi state."""

    total_iteration: int
    residual_norm: float
    inner: int = 0
    outer: int = 0
    basis: Optional[object] = None
    hessenberg: Optional[object] = None
    reconstruct_iterate: Optional[object] = None


class CycleAbandoned(Exception):
    """Raised by a policy to discard the current Krylov cycle.

    The current iterate is still valid (it was formed before the
    suspected corruption), so the caller restarts the solve from it --
    "rolling back to a previous valid state" at the cost of one wasted
    cycle.  The engine attaches the abandoned attempt's kernel-counter
    payload as :attr:`kernels` before re-raising, so retrying callers
    keep their work accounting complete.
    """

    kernels: Optional[dict] = None


class ResiliencePolicy:
    """Base policy: observes iteration events; default is inert."""

    name = "none"

    #: Whether :meth:`observe` reads the Arnoldi internals (basis,
    #: Hessenberg, reconstruct closure) of its events.  The batched
    #: lockstep path (:mod:`repro.krylov.engine.batch`) skips building
    #: the full per-lane :class:`~repro.krylov.engine.core.GmresState`
    #: for policies that only look at the scalar fields -- same
    #: observations, less per-iteration interpreter work.  Conservative
    #: default: assume the state is needed.
    needs_arnoldi_state = True

    def begin_attempt(self, x) -> None:
        """Called when a (re)solve attempt starts from iterate ``x``."""

    def observe(self, event) -> None:
        """Called once per inner iteration with the iteration event."""

    def contribute_result(self, result) -> None:
        """Fold policy bookkeeping into a finished ``SolveResult``."""


class NullPolicy(ResiliencePolicy):
    """No resilience instrumentation (the bare solver)."""

    needs_arnoldi_state = False


class CallbackPolicy(ResiliencePolicy):
    """Adapts a user iteration hook to the policy protocol.

    ``style="state"`` calls ``callback(event)`` with the full event
    (the historical :func:`repro.krylov.gmres.gmres` hook signature);
    ``style="scalar"`` calls ``callback(total_iteration,
    residual_norm)`` (the FGMRES/pipelined/CG signature).
    """

    name = "callback"

    def __init__(self, callback: Callable, style: str = "state"):
        if style not in ("state", "scalar"):
            raise ValueError("style must be 'state' or 'scalar'")
        self.callback = callback
        self.style = style

    @property
    def needs_arnoldi_state(self) -> bool:
        # A scalar-style callback never sees the event object at all.
        return self.style == "state"

    @classmethod
    def from_hook(cls, hook: Optional[Callable], style: str) -> ResiliencePolicy:
        """Wrap ``hook`` (or return the inert policy for ``None``)."""
        return NullPolicy() if hook is None else cls(hook, style)

    def observe(self, event) -> None:
        if self.style == "state":
            self.callback(event)
        else:
            self.callback(event.total_iteration, event.residual_norm)


class CompositePolicy(ResiliencePolicy):
    """Run several policies in order (e.g. inject faults, then check)."""

    name = "composite"

    def __init__(self, policies: Sequence[ResiliencePolicy]):
        self.policies = list(policies)

    @property
    def needs_arnoldi_state(self) -> bool:
        return any(policy.needs_arnoldi_state for policy in self.policies)

    def begin_attempt(self, x) -> None:
        for policy in self.policies:
            policy.begin_attempt(x)

    def observe(self, event) -> None:
        for policy in self.policies:
            policy.observe(event)

    def contribute_result(self, result) -> None:
        for policy in self.policies:
            policy.contribute_result(result)


def compose_policy(
    policy: Optional[ResiliencePolicy],
    iteration_hook: Optional[Callable],
    style: str,
) -> ResiliencePolicy:
    """Merge an explicit policy with a legacy iteration hook.

    The hook (adapted through :class:`CallbackPolicy` with the solver's
    historical ``style``) runs *before* the policy, preserving the
    inject-then-check ordering the fault campaigns rely on.
    """
    hook_policy = CallbackPolicy.from_hook(iteration_hook, style)
    if policy is None:
        return hook_policy
    if iteration_hook is None:
        return policy
    return CompositePolicy([hook_policy, policy])


class ResidualGuardPolicy(ResiliencePolicy):
    """Cheap solver-agnostic SDC detector on the residual recurrence.

    Watches the per-iteration (recurrence) residual norms and flags an
    iteration as suspicious when the value is non-finite or exceeds
    ``growth_factor`` times the best residual seen so far -- the
    signature of a large corrupted coefficient.  O(1) per iteration, no
    access to solver internals, so it composes with *every* registered
    solver (the full Arnoldi-state checks of
    :class:`SkepticalGmresPolicy` remain GMRES-only).

    Detection-only: the guard records and counts, it does not alter the
    iteration (pair it with a restart-capable solver for recovery).
    """

    name = "residual_guard"
    # Observes only the scalar residual/iteration fields.
    needs_arnoldi_state = False

    def __init__(self, growth_factor: float = 1e4):
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1")
        self.growth_factor = float(growth_factor)
        self.detections = 0
        self.events: List[dict] = []
        self._best = math.inf

    def observe(self, event) -> None:
        residual = float(event.residual_norm)
        if not math.isfinite(residual) or (
            self._best < math.inf and residual > self.growth_factor * self._best
        ):
            self.detections += 1
            self.events.append(
                {"iteration": int(event.total_iteration), "residual": residual}
            )
            return
        if residual < self._best:
            self._best = residual

    def contribute_result(self, result) -> None:
        result.detected_faults += self.detections
        result.info["residual_guard"] = {
            "detections": self.detections,
            "growth_factor": self.growth_factor,
            "events": list(self.events),
        }


class FaultInjectionPolicy(ResiliencePolicy):
    """Injects declarative faults into the live solver state.

    The engine-side consumer of the reliability layer's fault models:
    every iteration event's newest basis vector (Arnoldi schemes) is
    passed through an injector built from a
    :class:`~repro.reliability.models.FaultModel`, with the iteration
    number as the schedule coordinate.  Composes with detection
    policies through :class:`CompositePolicy` in the usual
    inject-then-check order, so solver, detection policy and fault
    model stay three independent axes.

    Build it from anything :func:`repro.reliability.resolve_faults`
    accepts::

        policy = FaultInjectionPolicy.from_spec(
            "bitflip:p=0.05,bits=52..62", seed=7)
        gmres(A, b, policy=CompositePolicy([policy, ResidualGuardPolicy()]))
    """

    name = "fault_injection"

    def __init__(self, injector):
        self.injector = injector

    @classmethod
    def from_spec(cls, faults, *, rng=None, seed=None, name="engine"):
        """Resolve a fault spec/name/model into an injection policy."""
        # Local import: the reliability layer sits above the engine.
        from repro.reliability.registry import resolve_faults

        model = resolve_faults(faults)
        return cls(model.injector(rng, seed=seed, name=name, target="basis"))

    @property
    def n_injected(self) -> int:
        """Faults injected through this policy so far."""
        return self.injector.n_injected

    def observe(self, event) -> None:
        if event.basis is None:
            return
        target = np.asarray(event.basis[event.inner + 1])
        if target.size == 0:
            return
        self.injector.maybe_inject(target, now=float(event.total_iteration))

    def contribute_result(self, result) -> None:
        result.info["faults_injected"] = int(self.n_injected)


class SkepticalGmresPolicy(ResiliencePolicy):
    """Runs a :class:`~repro.skeptical.monitor.SkepticalMonitor` per iteration.

    The adapter that used to live inline in
    :mod:`repro.skeptical.gmres_sdc`: builds the observation dictionary
    from the Arnoldi iteration event (basis, Hessenberg, residual
    history, lazy true-residual closure) and translates the monitor's
    :class:`~repro.skeptical.policies.SkepticalAbort` into either a
    :class:`CycleAbandoned` (``response="restart"``) or a re-raise
    (``response="abort"``).
    """

    name = "skeptical"

    def __init__(self, monitor, *, operator, b, response: str = "restart"):
        if response not in ("restart", "abort"):
            raise ValueError("response must be 'restart' or 'abort'")
        self.monitor = monitor
        self.operator = operator
        self.b = b
        self.response = response
        self.residual_history: List[float] = []
        self.detection_restarts = 0

    def begin_attempt(self, x) -> None:
        self.residual_history.clear()

    def observe(self, event) -> None:
        # Local import: repro.skeptical imports the krylov layer.
        from repro.krylov import ops
        from repro.skeptical.policies import SkepticalAbort

        self.residual_history.append(event.residual_norm)

        def true_residual() -> float:
            # Reconstruct the current iterate's residual explicitly
            # (one back-substitution + gemv + matvec), so the
            # consistency check compares the recurrence against the
            # truth of the SAME iterate.  Kept rare (cycle starts
            # only): at other iterations the check degenerates to a
            # trivial pass, matching the historical cost profile.
            if event.inner != 0 or event.reconstruct_iterate is None:
                return event.residual_norm
            try:
                x_now = event.reconstruct_iterate()
            except np.linalg.LinAlgError:
                return event.residual_norm
            return float(
                np.linalg.norm(self.b - np.asarray(ops.matvec(self.operator, x_now)))
            )

        observation = {
            "basis": event.basis,
            "hessenberg": event.hessenberg,
            "inner": event.inner,
            "residual_norm": event.residual_norm,
            "residual_history": self.residual_history,
            "true_residual": true_residual,
        }
        try:
            self.monitor.observe(observation)
        except SkepticalAbort:
            if self.response == "abort":
                raise
            self.detection_restarts += 1
            raise CycleAbandoned() from None

    def contribute_result(self, result) -> None:
        summary = self.monitor.summary()
        result.detected_faults = self.monitor.n_detections
        result.info.update(
            {
                "detection_restarts": self.detection_restarts,
                "checks_run": summary["checks_run"],
                "check_flops": summary["check_flops"],
            }
        )
