"""Conjugate-gradient iteration schemes for the solver engine.

The SPD recurrences do not build an Arnoldi basis, so they are their
own :class:`~repro.krylov.engine.core.IterationScheme` implementations
rather than strategy combinations of the Arnoldi scheme -- but they run
under the same engine: shared target resolution, the canonical kernel
counter schema, and the unified
:class:`~repro.krylov.engine.resilience.ResiliencePolicy` observation
protocol (policies receive scalar
:class:`~repro.krylov.engine.resilience.IterationEvent` objects).

* :class:`CgScheme` -- classic preconditioned CG: two blocking global
  reductions per iteration plus the convergence norm.
* :class:`PipelinedCgScheme` -- Ghysels & Vanroose pipelined CG: ONE
  fused non-blocking reduction per iteration, overlapped with the next
  operator application, at the cost of three extra vector recurrences.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.krylov import ops
from repro.krylov.engine.core import IterationScheme, SolverEngine
from repro.krylov.engine.resilience import IterationEvent
from repro.krylov.result import SolveResult

__all__ = ["CgScheme", "PipelinedCgScheme"]


class CgScheme(IterationScheme):
    """Classic preconditioned conjugate gradients."""

    def __init__(self, preconditioner=None, *, maxiter: int = 1000):
        if maxiter <= 0:
            raise ValueError("maxiter must be positive")
        self.preconditioner = preconditioner
        self.maxiter = int(maxiter)

    def run(self, engine: SolverEngine, b, x, target: float) -> SolveResult:
        operator = engine.operator
        kernels = engine.kernels
        policy = engine.policy
        convergence = engine.convergence

        t0 = kernels.tick()
        r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
        kernels.charge("matvec", t0)
        t0 = kernels.tick()
        z = ops.apply_preconditioner(self.preconditioner, r)
        kernels.charge("preconditioner", t0)
        p = ops.copy_vector(z)
        rz = ops.dot(r, z)
        residual = ops.norm(r)
        residual_norms: List[float] = [residual]
        alphas: List[float] = []
        betas: List[float] = []
        converged = convergence.is_met(residual, target)
        breakdown = False
        iteration = 0

        while not converged and not breakdown and iteration < self.maxiter:
            t0 = kernels.tick()
            ap = ops.matvec(operator, p)
            kernels.charge("matvec", t0)
            p_ap = ops.dot(p, ap)
            if p_ap <= 0.0 or not np.isfinite(p_ap):
                # Loss of positive definiteness: either the operator is
                # not SPD or a fault corrupted the recurrence.
                breakdown = True
                break
            alpha = rz / p_ap
            alphas.append(float(alpha))
            x = ops.axpby(1.0, x, float(alpha), p)
            r = ops.axpby(1.0, r, -float(alpha), ap)
            residual = ops.norm(r)
            iteration += 1
            residual_norms.append(residual)
            policy.observe(IterationEvent(total_iteration=iteration, residual_norm=residual))
            if not np.isfinite(residual):
                breakdown = True
                break
            if convergence.is_met(residual, target):
                converged = True
                break
            t0 = kernels.tick()
            z = ops.apply_preconditioner(self.preconditioner, r)
            kernels.charge("preconditioner", t0)
            rz_next = ops.dot(r, z)
            if not np.isfinite(rz_next):
                breakdown = True
                break
            beta = rz_next / rz
            betas.append(float(beta))
            rz = rz_next
            p = ops.axpby(1.0, z, float(beta), p)

        return SolveResult(
            x=x,
            converged=converged,
            iterations=iteration,
            residual_norms=residual_norms,
            breakdown=breakdown,
            info={
                "alphas": alphas,
                "betas": betas,
                "target": target,
                "kernels": kernels.as_dict(),
            },
        )


class PipelinedCgScheme(IterationScheme):
    """Pipelined (overlapped single-reduction) conjugate gradients."""

    def __init__(self, preconditioner=None, *, maxiter: int = 1000):
        if maxiter <= 0:
            raise ValueError("maxiter must be positive")
        self.preconditioner = preconditioner
        self.maxiter = int(maxiter)

    def run(self, engine: SolverEngine, b, x, target: float) -> SolveResult:
        operator = engine.operator
        kernels = engine.kernels
        policy = engine.policy
        convergence = engine.convergence

        t0 = kernels.tick()
        r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
        kernels.charge("matvec", t0)
        t0 = kernels.tick()
        u = ops.apply_preconditioner(self.preconditioner, r)
        kernels.charge("preconditioner", t0)
        t0 = kernels.tick()
        w = ops.matvec(operator, u)
        kernels.charge("matvec", t0)

        residual = ops.norm(r)
        residual_norms: List[float] = [residual]
        converged = convergence.is_met(residual, target)
        breakdown = False
        iteration = 0
        overlapped = 0

        gamma_old = 0.0
        alpha_old = 0.0
        z = None
        q = None
        s = None
        p = None

        while not converged and not breakdown and iteration < self.maxiter:
            # Start the fused reduction for gamma = (r, u) and
            # delta = (w, u): one non-blocking allreduce carrying both
            # partial sums.
            fused = ops.fused_dots(((r, u), (w, u)))
            # Overlap: apply the preconditioner and the operator while
            # the reduction is in flight.
            t0 = kernels.tick()
            m_w = ops.apply_preconditioner(self.preconditioner, w)
            kernels.charge("preconditioner", t0)
            t0 = kernels.tick()
            n_w = ops.matvec(operator, m_w)
            kernels.charge("matvec", t0)
            overlapped += 1
            gamma, delta = (float(v) for v in fused.wait())

            if not np.isfinite(gamma) or not np.isfinite(delta):
                breakdown = True
                break

            if iteration > 0:
                if gamma_old == 0.0 or alpha_old == 0.0:
                    breakdown = True
                    break
                beta = gamma / gamma_old
                denom = delta - beta * gamma / alpha_old
            else:
                beta = 0.0
                denom = delta
            if denom == 0.0 or not np.isfinite(denom):
                breakdown = True
                break
            alpha = gamma / denom

            if iteration == 0:
                z = ops.copy_vector(n_w)
                q = ops.copy_vector(m_w)
                s = ops.copy_vector(w)
                p = ops.copy_vector(u)
            else:
                z = ops.axpby(1.0, n_w, float(beta), z)
                q = ops.axpby(1.0, m_w, float(beta), q)
                s = ops.axpby(1.0, w, float(beta), s)
                p = ops.axpby(1.0, u, float(beta), p)

            x = ops.axpby(1.0, x, float(alpha), p)
            r = ops.axpby(1.0, r, -float(alpha), s)
            u = ops.axpby(1.0, u, -float(alpha), q)
            w = ops.axpby(1.0, w, -float(alpha), z)

            gamma_old = gamma
            alpha_old = alpha
            iteration += 1
            residual = ops.norm(r)
            residual_norms.append(residual)
            policy.observe(IterationEvent(total_iteration=iteration, residual_norm=residual))
            if not np.isfinite(residual):
                breakdown = True
                break
            if convergence.is_met(residual, target):
                converged = True

        return SolveResult(
            x=x,
            converged=converged,
            iterations=iteration,
            residual_norms=residual_norms,
            breakdown=breakdown,
            info={
                "target": target,
                "overlapped_reductions": overlapped,
                "kernels": kernels.as_dict(),
            },
        )
