"""Batched lockstep execution of independent same-shaped solves.

Fault-injection campaigns run thousands of *independent* scenarios that
share one operator and vector length and differ only in right-hand
side, fault stream and policy knobs.  Solving them one at a time leaves
almost all of the wall-clock in Python interpreter overhead: at the
campaign's typical ``n`` (a few thousand), one Arnoldi iteration is a
handful of microsecond-scale BLAS calls wrapped in hundreds of
microseconds of bookkeeping.  This module advances ``S`` scenarios in
lockstep instead: the inner-loop kernels (operator application,
Gram-Schmidt, the Givens QR recurrence) run once per *step* on stacked
``(S, n)`` arrays, while everything observable stays per-lane.

Bit-parity contract
-------------------
A batched lane produces byte-identical results to the corresponding
sequential solve (``tests/test_batch_parity.py`` pins this across the
solver x fault x preconditioner x policy matrix).  The design rules
that make this hold:

* Only operations with verified batched bit-identity are vectorized:
  stacked ``np.matmul`` against the per-lane gemv (NOT ``np.einsum``),
  elementwise arithmetic, :meth:`~repro.linalg.csr.CsrMatrix.matvec_block`
  (``np.add.reduceat`` over gathered products), and the mask-chained
  :func:`~repro.linalg.blas.givens_rotation_many`.
* Cycle boundaries (cycle-start residual, least-squares solve, iterate
  update, true-residual check) and preconditioner applications run
  per-lane through the *same* sequential code paths, with the same
  kernel-counter charges.
* Lanes never join a cycle midway: a restart cycle is the lockstep
  unit.  Lanes are grouped into *cohorts* keyed by ``(m, method)`` --
  the cycle dimension from
  :func:`~repro.krylov.engine.core.cycle_dimension` and the
  Gram-Schmidt kernel -- and a lane that converges, breaks down, is
  abandoned by a skeptical detection or exhausts its budget simply
  leaves its cohort; the survivors keep going.
* Per-lane fault hooks and resilience policies observe exactly the
  sequential per-iteration events (a full
  :class:`~repro.krylov.engine.core.GmresState` only when the policy
  declares ``needs_arnoldi_state``), against live views of the stacked
  arrays, so injected faults land in the real solver state.

Kernel counters: batched spans (the stacked matvec and the
orthogonalization block) are measured once and split evenly across the
active lanes with one *call* each, so call counts match the sequential
solver exactly and only the attributed seconds are approximate.
Parity gates therefore compare everything except ``seconds``.

Skeptical (SDC-detecting) lanes replicate the
:func:`repro.skeptical.gmres_sdc.sdc_detecting_gmres` attempt loop per
lane, with the cheap checks (finiteness, Hessenberg bound) evaluated as
vectorized sweeps and the expensive ones (orthogonality,
residual-consistency) per lane through the real
:mod:`repro.skeptical.checks` functions.  Only the ``"restart"``
response is supported here (an ``"abort"`` would have to kill sibling
lanes); the registry routes ``skeptical_abort`` solves to the
sequential fallback.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.krylov import ops
from repro.krylov.engine.convergence import ConvergenceTest
from repro.krylov.engine.core import (
    GmresState,
    canonical_kernel_counters,
    cycle_dimension,
)
from repro.krylov.engine.orthogonalize import HAPPY_BREAKDOWN_TOL, orthogonalize_many
from repro.krylov.engine.precondition import RightPreconditioner
from repro.krylov.engine.resilience import IterationEvent, NullPolicy, compose_policy
from repro.krylov.result import SolveResult
from repro.linalg.blas import back_substitution, givens_rotation_many
from repro.linalg.csr import CsrMatrix
from repro.skeptical.checks import residual_consistency_check
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "GmresLaneSpec",
    "SdcLaneSpec",
    "CgLaneSpec",
    "run_arnoldi_batch",
    "run_cg_batch",
    "batched_matvec",
    "BATCH_GRAM_SCHMIDT",
]

#: Gram-Schmidt kernels with a verified batched form ("modified" has an
#: inherently sequential per-vector recurrence; those lanes fall back).
BATCH_GRAM_SCHMIDT = ("cgs2", "classical")

# Sentinel returned by an attempt whose while-condition says "done".
_COMPLETE = object()


# ---------------------------------------------------------------------------
# Lane specifications (one per scenario)
# ---------------------------------------------------------------------------


@dataclass
class GmresLaneSpec:
    """One plain/guarded GMRES scenario, mirroring :func:`repro.krylov.gmres.gmres`.

    ``operator`` overrides the batch-level operator for this lane (e.g.
    a per-scenario fault-injecting wrapper); lanes with private
    operators advance in lockstep but apply their own operator, so
    per-lane fault streams stay draw-for-draw sequential.
    """

    b: np.ndarray
    x0: Optional[np.ndarray] = None
    tol: float = 1e-8
    atol: float = 0.0
    restart: int = 30
    maxiter: int = 1000
    preconditioner: Any = None
    gram_schmidt: str = "cgs2"
    policy: Any = None
    iteration_hook: Optional[Callable] = None
    operator: Any = None


@dataclass
class SdcLaneSpec:
    """One SDC-detecting GMRES scenario (``response="restart"`` only),
    mirroring :func:`repro.skeptical.gmres_sdc.sdc_detecting_gmres`."""

    b: np.ndarray
    x0: Optional[np.ndarray] = None
    tol: float = 1e-8
    atol: float = 0.0
    restart: int = 30
    maxiter: int = 1000
    preconditioner: Any = None
    check_period: int = 1
    orthogonality_period: int = 5
    residual_check_period: int = 10
    hessenberg_safety: float = 4.0
    orthogonality_tol: float = 1e-6
    max_restarts_on_detection: int = 5
    operator_norm: Optional[float] = None
    fault_hook: Optional[Callable] = None
    operator: Any = None


@dataclass
class CgLaneSpec:
    """One CG scenario, mirroring :func:`repro.krylov.cg.cg`."""

    b: np.ndarray
    x0: Optional[np.ndarray] = None
    tol: float = 1e-8
    atol: float = 0.0
    maxiter: int = 1000
    preconditioner: Any = None
    policy: Any = None
    iteration_hook: Optional[Callable] = None
    operator: Any = None


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


class _LaneEngine:
    """Duck-typed stand-in for :class:`~repro.krylov.engine.core.SolverEngine`.

    The preconditioner strategies only touch ``engine.operator`` and
    ``engine.kernels``; handing them this shim reuses their (charged)
    sequential code paths verbatim.
    """

    __slots__ = ("operator", "kernels")

    def __init__(self, operator, kernels):
        self.operator = operator
        self.kernels = kernels


def _basis_view(rows: np.ndarray):
    """A :class:`~repro.krylov.ops._DenseKrylovBasis` over lane storage.

    ``rows`` is the lane's ``(m+1, n)`` slice of the cohort's stacked
    basis array; the adapter makes it a real ``KrylovBasis`` so fault
    hooks, reconstruct closures and the orthogonality check operate on
    live solver state exactly as in the sequential path.
    """
    adapter = ops._DenseKrylovBasis.__new__(ops._DenseKrylovBasis)
    adapter._rows = rows
    adapter.n_columns = 0
    return adapter


class _LaneLsq:
    """View-backed stand-in for :class:`~repro.linalg.blas.HessenbergLsq`.

    The rotations run vectorized across the cohort; this object only
    exposes the per-lane ``hessenberg`` array and rotated right-hand
    side ``g`` (both views into the cohort stacks) with the ``solve``
    the reconstruct closures and cycle-end updates call.
    """

    __slots__ = ("hessenberg", "_g", "size")

    def __init__(self, hessenberg: np.ndarray, g: np.ndarray):
        self.hessenberg = hessenberg
        self._g = g
        self.size = 0

    def solve(self, k: Optional[int] = None) -> np.ndarray:
        k = self.size if k is None else int(k)
        return back_substitution(self.hessenberg[:k, :k], self._g[:k])


def batched_matvec(operator, X: np.ndarray) -> np.ndarray:
    """Apply ``operator`` to every row of ``X`` (shape ``(S, n)``).

    :class:`~repro.linalg.csr.CsrMatrix` operators use the bit-parity
    :meth:`~repro.linalg.csr.CsrMatrix.matvec_block` kernel; anything
    else (dense ndarray, callable) is applied per row through
    :func:`repro.krylov.ops.matvec` -- broadcast dense gemm is NOT
    bit-identical to per-vector gemv, so it is deliberately not used.
    """
    X = np.asarray(X, dtype=np.float64)
    if isinstance(operator, CsrMatrix):
        return operator.matvec_block(X)
    if X.shape[0] == 0:
        return np.zeros_like(X)
    return np.array(
        [np.asarray(ops.matvec(operator, x), dtype=np.float64) for x in X]
    )


def _matvec_rows(attempts, Z: np.ndarray) -> np.ndarray:
    """Operator application for one lockstep step.

    When every lane shares one operator object the batched kernel runs;
    lanes with private operators (per-scenario fault-injecting
    wrappers) are applied row by row with their own operator, keeping
    each lane's fault stream draw-for-draw sequential.
    """
    op0 = attempts[0].operator
    if all(a.operator is op0 for a in attempts):
        return batched_matvec(op0, Z)
    return np.array(
        [
            np.asarray(ops.matvec(a.operator, Z[i]), dtype=np.float64)
            for i, a in enumerate(attempts)
        ]
    )


# ---------------------------------------------------------------------------
# The Arnoldi lockstep machinery
# ---------------------------------------------------------------------------


class _ArnoldiAttempt:
    """One engine-level GMRES solve of one lane (one ``gmres()`` call).

    Owns exactly the state of one :meth:`ArnoldiScheme.run` invocation;
    cycle boundaries run here per-lane with real charged ops, while the
    inner loop is advanced by :func:`_run_cohort` on the stacks.
    """

    __slots__ = (
        "lane",
        "operator",
        "b",
        "x",
        "kernels",
        "shim",
        "precond",
        "convergence",
        "target",
        "restart",
        "maxiter",
        "residual_norms",
        "total_iteration",
        "converged",
        "breakdown",
        "outer",
        "adapter",
        "lsq",
        "slot",
        "inner_used",
        "cycle_residual",
        "cycle_outcome",
        "_cycle_r",
        "_cycle_beta",
        "mv_sec",
        "mv_calls",
        "ortho_sec",
        "ortho_calls",
    )

    def __init__(self, lane, *, x, maxiter: int):
        self.lane = lane
        self.operator = lane.operator
        self.b = lane.b
        self.x = x
        self.kernels = canonical_kernel_counters()
        self.shim = _LaneEngine(lane.operator, self.kernels)
        self.precond = RightPreconditioner(lane.preconditioner)
        self.convergence = lane.convergence
        self.target = lane.convergence.resolve_target(ops.norm(lane.b))
        self.restart = lane.restart
        self.maxiter = int(maxiter)
        self.residual_norms: List[float] = []
        self.total_iteration = 0
        self.converged = False
        self.breakdown = False
        self.outer = 0
        self.adapter = None
        self.lsq = None
        self.slot = -1
        self.inner_used = 0
        self.cycle_residual = 0.0
        self.cycle_outcome = "end"
        self._cycle_r = None
        self._cycle_beta = 0.0
        # Deferred per-cycle kernel charges (flushed by _run_cohort).
        self.mv_sec = 0.0
        self.mv_calls = 0
        self.ortho_sec = 0.0
        self.ortho_calls = 0

    def begin_cycle(self):
        """Run the cycle head; return the cycle dimension or ``_COMPLETE``.

        Mirrors the ``while`` head and pre-loop block of
        :meth:`ArnoldiScheme.run`: the residual of the current iterate
        (charged matvec), the first-cycle residual record and the
        cycle-start convergence test.
        """
        if (
            self.total_iteration >= self.maxiter
            or self.converged
            or self.breakdown
        ):
            return _COMPLETE
        kernels = self.kernels
        t0 = kernels.tick()
        r = ops.axpby(1.0, self.b, -1.0, ops.matvec(self.operator, self.x))
        kernels.charge("matvec", t0)
        beta = ops.norm(r)
        if not self.residual_norms:
            self.residual_norms.append(beta)
        if self.convergence.is_met(beta, self.target):
            self.converged = True
            return _COMPLETE
        self._cycle_r = r
        self._cycle_beta = beta
        return cycle_dimension(self.restart, self.maxiter, self.total_iteration)

    def attach(self, slot: int, rows: np.ndarray, hess: np.ndarray, g: np.ndarray, m: int):
        """Bind this attempt to its cohort slot and seed the cycle state."""
        self.slot = slot
        self.adapter = _basis_view(rows)
        self.adapter.append(self._cycle_r, scale=1.0 / self._cycle_beta)
        self.precond.start_cycle(self.shim, self.b, m)
        g[0] = self._cycle_beta
        self.lsq = _LaneLsq(hess, g)
        self.inner_used = 0
        self.cycle_residual = self._cycle_beta
        self.cycle_outcome = "end"
        self._cycle_r = None

    def update_solution(self):
        """First half of the cycle tail: the least-squares iterate update."""
        if self.inner_used > 0:  # update_on_breakdown=True for the GMRES family
            try:
                y = self.lsq.solve(self.inner_used)
            except np.linalg.LinAlgError:
                self.breakdown = True
                y = None
            if y is not None and np.all(np.isfinite(y)):
                self.x = self.precond.apply_update(
                    self.shim, self.x, self.adapter, y, self.inner_used
                )
            else:
                self.breakdown = True

    def finish_cycle(self, true_residual: float):
        """Second half of the cycle tail: record the true residual.

        ``true_residual`` is ``||b - A x||`` of the updated iterate --
        computed here per lane by :meth:`end_cycle`, or by the stacked
        block matvec of :func:`_batched_cycle_tail` (bit-identical per
        row, so the recorded history is the same either way).
        """
        self.residual_norms[-1] = true_residual
        if self.convergence.is_met(true_residual, self.target):
            self.converged = True
        self.outer += 1

    def end_cycle(self):
        """The cycle tail: least-squares update and true-residual check."""
        self.update_solution()
        kernels = self.kernels
        t0 = kernels.tick()
        true_residual = ops.norm(
            ops.axpby(1.0, self.b, -1.0, ops.matvec(self.operator, self.x))
        )
        kernels.charge("matvec", t0)
        self.finish_cycle(true_residual)


class _PlainGmresLane:
    """Lane controller for a plain/guarded GMRES scenario (one attempt)."""

    is_sdc = False

    def __init__(self, operator, spec: GmresLaneSpec):
        if spec.restart <= 0:
            raise ValueError("restart must be positive")
        if spec.maxiter <= 0:
            raise ValueError("maxiter must be positive")
        if spec.gram_schmidt not in BATCH_GRAM_SCHMIDT:
            raise ValueError(
                f"no batched kernel for gram_schmidt={spec.gram_schmidt!r}; "
                "use the sequential solver for 'modified'"
            )
        self.operator = spec.operator if spec.operator is not None else operator
        self.b = np.asarray(spec.b, dtype=np.float64)
        self.x0 = spec.x0
        self.restart = int(spec.restart)
        self.maxiter = int(spec.maxiter)
        self.preconditioner = spec.preconditioner
        self.method = spec.gram_schmidt
        self.convergence = ConvergenceTest(tol=spec.tol, atol=spec.atol)
        self.policy = compose_policy(spec.policy, spec.iteration_hook, "state")
        self.result: Optional[SolveResult] = None
        self._attempt: Optional[_ArnoldiAttempt] = None

    def begin_cycle(self):
        """Advance to the next cycle head; return a cohort key or ``None``."""
        while True:
            if self.result is not None:
                return None
            if self._attempt is None:
                x = (
                    ops.copy_vector(self.x0)
                    if self.x0 is not None
                    else ops.zeros_like(self.b)
                )
                self._attempt = _ArnoldiAttempt(self, x=x, maxiter=self.maxiter)
                self.policy.begin_attempt(x)
            req = self._attempt.begin_cycle()
            if req is not _COMPLETE:
                return (req, self.method)
            self._finish()

    def after_cycle(self):
        self._attempt.end_cycle()

    def tail_begin(self):
        """Run the x-update half of the cycle tail; return the attempt
        whose true-residual matvec remains (never ``None`` here)."""
        self._attempt.update_solution()
        return self._attempt

    def _finish(self):
        a = self._attempt
        info = {
            "restarts": a.outer,
            "target": a.target,
            "gram_schmidt": self.method,
            "kernels": a.kernels.as_dict(),
        }
        result = SolveResult(
            x=a.x,
            converged=a.converged,
            iterations=a.total_iteration,
            residual_norms=a.residual_norms,
            breakdown=a.breakdown,
            info=info,
        )
        self.policy.contribute_result(result)
        self.result = result


class _SdcGmresLane:
    """Lane controller replicating the ``sdc_detecting_gmres`` attempt loop.

    The monitor bookkeeping (observation counter, checks run, flops,
    detections) persists across attempts exactly as the sequential
    solver's shared :class:`~repro.skeptical.monitor.SkepticalMonitor`
    does, while the residual history clears per attempt
    (``SkepticalGmresPolicy.begin_attempt``).
    """

    is_sdc = True
    method = "cgs2"  # the skeptical solver pins CGS2

    def __init__(self, operator, spec: SdcLaneSpec):
        check_integer(spec.check_period, "check_period")
        check_positive(spec.tol, "tol")
        for name in ("check_period", "orthogonality_period", "residual_check_period"):
            period = getattr(spec, name)
            check_integer(period, "period")
            if period <= 0:
                raise ValueError("period must be positive")
        if spec.restart <= 0:
            raise ValueError("restart must be positive")
        if spec.maxiter <= 0:
            raise ValueError("maxiter must be positive")
        check_positive(spec.hessenberg_safety, "safety")
        check_positive(spec.orthogonality_tol, "tol")

        self.operator = spec.operator if spec.operator is not None else operator
        self.b = np.asarray(spec.b, dtype=np.float64)
        self.restart = int(spec.restart)
        self.maxiter = int(spec.maxiter)
        self.preconditioner = spec.preconditioner
        self.convergence = ConvergenceTest(tol=spec.tol, atol=spec.atol)
        self.check_period = int(spec.check_period)
        self.orthogonality_period = int(spec.orthogonality_period)
        self.residual_check_period = int(spec.residual_check_period)
        self.hessenberg_safety = float(spec.hessenberg_safety)
        self.orthogonality_tol = float(spec.orthogonality_tol)
        self.max_restarts_on_detection = int(spec.max_restarts_on_detection)
        self.fault_hook = spec.fault_hook
        if spec.operator_norm is not None:
            self.norm_estimate = float(spec.operator_norm)
        else:
            # Local import: the skeptical driver sits above the engine.
            from repro.skeptical.gmres_sdc import estimate_operator_norm

            self.norm_estimate = estimate_operator_norm(self.operator, self.b)

        self.x_current = (
            np.array(spec.x0, dtype=np.float64, copy=True)
            if spec.x0 is not None
            else np.zeros_like(self.b)
        )
        self.total_iterations = 0
        self.all_residuals: List[float] = []
        self.converged = False
        self.breakdown = False
        self.kernels = canonical_kernel_counters()
        self.target_final = None
        self.attempts = 0
        # Monitor-equivalent bookkeeping (persists across attempts).
        self.obs = 0
        self.checks_run = 0
        self.check_flops = 0.0
        self.detections = 0
        self.detection_restarts = 0
        self.residual_history: List[float] = []
        self.result: Optional[SolveResult] = None
        self._attempt: Optional[_ArnoldiAttempt] = None
        self._finished = False

    def begin_cycle(self):
        while True:
            if self.result is not None:
                return None
            if self._attempt is None and not self._next_attempt():
                self._finalize()
                continue
            req = self._attempt.begin_cycle()
            if req is not _COMPLETE:
                return (req, self.method)
            self._complete_attempt()

    def after_cycle(self):
        a = self._attempt
        if self._tail_abandoned():
            return
        a.end_cycle()

    def tail_begin(self):
        """The x-update half of the cycle tail; ``None`` when the cycle
        was abandoned (no true-residual matvec remains for this lane)."""
        if self._tail_abandoned():
            return None
        self._attempt.update_solution()
        return self._attempt

    def _tail_abandoned(self) -> bool:
        a = self._attempt
        if a.cycle_outcome == "abandoned":
            # The corrupted cycle is discarded; its kernel work and one
            # iteration tick stay in the accounting, and the next
            # attempt restarts from the last valid iterate.
            self.kernels.merge_dict(a.kernels.as_dict())
            self.total_iterations += 1
            self._attempt = None
            return True
        return False

    def _next_attempt(self) -> bool:
        """The head of the ``while attempts <= max_restarts`` driver loop."""
        if self._finished or self.converged:
            return False
        if self.attempts > self.max_restarts_on_detection:
            return False
        self.attempts += 1
        remaining = self.maxiter - self.total_iterations
        if remaining <= 0:
            return False
        self._attempt = _ArnoldiAttempt(self, x=self.x_current, maxiter=remaining)
        # begin_attempt of the skeptical policy: clear the residual
        # history (the monitor counters persist).
        self.residual_history = []
        return True

    def _complete_attempt(self):
        a = self._attempt
        self._attempt = None
        self.total_iterations += a.total_iteration
        self.all_residuals.extend(a.residual_norms)
        self.kernels.merge_dict(a.kernels.as_dict())
        self.target_final = a.target
        self.x_current = np.asarray(a.x)
        self.converged = a.converged
        self.breakdown = a.breakdown
        if self.converged or self.breakdown:
            self._finished = True

    def _finalize(self):
        self.result = SolveResult(
            x=self.x_current,
            converged=self.converged,
            iterations=self.total_iterations,
            residual_norms=self.all_residuals,
            breakdown=self.breakdown,
            detected_faults=self.detections,
            info={
                "detection_restarts": self.detection_restarts,
                "checks_run": float(self.checks_run),
                "check_flops": float(self.check_flops),
                "policy": "restart",
                "operator_norm_estimate": self.norm_estimate,
                "target": self.target_final,
                "kernels": self.kernels.as_dict(),
            },
        )


def _make_state(a: _ArnoldiAttempt, j: int) -> GmresState:
    """The per-iteration :class:`GmresState` of lane-attempt ``a`` at step ``j``."""

    def reconstruct_iterate(j=j, a=a):
        y = a.lsq.solve(j + 1)
        return a.precond.apply_update(a.shim, a.x, a.adapter, y, j + 1)

    return GmresState(
        outer=a.outer,
        inner=j,
        total_iteration=a.total_iteration,
        basis=a.adapter,
        hessenberg=a.lsq.hessenberg,
        residual_norm=a.cycle_residual,
        reconstruct_iterate=reconstruct_iterate,
    )


def _true_residual(a: _ArnoldiAttempt, j: int) -> float:
    """The lazy true-residual of ``SkepticalGmresPolicy.observe``, per lane.

    Non-trivial only at cycle starts (``j == 0``); the reconstruct step
    charges ``basis_update`` (and ``preconditioner`` when present) to
    the attempt's counters exactly as the sequential closure does,
    while the residual matvec itself is uncharged.
    """
    if j != 0:
        return a.cycle_residual
    try:
        y = a.lsq.solve(j + 1)
        x_now = a.precond.apply_update(a.shim, a.x, a.adapter, y, j + 1)
    except np.linalg.LinAlgError:
        return a.cycle_residual
    return float(np.linalg.norm(a.b - np.asarray(ops.matvec(a.operator, x_now))))


def _skeptical_checks(sdc_active, j: int, basis: np.ndarray, hess: np.ndarray):
    """One monitor observation for every active SDC lane of a cohort step.

    Replicates ``SkepticalMonitor.observe`` with the default check set
    in registration order -- finite basis, finite Hessenberg column,
    Hessenberg bound, residual monotonicity (all at ``check_period``),
    then orthogonality and residual consistency at their own periods --
    counting the failing check and skipping the rest, at most one
    detection per observation.  The three cheap array checks are
    evaluated as one vectorized sweep over the due lanes.

    Returns the set of lanes whose abort policy fired (restart response:
    the cycle is abandoned).
    """
    abandoned = set()
    n = basis.shape[2]
    due = [(lane, slot) for lane, slot in sdc_active if lane.obs % lane.check_period == 0]
    if due:
        slots = [slot for _, slot in due]
        if slots[0] == 0 and slots[-1] == len(slots) - 1:
            # Active lanes occupy the leading slots in order, so a due
            # set covering all of them is a plain slice (views, no
            # gather copies) -- the check_period=1 common case.
            rows = slice(0, len(slots))
        else:
            rows = np.asarray(slots, dtype=np.intp)
        fb_pass = np.isfinite(basis[rows, j + 1, :]).all(axis=1)
        fh_pass = np.isfinite(hess[rows, : j + 2, j]).all(axis=1)
        window = hess[rows, : j + 2, : j + 1]
        finite = np.isfinite(window)
        if finite.all():
            max_entry = np.abs(window).max(axis=(1, 2))
        else:
            any_finite = finite.any(axis=(1, 2))
            all_finite = finite.all(axis=(1, 2))
            mx = np.where(finite, np.abs(window), -np.inf).max(axis=(1, 2))
            max_entry = np.where(any_finite, mx, 0.0)
            max_entry = np.where(all_finite, max_entry, np.inf)
        fb_pass = fb_pass.tolist()
        fh_pass = fh_pass.tolist()
        max_entry = max_entry.tolist()
        cost_fb = float(n)
        cost_fh = float(j + 2)
        cost_hb = float((j + 2) * (j + 1))
        for i, (lane, _slot) in enumerate(due):
            threshold = lane.hessenberg_safety * lane.norm_estimate
            me = max_entry[i]
            hb_pass = math.isfinite(me) and me <= threshold
            failed = False
            for passed, cost in (
                (fb_pass[i], cost_fb),
                (fh_pass[i], cost_fh),
                (hb_pass, cost_hb),
            ):
                lane.checks_run += 1
                lane.check_flops += cost
                if not passed:
                    failed = True
                    break
            if not failed:
                # Inline monotonicity_check(history[-4:]) with the
                # default window/allowed_increase (zero cost_flops).
                recent = lane.residual_history[-4:]
                if len(recent) < 2:
                    mono_pass = True
                elif not all(map(math.isfinite, recent)):
                    mono_pass = False
                else:
                    reference = min(recent[:-1])
                    mono_pass = reference <= 0.0 or recent[-1] / reference <= 1.5
                lane.checks_run += 1
                failed = not mono_pass
            if failed:
                lane.detections += 1
                lane.detection_restarts += 1
                abandoned.add(lane)
    # Orthogonality defect, vectorized: batched (D, k, n) @ (D, n, k)
    # Gram matrices are bit-identical to the per-lane ``v.T @ v`` of
    # orthogonality_check (pinned by the parity suite).
    ortho = [
        (lane, slot)
        for lane, slot in sdc_active
        if lane not in abandoned and lane.obs % lane.orthogonality_period == 0
    ]
    if ortho:
        k = j + 2
        slots = [slot for _, slot in ortho]
        if slots[0] == 0 and slots[-1] == len(slots) - 1:
            rows = slice(0, len(slots))
        else:
            rows = np.asarray(slots, dtype=np.intp)
        V = basis[rows, :k, :]
        grams = np.matmul(V, V.transpose(0, 2, 1))
        finite = np.isfinite(grams).all(axis=(1, 2)).tolist()
        defect = np.abs(grams - np.eye(k)).max(axis=(1, 2)).tolist()
        cost = 2.0 * n * k * k
        for i, (lane, _slot) in enumerate(ortho):
            d = defect[i] if finite[i] else float("inf")
            lane.checks_run += 1
            lane.check_flops += cost
            if not (math.isfinite(d) and d <= lane.orthogonality_tol):
                lane.detections += 1
                lane.detection_restarts += 1
                abandoned.add(lane)
    for lane, _slot in sdc_active:
        if lane in abandoned:
            continue
        a = lane._attempt
        if lane.obs % lane.residual_check_period == 0:
            check = residual_consistency_check(a.cycle_residual, _true_residual(a, j))
            lane.checks_run += 1
            lane.check_flops += check.cost_flops
            if not check.passed:
                lane.detections += 1
                lane.detection_restarts += 1
                abandoned.add(lane)
    return abandoned


def _swap_slots(order, s: int, t: int, basis, hess, g, giv_c, giv_s) -> None:
    """Swap two lanes' slots in the cohort stacks.

    Both lanes keep their own data -- the rows are exchanged and each
    attempt's views (basis adapter, least-squares Hessenberg and
    rotated right-hand side) are re-pointed at its new slot, so
    ``end_cycle`` and the reconstruct closures keep seeing live state.
    """
    for stack in (basis, hess, g, giv_c, giv_s):
        tmp = stack[s].copy()
        stack[s] = stack[t]
        stack[t] = tmp
    a, b = order[s], order[t]
    order[s], order[t] = b, a
    for attempt, slot in ((a, t), (b, s)):
        attempt.slot = slot
        attempt.adapter._rows = basis[slot]
        attempt.lsq.hessenberg = hess[slot]
        attempt.lsq._g = g[slot]


def _run_cohort(operator, lanes, m: int, method: str, n: int) -> None:
    """Advance one restart cycle of a cohort of lanes in lockstep.

    All lanes share the cycle dimension ``m`` and Gram-Schmidt
    ``method``; each occupies one slot of the stacked basis
    ``(G, m+1, n)``, Hessenberg ``(G, m+1, m)``, rotated right-hand
    side ``(G, m+1)`` and Givens ``(G, m)`` arrays.  Lanes leave the
    active set on convergence, happy breakdown, non-finite residual,
    skeptical abandonment or budget exhaustion; survivors proceed.
    """
    G = len(lanes)
    basis = np.zeros((G, m + 1, n), dtype=np.float64)
    hess = np.zeros((G, m + 1, m), dtype=np.float64)
    g = np.zeros((G, m + 1), dtype=np.float64)
    giv_c = np.zeros((G, m), dtype=np.float64)
    giv_s = np.zeros((G, m), dtype=np.float64)

    order = []
    for slot, lane in enumerate(lanes):
        a = lane._attempt
        a.attach(slot, basis[slot], hess[slot], g[slot], m)
        order.append(a)
    no_precond = all(a.precond.preconditioner is None for a in order)
    k = G

    for j in range(m):
        if k == 0:
            break
        g_act = k
        # Active lanes always occupy the leading slots (exited lanes
        # are swapped to the tail, see below), so every step indexes
        # the stacks with basic slices -- views, never gather/scatter
        # copies.  Values are identical either way.
        idx = slice(None) if k == G else slice(0, k)
        acts = order[:k] if k < G else order

        # Candidate directions: per-lane preconditioner (charged through
        # the sequential strategy), batched operator application.
        if no_precond:
            Z = basis[idx, j, :]
        else:
            Z = np.empty((g_act, n), dtype=np.float64)
            for i, a in enumerate(acts):
                Z[i] = a.precond.preconditioned_vector(a.shim, a.adapter, j)
        t0 = time.perf_counter()
        W = _matvec_rows(acts, Z)
        share = (time.perf_counter() - t0) / g_act
        for a in acts:
            a.mv_sec += share
            a.mv_calls += 1

        # Orthogonalization span (Gram-Schmidt, norm, happy test,
        # append), batched; one charged call per lane as sequentially.
        t0 = time.perf_counter()
        rows = basis[idx, : j + 1, :]
        W1, coeffs = orthogonalize_many(rows, W, method)
        h_next = np.sqrt(np.matmul(W1[:, None, :], W1[:, :, None])[:, 0, 0])
        cycle_res = np.array([a.cycle_residual for a in acts], dtype=np.float64)
        happy = h_next <= HAPPY_BREAKDOWN_TOL * np.maximum(cycle_res, 1.0)
        not_happy = ~happy
        out = np.zeros_like(W1)
        if not_happy.any():
            # Reciprocal-then-multiply, matching append(w, scale=1/h).
            with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
                out[not_happy] = (1.0 / h_next[not_happy])[:, None] * W1[not_happy]
        basis[idx, j + 1, :] = out
        share = (time.perf_counter() - t0) / g_act
        for a in acts:
            a.ortho_sec += share
            a.ortho_calls += 1

        # Incremental QR of the Hessenberg columns, vectorized over the
        # cohort (uncharged, as in the sequential loop).
        col = np.concatenate([coeffs, h_next[:, None]], axis=1)
        for i in range(j):
            c = giv_c[idx, i]
            s = giv_s[idx, i]
            new_a = c * col[:, i] + s * col[:, i + 1]
            new_b = c * col[:, i + 1] - s * col[:, i]
            col[:, i] = new_a
            col[:, i + 1] = new_b
        c, s = givens_rotation_many(col[:, j], col[:, j + 1])
        giv_c[idx, j] = c
        giv_s[idx, j] = s
        new_a = c * col[:, j] + s * col[:, j + 1]
        new_b = c * col[:, j + 1] - s * col[:, j]
        col[:, j] = new_a
        col[:, j + 1] = new_b
        ga = g[idx, j]
        gb = g[idx, j + 1]
        # ``ga``/``gb`` may be views on the fast path: compute both
        # rotated values before writing either row back.
        new_gj = c * ga + s * gb
        new_gj1 = c * gb - s * ga
        g[idx, j] = new_gj
        g[idx, j + 1] = new_gj1
        hess[idx, : j + 2, j] = col
        residuals = np.abs(new_gj1).tolist()

        # Per-lane bookkeeping and observations.
        sdc_active = []
        for i, a in enumerate(acts):
            a.adapter.n_columns = j + 2
            a.lsq.size = j + 1
            a.inner_used = j + 1
            a.total_iteration += 1
            a.cycle_residual = residuals[i]
            a.residual_norms.append(a.cycle_residual)
            lane = a.lane
            if lane.is_sdc:
                if lane.fault_hook is not None:
                    lane.fault_hook(_make_state(a, j))
                lane.residual_history.append(a.cycle_residual)
                lane.obs += 1
                sdc_active.append((lane, i))
            else:
                policy = lane.policy
                if isinstance(policy, NullPolicy):
                    continue
                if policy.needs_arnoldi_state:
                    policy.observe(_make_state(a, j))
                else:
                    policy.observe(
                        IterationEvent(
                            total_iteration=a.total_iteration,
                            residual_norm=a.cycle_residual,
                            inner=j,
                            outer=a.outer,
                        )
                    )
        abandoned = _skeptical_checks(sdc_active, j, basis, hess) if sdc_active else set()

        # Exits, in the sequential loop's order of precedence.
        happy_l = happy.tolist()
        survive = []
        for i, a in enumerate(acts):
            lane = a.lane
            if lane.is_sdc and lane in abandoned:
                a.cycle_outcome = "abandoned"
                survive.append(False)
                continue
            if not math.isfinite(a.cycle_residual):
                a.breakdown = True
                survive.append(False)
                continue
            # ConvergenceTest.is_met inlined (it is `residual <= target`).
            if a.cycle_residual <= a.target or happy_l[i]:
                survive.append(False)
                continue
            if a.total_iteration >= a.maxiter:
                survive.append(False)
                continue
            survive.append(True)

        # Compact survivors into the leading slots: each exited lane
        # below the new watermark swaps stack rows (and re-points its
        # views) with a survivor above it.  One (m+1)-row copy per
        # exit event instead of per-step gather copies.
        new_k = sum(survive)
        if new_k != k:
            lows = [i for i in range(new_k) if not survive[i]]
            highs = [i for i in range(new_k, k) if survive[i]]
            for s, t in zip(lows, highs):
                _swap_slots(order, s, t, basis, hess, g, giv_c, giv_s)
            k = new_k

    # Flush the deferred per-step kernel charges (identical call
    # counts to the sequential solver; seconds are the evenly split
    # batched spans either way).
    for a in order:
        if a.mv_calls:
            a.kernels.add("matvec", a.mv_sec, calls=a.mv_calls)
            a.mv_sec = 0.0
            a.mv_calls = 0
        if a.ortho_calls:
            a.kernels.add("orthogonalization", a.ortho_sec, calls=a.ortho_calls)
            a.ortho_sec = 0.0
            a.ortho_calls = 0


def run_arnoldi_batch(operator, specs: Sequence) -> List[SolveResult]:
    """Solve ``S`` independent GMRES-family scenarios in lockstep.

    ``specs`` mixes :class:`GmresLaneSpec` (plain/guarded GMRES) and
    :class:`SdcLaneSpec` (skeptical restart GMRES); all right-hand
    sides must share one length, and ``operator`` is shared.  Returns
    one :class:`~repro.krylov.result.SolveResult` per spec, in order,
    bit-identical to the sequential solver's.
    """
    lanes = []
    n = None
    for spec in specs:
        if isinstance(spec, SdcLaneSpec):
            lane = _SdcGmresLane(operator, spec)
        elif isinstance(spec, GmresLaneSpec):
            lane = _PlainGmresLane(operator, spec)
        else:
            raise TypeError(
                f"unsupported lane spec type {type(spec).__name__}"
            )
        if n is None:
            n = lane.b.size
        elif lane.b.size != n:
            raise ValueError("all lanes of a batch must share one vector length")
        lanes.append(lane)
    pool = list(lanes)
    while pool:
        cohorts = {}
        for lane in pool:
            key = lane.begin_cycle()
            if key is not None:
                cohorts.setdefault(key, []).append(lane)
        pool = []
        for (m, method), members in cohorts.items():
            _run_cohort(operator, members, m, method, n)
            _batched_cycle_tail(members)
            pool.extend(members)
    return [lane.result for lane in lanes]


#: Stack the cycle-tail residual matvecs only while the cohort's total
#: row count (``S * n`` = the number of ``reduceat`` segments) stays in
#: the interpreter-bound regime; above this the per-segment cost of the
#: axis-1 ``reduceat`` outweighs the saved per-lane dispatch (measured:
#: 2.6x faster at n=64/S=256, 3x *slower* at n=1024/S=64).
_TAIL_STACK_MAX_SEGMENTS = 16_384


def _batched_cycle_tail(members) -> None:
    """The cycle tail across one cohort, with the residual matvecs stacked.

    Every lane first runs its x-update (per lane, charged nothing, as
    sequentially); the per-lane true-residual matvecs that close each
    cycle are then stacked into one :meth:`CsrMatrix.matvec_block` call
    whenever every remaining lane shares one CsrMatrix operator.  The
    block kernel is bit-identical per row to the per-lane matvec, and
    each lane is charged one matvec call with an even share of the
    batched span -- exactly the accounting contract of the inner-loop
    spans, so batch/sequential parity (which excludes seconds only)
    holds.  Lanes with private operators (fault-injecting wrappers)
    keep their own sequential matvec, preserving fault streams
    draw for draw.

    The stacked path is gated on the block size: ``reduceat`` along
    axis 1 pays a per-segment cost that makes the block kernel *slower*
    than S well-vectorized 1-D matvecs once ``S * n`` leaves the
    interpreter-bound regime (measured crossover ~16k row segments), so
    large-n cohorts keep the per-lane tail.  Both residual forms are
    bit-identical (``b - Ax`` and ``1.0*b + (-1.0)*Ax`` are the same
    IEEE operation), so the gate is a pure time heuristic.
    """
    acts = [a for a in (lane.tail_begin() for lane in members) if a is not None]
    if not acts:
        return
    op0 = acts[0].operator
    if (
        len(acts) > 1
        and isinstance(op0, CsrMatrix)
        and len(acts) * op0.shape[0] <= _TAIL_STACK_MAX_SEGMENTS
        and all(a.operator is op0 for a in acts)
    ):
        t0 = time.perf_counter()
        X = np.array([a.x for a in acts], dtype=np.float64)
        AX = op0.matvec_block(X)
        R = np.array([a.b for a in acts], dtype=np.float64) - AX
        residuals = [float(np.sqrt(R[i] @ R[i])) for i in range(len(acts))]
        share = (time.perf_counter() - t0) / len(acts)
        for a, true_residual in zip(acts, residuals):
            a.kernels.add("matvec", share, calls=1)
            a.finish_cycle(true_residual)
        return
    for a in acts:
        kernels = a.kernels
        t0 = kernels.tick()
        true_residual = ops.norm(
            ops.axpby(1.0, a.b, -1.0, ops.matvec(a.operator, a.x))
        )
        kernels.charge("matvec", t0)
        a.finish_cycle(true_residual)


# ---------------------------------------------------------------------------
# Batched CG
# ---------------------------------------------------------------------------


class _CgLane:
    """Per-lane state of one CG scenario; init mirrors the sequential preamble."""

    def __init__(self, operator, spec: CgLaneSpec):
        if spec.maxiter <= 0:
            raise ValueError("maxiter must be positive")
        self.operator = spec.operator if spec.operator is not None else operator
        self.preconditioner = spec.preconditioner
        self.maxiter = int(spec.maxiter)
        self.policy = compose_policy(spec.policy, spec.iteration_hook, "scalar")
        self.kernels = canonical_kernel_counters()
        self.b = np.asarray(spec.b, dtype=np.float64)
        self.convergence = ConvergenceTest(tol=spec.tol, atol=spec.atol)
        self.target = self.convergence.resolve_target(ops.norm(self.b))
        x = ops.copy_vector(spec.x0) if spec.x0 is not None else ops.zeros_like(self.b)
        self.policy.begin_attempt(x)
        t0 = self.kernels.tick()
        r = ops.axpby(1.0, self.b, -1.0, ops.matvec(self.operator, x))
        self.kernels.charge("matvec", t0)
        t0 = self.kernels.tick()
        z = ops.apply_preconditioner(self.preconditioner, r)
        self.kernels.charge("preconditioner", t0)
        self.p = ops.copy_vector(z)
        self.rz = ops.dot(r, z)
        residual = ops.norm(r)
        self.residual_norms: List[float] = [residual]
        self.alphas: List[float] = []
        self.betas: List[float] = []
        self.converged = self.convergence.is_met(residual, self.target)
        self.breakdown = False
        self.iteration = 0
        self.x = x
        self.r = r
        # Deferred per-solve matvec charges (flushed at finalization).
        self.mv_sec = 0.0
        self.mv_calls = 0


def run_cg_batch(operator, specs: Sequence[CgLaneSpec], *, trace=None) -> List[SolveResult]:
    """Solve ``S`` independent CG scenarios in lockstep.

    Per-scenario convergence masks freeze finished lanes: a converged
    (or broken-down, or budget-exhausted) lane's rows of the stacked
    iterate/residual arrays are never touched again, while active lanes
    continue -- :meth:`ConvergenceTest.is_met_many` drives the mask.

    ``trace(step, advanced_lane_ids, X, R)``, when given, is called
    after every lockstep step with the (read-only by convention)
    stacked iterate and residual arrays; the property-based freeze
    tests hook it.
    """
    lanes = [_CgLane(operator, spec) for spec in specs]
    if not lanes:
        return []
    n = lanes[0].b.size
    for lane in lanes:
        if lane.b.size != n:
            raise ValueError("all lanes of a batch must share one vector length")
    X = np.stack([lane.x for lane in lanes])
    R = np.stack([lane.r for lane in lanes])
    P = np.stack([lane.p for lane in lanes])
    rz = np.array([lane.rz for lane in lanes], dtype=np.float64)
    targets = np.array([lane.target for lane in lanes], dtype=np.float64)
    tester = ConvergenceTest()

    active = [i for i, lane in enumerate(lanes) if not lane.converged]
    step = 0
    while active:
        gi = np.asarray(active, dtype=np.intp)
        g_act = len(active)
        t0 = time.perf_counter()
        act_lanes = [lanes[i] for i in active]
        op0 = act_lanes[0].operator
        if all(lane.operator is op0 for lane in act_lanes):
            AP = batched_matvec(op0, P[gi])
        else:
            AP = np.array(
                [
                    np.asarray(ops.matvec(lane.operator, P[i]), dtype=np.float64)
                    for i, lane in zip(active, act_lanes)
                ]
            )
        share = (time.perf_counter() - t0) / g_act
        for lane in act_lanes:
            lane.mv_sec += share
            lane.mv_calls += 1
        Pg = P[gi]
        p_ap = np.matmul(Pg[:, None, :], AP[:, :, None])[:, 0, 0]
        # Loss of positive definiteness: breakdown before any update.
        bad = (p_ap <= 0.0) | ~np.isfinite(p_ap)
        for k in np.flatnonzero(bad):
            lanes[active[k]].breakdown = True
        sub = np.flatnonzero(~bad)
        ids = gi[sub]
        if ids.size == 0:
            if trace is not None:
                trace(step, [], X, R)
            break
        alpha = rz[ids] / p_ap[sub]
        for k, lane_id in enumerate(ids):
            lanes[lane_id].alphas.append(float(alpha[k]))
        X[ids] = X[ids] + alpha[:, None] * P[ids]
        R_new = R[ids] + (-alpha)[:, None] * AP[sub]
        R[ids] = R_new
        res = np.sqrt(np.matmul(R_new[:, None, :], R_new[:, :, None])[:, 0, 0])
        finite = np.isfinite(res)
        met = tester.is_met_many(res, targets[ids])
        tail = []
        for k, lane_id in enumerate(ids):
            lane = lanes[lane_id]
            lane.iteration += 1
            value = float(res[k])
            lane.residual_norms.append(value)
            if not isinstance(lane.policy, NullPolicy):
                lane.policy.observe(
                    IterationEvent(total_iteration=lane.iteration, residual_norm=value)
                )
            if not finite[k]:
                lane.breakdown = True
            elif met[k]:
                lane.converged = True  # freeze: rows of X/R never touched again
            else:
                tail.append(k)
        next_active = []
        if tail:
            tk = np.asarray(tail, dtype=np.intp)
            tids = ids[tk]
            Z = np.empty((tids.size, n), dtype=np.float64)
            for k, lane_id in enumerate(tids):
                lane = lanes[lane_id]
                t0 = lane.kernels.tick()
                Z[k] = ops.apply_preconditioner(lane.preconditioner, R[lane_id])
                lane.kernels.charge("preconditioner", t0)
            Rg = R[tids]
            rz_next = np.matmul(Rg[:, None, :], Z[:, :, None])[:, 0, 0]
            good = []
            for k, lane_id in enumerate(tids):
                if not np.isfinite(rz_next[k]):
                    lanes[lane_id].breakdown = True
                else:
                    good.append(k)
            if good:
                gk = np.asarray(good, dtype=np.intp)
                ids2 = tids[gk]
                beta = rz_next[gk] / rz[ids2]
                for k, lane_id in enumerate(ids2):
                    lanes[lane_id].betas.append(float(beta[k]))
                rz[ids2] = rz_next[gk]
                P[ids2] = Z[gk] + beta[:, None] * P[ids2]
                next_active = [
                    int(i) for i in ids2 if lanes[i].iteration < lanes[i].maxiter
                ]
        if trace is not None:
            trace(step, [int(i) for i in ids], X, R)
        step += 1
        active = next_active

    results = []
    for i, lane in enumerate(lanes):
        if lane.mv_calls:
            lane.kernels.add("matvec", lane.mv_sec, calls=lane.mv_calls)
            lane.mv_sec = 0.0
            lane.mv_calls = 0
        result = SolveResult(
            x=np.array(X[i], dtype=np.float64, copy=True),
            converged=lane.converged,
            iterations=lane.iteration,
            residual_norms=lane.residual_norms,
            breakdown=lane.breakdown,
            info={
                "alphas": lane.alphas,
                "betas": lane.betas,
                "target": lane.target,
                "kernels": lane.kernels.as_dict(),
            },
        )
        lane.policy.contribute_result(result)
        results.append(result)
    return results
