"""Orthogonalization strategies of the solver engine.

One Arnoldi step must orthogonalize the candidate vector ``w = A z``
against the current Krylov basis and append the normalized result.  The
two families in the toolkit differ in their *communication pattern*,
not their algebra:

* :class:`BlockedOrthogonalizer` -- the baseline blocking kernel:
  :meth:`~repro.krylov.ops.KrylovBasis.orthogonalize` (CGS2 by default,
  classical or modified Gram-Schmidt on request) followed by an
  explicit norm.  Two fused reductions per CGS2 step on the simulated
  runtime.
* :class:`PipelinedOrthogonalizer` -- the latency-reduced kernel of
  p(l)-GMRES: ONE fused non-blocking reduction carries all projection
  coefficients plus ``|w|^2``, the norm of the orthogonalized vector
  comes from the Pythagorean identity (or a second wave when
  reorthogonalization is on), and the strategy counts its reduction
  waves for the E3 synchronization comparison.

Both return ``(coefficients, h_next, happy)`` and leave the basis with
the new vector appended, so the engine core loop is identical either
way.
"""

from __future__ import annotations

import math

import numpy as np

from repro.krylov import ops

__all__ = [
    "Orthogonalizer",
    "BlockedOrthogonalizer",
    "PipelinedOrthogonalizer",
    "GRAM_SCHMIDT_METHODS",
    "HAPPY_BREAKDOWN_TOL",
    "orthogonalize_many",
]

GRAM_SCHMIDT_METHODS = ("cgs2", "classical", "modified")

# Happy-breakdown threshold of the blocking kernel, relative to the
# cycle residual: shared with the batched lockstep path so both decide
# breakdown on exactly the same comparison.
HAPPY_BREAKDOWN_TOL = 1e-14


def orthogonalize_many(rows: np.ndarray, w: np.ndarray, method: str = "cgs2"):
    """One Gram-Schmidt step for a stack of independent lanes.

    ``rows`` is ``(G, k, n)`` (lane ``g``'s first ``k`` basis vectors as
    rows) and ``w`` is ``(G, n)``.  Returns ``(w_orth, coefficients)``
    of shapes ``(G, n)`` and ``(G, k)``.

    Bit-parity contract: per lane this computes exactly what
    ``_DenseKrylovBasis.orthogonalize`` computes -- ``np.matmul`` with
    one stacked batch dimension reduces each lane with the same gemv
    kernel as the sequential ``rows @ w`` / ``coefficients @ rows``
    calls, so the floats are identical (``np.einsum`` is NOT, and must
    not be substituted here).  ``"modified"`` has no batched form; the
    caller falls back per lane.
    """
    if method not in ("cgs2", "classical"):
        raise ValueError(f"no batched kernel for gram_schmidt={method!r}")
    coefficients = np.matmul(rows, w[:, :, None])[:, :, 0]
    w = w - np.matmul(coefficients[:, None, :], rows)[:, 0, :]
    if method == "cgs2":
        correction = np.matmul(rows, w[:, :, None])[:, :, 0]
        w -= np.matmul(correction[:, None, :], rows)[:, 0, :]
        coefficients = coefficients + correction
    return w, coefficients


class Orthogonalizer:
    """Strategy interface: one Arnoldi orthogonalization step."""

    def step(self, engine, basis, w, j: int, cycle_residual: float):
        """Orthogonalize ``w`` against ``basis[:j+1]`` and append.

        Returns ``(coefficients, h_next, happy)`` where ``coefficients``
        is the new Hessenberg column (without the subdiagonal entry),
        ``h_next`` the norm of the orthogonalized vector and ``happy``
        whether a happy breakdown occurred (basis exhausted).
        """
        raise NotImplementedError

    def contribute_info(self, info: dict) -> None:
        """Add strategy-specific entries to ``SolveResult.info``."""


class BlockedOrthogonalizer(Orthogonalizer):
    """Blocking Gram-Schmidt via the :class:`~repro.krylov.ops.KrylovBasis` kernels."""

    def __init__(self, method: str = "cgs2", *, advertise: bool = True):
        if method not in GRAM_SCHMIDT_METHODS:
            raise ValueError(f"gram_schmidt must be one of {GRAM_SCHMIDT_METHODS}")
        self.method = method
        self._advertise = advertise

    def step(self, engine, basis, w, j: int, cycle_residual: float):
        kernels = engine.kernels
        t0 = kernels.tick()
        w, coefficients = basis.orthogonalize(w, method=self.method, k=j + 1)
        h_next = ops.norm(w)
        happy = h_next <= HAPPY_BREAKDOWN_TOL * max(cycle_residual, 1.0)
        if not happy:
            basis.append(w, scale=1.0 / h_next)
        else:
            basis.append_zero()
        kernels.charge("orthogonalization", t0)
        return coefficients, h_next, happy

    def contribute_info(self, info: dict) -> None:
        if self._advertise:
            info["gram_schmidt"] = self.method


class PipelinedOrthogonalizer(Orthogonalizer):
    """Single-reduction (fused-wave) orthogonalization of p(l)-GMRES.

    ``reorthogonalize`` adds a second fused wave (together the two waves
    are exactly CGS2); otherwise the new vector's norm comes from the
    Pythagorean identity at the price of squared-cancellation
    sensitivity.  The instance accumulates :attr:`reduction_waves` and
    :attr:`mgs_equivalent` (what one-coefficient-at-a-time MGS would
    have cost) across the solve.
    """

    def __init__(self, reorthogonalize: bool = True):
        self.reorthogonalize = bool(reorthogonalize)
        self.reduction_waves = 0
        self.mgs_equivalent = 0

    def step(self, engine, basis, w, j: int, cycle_residual: float):
        kernels = engine.kernels
        t0 = kernels.tick()
        projection = basis.fused_projection(w, k=j + 1)
        self.reduction_waves += 1
        self.mgs_equivalent += j + 2
        payload = projection.wait()
        coefficients = np.asarray(payload[: j + 1], dtype=np.float64)
        w_norm_sq = float(payload[j + 1])
        # Form the orthogonalized vector locally (one gemv).
        w = basis.block_axpy(coefficients, w, k=j + 1)
        if self.reorthogonalize:
            projection2 = basis.fused_projection(w, k=j + 1)
            self.reduction_waves += 1
            payload2 = projection2.wait()
            corrections = np.asarray(payload2[: j + 1], dtype=np.float64)
            w = basis.block_axpy(corrections, w, k=j + 1)
            coefficients = coefficients + corrections
            h_next = ops.norm(w)
        else:
            # Pythagorean identity: avoids a second reduction.
            h_next_sq = w_norm_sq - float(coefficients @ coefficients)
            h_next = math.sqrt(max(h_next_sq, 0.0))
        happy = h_next <= 1e-12 * max(math.sqrt(max(w_norm_sq, 0.0)), 1.0)
        if not happy:
            basis.append(w, scale=1.0 / h_next)
        else:
            basis.append_zero()
        kernels.charge("orthogonalization", t0)
        return coefficients, h_next, happy

    def contribute_info(self, info: dict) -> None:
        info["reduction_waves"] = self.reduction_waves
        info["mgs_equivalent_reductions"] = self.mgs_equivalent
