"""The solver engine: one core loop, strategy objects around it.

Historically every Krylov driver in the toolkit (GMRES, FGMRES,
pipelined GMRES, the FT-GMRES outer loop) hand-rolled the same
restarted-Arnoldi machinery -- residual/restart bookkeeping, the
incremental Hessenberg QR, happy-breakdown handling, hook wiring --
and differed only in *how* it orthogonalized, preconditioned and
observed iterations.  :class:`SolverEngine` extracts that machinery
once and delegates the variation points to strategy objects:

* :class:`~repro.krylov.engine.orthogonalize.Orthogonalizer` -- the
  Gram-Schmidt kernel (blocking CGS2/classical/modified, or the fused
  single-reduction wave of the pipelined variants).
* :class:`~repro.krylov.engine.precondition.PreconditionerStrategy` --
  fixed right preconditioning vs flexible (per-iteration, possibly
  unreliable inner solves with the reliable-outer vetting of FT-GMRES).
* :class:`~repro.krylov.engine.convergence.ConvergenceTest` -- the
  stopping rule.
* :class:`~repro.krylov.engine.resilience.ResiliencePolicy` -- per
  iteration observation: user hooks, skeptical monitors, fault
  injection, residual guards.

The public solver functions (:func:`repro.krylov.gmres.gmres` and
friends) are thin wrappers that pick a strategy combination; the
:mod:`repro.krylov.registry` exposes every named combination to the
campaign layer.  The engine reproduces the pre-refactor solvers
bit-for-bit (locked by ``tests/test_engine_parity.py`` and the golden
suite): every floating-point operation happens in the same order the
hand-rolled loops used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.engine.convergence import ConvergenceTest
from repro.krylov.engine.orthogonalize import Orthogonalizer
from repro.krylov.engine.precondition import PreconditionerStrategy
from repro.krylov.engine.resilience import CycleAbandoned, NullPolicy, ResiliencePolicy
from repro.krylov.result import SolveResult
from repro.linalg.blas import HessenbergLsq
from repro.utils.timing import KernelCounters

__all__ = [
    "GmresState",
    "IterationScheme",
    "ArnoldiScheme",
    "SolverEngine",
    "cycle_dimension",
]

# Every engine-produced SolveResult carries these kernels (possibly at
# zero) so downstream consumers see one counter schema across solvers.
CANONICAL_KERNELS = ("matvec", "orthogonalization", "preconditioner", "basis_update")


def canonical_kernel_counters() -> KernelCounters:
    """A :class:`KernelCounters` pre-seeded with the canonical schema."""
    kernels = KernelCounters()
    for kernel in CANONICAL_KERNELS:
        kernels.add(kernel, 0.0, calls=0)
    return kernels


def cycle_dimension(restart: int, maxiter: int, total_iteration: int) -> int:
    """Krylov dimension of the next restart cycle.

    The cycle is capped both by the restart length and by the remaining
    iteration budget.  Shared by the sequential core loop and the
    batched lockstep path (:mod:`repro.krylov.engine.batch`), which
    groups lanes into cohorts by this value.
    """
    return min(int(restart), int(maxiter) - int(total_iteration))


@dataclass
class GmresState:
    """Mutable view of the Arnoldi internals passed to iteration hooks.

    Attributes
    ----------
    outer:
        Restart cycle number (0-based).
    inner:
        Inner iteration within the cycle (0-based).
    total_iteration:
        Global iteration counter across restarts.
    basis:
        The :class:`~repro.krylov.ops.KrylovBasis` of this cycle
        (``inner + 2`` stored vectors after the current step).
        ``basis[i]`` is a writable view of basis vector ``i``;
        ``basis.array`` is the whole block as an ndarray.
    hessenberg:
        The ``(m+1) x m`` Hessenberg array of this cycle.
    residual_norm:
        Current (recurrence-based) residual norm estimate.
    reconstruct_iterate:
        Optional zero-argument callable materializing the *current*
        least-squares iterate (cycle-start ``x`` plus the correction of
        the steps taken so far) -- one back-substitution plus one gemv.
        Resilience checks that need a trusted residual call it instead
        of trusting any recurrence quantity; ``None`` when the scheme
        cannot provide it.
    """

    outer: int
    inner: int
    total_iteration: int
    basis: ops.KrylovBasis
    hessenberg: np.ndarray
    residual_norm: float
    reconstruct_iterate: Optional[object] = None


class IterationScheme:
    """Strategy interface: the iteration recurrence the engine drives."""

    def run(self, engine: "SolverEngine", b, x, target: float) -> SolveResult:
        raise NotImplementedError


class ArnoldiScheme(IterationScheme):
    """Restarted Arnoldi (the GMRES family), strategies injected.

    Parameters
    ----------
    orthogonalizer, preconditioner:
        The strategy objects (see the module docstring).
    restart:
        Maximum Krylov subspace dimension per cycle.
    maxiter:
        Maximum total inner iterations.
    update_on_breakdown:
        Whether to still attempt the cycle's least-squares update after
        a mid-cycle breakdown (historical GMRES behaviour; FGMRES and
        the pipelined variant skip it).
    """

    def __init__(
        self,
        orthogonalizer: Orthogonalizer,
        preconditioner: PreconditionerStrategy,
        *,
        restart: int = 30,
        maxiter: int = 1000,
        update_on_breakdown: bool = False,
    ):
        if restart <= 0 or maxiter <= 0:
            raise ValueError("restart and maxiter must be positive")
        self.orthogonalizer = orthogonalizer
        self.preconditioner = preconditioner
        self.restart = int(restart)
        self.maxiter = int(maxiter)
        self.update_on_breakdown = bool(update_on_breakdown)

    def run(self, engine: "SolverEngine", b, x, target: float) -> SolveResult:
        operator = engine.operator
        kernels = engine.kernels
        policy = engine.policy
        convergence = engine.convergence
        maxiter = self.maxiter

        residual_norms: List[float] = []
        total_iteration = 0
        converged = False
        breakdown = False
        outer = 0

        while total_iteration < maxiter and not converged and not breakdown:
            # Residual of the current iterate.
            t0 = kernels.tick()
            r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
            kernels.charge("matvec", t0)
            beta = ops.norm(r)
            if not residual_norms:
                residual_norms.append(beta)
            if convergence.is_met(beta, target):
                converged = True
                break
            m = cycle_dimension(self.restart, maxiter, total_iteration)
            basis = ops.allocate_basis(b, m + 1)
            basis.append(r, scale=1.0 / beta)
            self.preconditioner.start_cycle(engine, b, m)
            lsq = HessenbergLsq(m, beta)
            inner_used = 0
            cycle_residual = beta

            for j in range(m):
                # Arnoldi step: candidate direction, orthogonalize,
                # incremental QR of the Hessenberg matrix.
                w = self.preconditioner.candidate(engine, basis, j)
                coefficients, h_next, happy = self.orthogonalizer.step(
                    engine, basis, w, j, cycle_residual
                )
                cycle_residual = lsq.append_column(coefficients, h_next)

                inner_used = j + 1
                total_iteration += 1
                residual_norms.append(cycle_residual)

                def reconstruct_iterate(j=j, basis=basis, lsq=lsq, x=x):
                    # Current LS iterate: cycle-start x plus the
                    # correction of the j+1 steps taken so far.
                    y = lsq.solve(j + 1)
                    return self.preconditioner.apply_update(engine, x, basis, y, j + 1)

                policy.observe(
                    GmresState(
                        outer=outer,
                        inner=j,
                        total_iteration=total_iteration,
                        basis=basis,
                        hessenberg=lsq.hessenberg,
                        residual_norm=cycle_residual,
                        reconstruct_iterate=reconstruct_iterate,
                    )
                )

                if not math.isfinite(cycle_residual):
                    breakdown = True
                    break
                if convergence.is_met(cycle_residual, target) or happy:
                    break
                if total_iteration >= maxiter:
                    break

            # Form the cycle's correction: solve the small least-squares
            # system and map it back through the preconditioner strategy.
            if inner_used > 0 and (self.update_on_breakdown or not breakdown):
                try:
                    y = lsq.solve(inner_used)
                except np.linalg.LinAlgError:
                    breakdown = True
                    y = None
                if y is not None and np.all(np.isfinite(y)):
                    x = self.preconditioner.apply_update(engine, x, basis, y, inner_used)
                else:
                    breakdown = True

            # True residual check at the cycle boundary.
            t0 = kernels.tick()
            true_residual = ops.norm(ops.axpby(1.0, b, -1.0, ops.matvec(operator, x)))
            kernels.charge("matvec", t0)
            residual_norms[-1] = true_residual
            if convergence.is_met(true_residual, target):
                converged = True
            outer += 1

        info = {"restarts": outer, "target": target}
        self.preconditioner.contribute_info(info)
        self.orthogonalizer.contribute_info(info)
        info["kernels"] = kernels.as_dict()
        return SolveResult(
            x=x,
            converged=converged,
            iterations=total_iteration,
            residual_norms=residual_norms,
            breakdown=breakdown,
            info=info,
        )


class SolverEngine:
    """One configured solve: operator + scheme + convergence + policy.

    The engine owns the pieces every solver shares -- the kernel
    counters (pre-seeded with the canonical kernel names so all solvers
    report one schema), target resolution and initial-guess handling --
    and delegates the iteration recurrence to its
    :class:`IterationScheme`.

    Engines are single-shot: build one per solve (strategy objects
    carry per-solve state such as the flexible ``Z`` block or the
    pipelined reduction-wave counters).
    """

    def __init__(
        self,
        operator,
        scheme: IterationScheme,
        *,
        convergence: Optional[ConvergenceTest] = None,
        policy: Optional[ResiliencePolicy] = None,
    ):
        self.operator = operator
        self.scheme = scheme
        self.convergence = convergence if convergence is not None else ConvergenceTest()
        self.policy = policy if policy is not None else NullPolicy()
        self.kernels = canonical_kernel_counters()

    def solve(self, b, x0=None) -> SolveResult:
        """Solve ``A x = b`` and return the scheme's :class:`SolveResult`."""
        target = self.convergence.resolve_target(ops.norm(b))
        x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
        self.policy.begin_attempt(x)
        try:
            result = self.scheme.run(self, b, x, target)
        except CycleAbandoned as abandoned:
            # The attempt's kernel work travels with the exception so
            # retrying callers can keep their accounting complete.
            abandoned.kernels = self.kernels.as_dict()
            raise
        self.policy.contribute_result(result)
        return result
