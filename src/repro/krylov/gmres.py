"""Restarted GMRES with right preconditioning and iteration hooks.

This is the baseline nonsymmetric solver of the toolkit.  It is written
against the :mod:`repro.krylov.ops` dispatch layer so the same code
runs sequentially (NumPy vectors) and on the simulated distributed
runtime.  The Arnoldi basis is a preallocated
:class:`~repro.krylov.ops.KrylovBasis` block, and orthogonalization is
classical Gram-Schmidt with reorthogonalization (CGS2) by default: two
BLAS-2 kernel calls per pass (``h = V_jᵀ w; w -= V_j h``) instead of
the ``O(j)`` interpreted-Python dot/axpy round trips of one-vector-at-
a-time MGS, and at least as robust numerically.

Two extension points matter for the resilience work:

* ``iteration_hook(state)`` is called once per inner iteration with a
  :class:`GmresState` view of the solver internals.  The skeptical
  monitor uses it both to *inject* faults (writes into the basis or
  Hessenberg matrix) and to *check* invariants.  ``state.basis[i]``
  remains a writable view of basis vector ``i``, and ``state.basis``
  additionally exposes the whole block as an ndarray (``.array``).
* ``operator`` may be any callable, which is how the SRP layer slips an
  unreliable operator underneath the solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.result import SolveResult
from repro.linalg.blas import back_substitution, rotate_hessenberg_column
from repro.utils.timing import KernelCounters

__all__ = ["gmres", "GmresState"]

_GRAM_SCHMIDT_METHODS = ("cgs2", "classical", "modified")


@dataclass
class GmresState:
    """Mutable view of the GMRES internals passed to iteration hooks.

    Attributes
    ----------
    outer:
        Restart cycle number (0-based).
    inner:
        Inner iteration within the cycle (0-based).
    total_iteration:
        Global iteration counter across restarts.
    basis:
        The :class:`~repro.krylov.ops.KrylovBasis` of this cycle
        (``inner + 2`` stored vectors after the current step).
        ``basis[i]`` is a writable view of vector ``i``; ``basis.array``
        is the whole block as an ``(n, restart+1)`` ndarray.
    hessenberg:
        The ``(m+1) x m`` Hessenberg array of this cycle.
    residual_norm:
        Current (recurrence-based) residual norm estimate.
    """

    outer: int
    inner: int
    total_iteration: int
    basis: ops.KrylovBasis
    hessenberg: np.ndarray
    residual_norm: float


def gmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 1000,
    preconditioner=None,
    iteration_hook: Optional[Callable[[GmresState], None]] = None,
    gram_schmidt: str = "cgs2",
) -> SolveResult:
    """Solve ``A x = b`` with restarted, right-preconditioned GMRES.

    Parameters
    ----------
    operator:
        The matrix ``A`` (:class:`~repro.linalg.csr.CsrMatrix`, dense
        ndarray, callable, or
        :class:`~repro.linalg.distributed.DistributedRowMatrix`).
    b:
        Right-hand side (NumPy vector or
        :class:`~repro.linalg.distributed.DistributedVector`).
    x0:
        Initial guess (defaults to zero).
    tol, atol:
        Convergence when ``|r| <= max(tol * |b|, atol)``.
    restart:
        Maximum Krylov subspace dimension per cycle.
    maxiter:
        Maximum total inner iterations.
    preconditioner:
        Right preconditioner ``M`` applied as ``A M^{-1} y = b``.
    iteration_hook:
        Callback invoked after every inner iteration with a
        :class:`GmresState`; may mutate ``basis``/``hessenberg`` (that
        is how faults are injected for the SDC experiments).
    gram_schmidt:
        ``"cgs2"`` (default; classical Gram-Schmidt with
        reorthogonalization, the blocked BLAS-2 kernel),
        ``"classical"`` (one CGS pass) or ``"modified"`` (legacy
        one-vector-at-a-time MGS, kept for comparison runs).

    Returns
    -------
    SolveResult
        ``info["kernels"]`` carries per-kernel call counts and
        wall-clock seconds (matvec, orthogonalization, preconditioner).
    """
    if restart <= 0:
        raise ValueError("restart must be positive")
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    if gram_schmidt not in _GRAM_SCHMIDT_METHODS:
        raise ValueError(f"gram_schmidt must be one of {_GRAM_SCHMIDT_METHODS}")

    kernels = KernelCounters()
    b_norm = ops.norm(b)
    target = max(tol * b_norm, atol)
    if target == 0.0:
        target = tol

    x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
    residual_norms: List[float] = []
    total_iteration = 0
    breakdown = False
    converged = False

    outer = 0
    while total_iteration < maxiter and not converged and not breakdown:
        # Residual of the current iterate.
        t0 = kernels.tick()
        r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
        kernels.charge("matvec", t0)
        beta = ops.norm(r)
        if not residual_norms:
            residual_norms.append(beta)
        if beta <= target:
            converged = True
            break
        m = min(restart, maxiter - total_iteration)
        basis = ops.allocate_basis(b, m + 1)
        basis.append(r, scale=1.0 / beta)
        hessenberg = np.zeros((m + 1, m), dtype=np.float64)
        givens: List[tuple] = []
        g = [0.0] * (m + 1)
        g[0] = beta
        inner_used = 0
        cycle_residual = beta

        for j in range(m):
            # Arnoldi step with right preconditioning: w = A M^{-1} v_j.
            if preconditioner is None:
                z = basis.column(j)
            else:
                t0 = kernels.tick()
                z = ops.apply_preconditioner(preconditioner, basis.column(j))
                kernels.charge("preconditioner", t0)
            t0 = kernels.tick()
            w = ops.matvec(operator, z)
            t1 = kernels.tick()
            w, coefficients = basis.orthogonalize(w, method=gram_schmidt, k=j + 1)
            h_next = ops.norm(w)
            happy = h_next <= 1e-14 * max(cycle_residual, 1.0)
            if not happy:
                basis.append(w, scale=1.0 / h_next)
            else:
                basis.append_zero()
            t2 = kernels.tick()
            kernels.add("matvec", t1 - t0)
            kernels.add("orthogonalization", t2 - t1)

            # Incremental QR of the Hessenberg matrix: rotate the new
            # column, store it, update the least-squares RHS.
            col = coefficients.tolist()
            col.append(h_next)
            cycle_residual = rotate_hessenberg_column(col, g, givens, j)
            hessenberg[: j + 2, j] = col

            inner_used = j + 1
            total_iteration += 1
            residual_norms.append(cycle_residual)

            if iteration_hook is not None:
                iteration_hook(
                    GmresState(
                        outer=outer,
                        inner=j,
                        total_iteration=total_iteration,
                        basis=basis,
                        hessenberg=hessenberg,
                        residual_norm=cycle_residual,
                    )
                )

            if not math.isfinite(cycle_residual):
                breakdown = True
                break
            if cycle_residual <= target or happy:
                break
            if total_iteration >= maxiter:
                break

        # Form the cycle's correction: solve the small least-squares system.
        if inner_used > 0:
            try:
                y = back_substitution(hessenberg[:inner_used, :inner_used], g[:inner_used])
            except np.linalg.LinAlgError:
                breakdown = True
                y = None
            if y is not None and np.all(np.isfinite(y)):
                t0 = kernels.tick()
                update = basis.lincomb(y, k=inner_used)
                kernels.charge("basis_update", t0)
                if preconditioner is not None:
                    t0 = kernels.tick()
                    update = ops.apply_preconditioner(preconditioner, update)
                    kernels.charge("preconditioner", t0)
                x = ops.axpby(1.0, x, 1.0, update)
            else:
                breakdown = True

        # True residual check at the cycle boundary.
        t0 = kernels.tick()
        true_residual = ops.norm(ops.axpby(1.0, b, -1.0, ops.matvec(operator, x)))
        kernels.charge("matvec", t0)
        residual_norms[-1] = true_residual
        if true_residual <= target:
            converged = True
        outer += 1

    return SolveResult(
        x=x,
        converged=converged,
        iterations=total_iteration,
        residual_norms=residual_norms,
        breakdown=breakdown,
        info={
            "restarts": outer,
            "target": target,
            "gram_schmidt": gram_schmidt,
            "kernels": kernels.as_dict(),
        },
    )
