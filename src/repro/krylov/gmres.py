"""Restarted GMRES with right preconditioning and iteration hooks.

This is the baseline nonsymmetric solver of the toolkit, now a thin
wrapper over the :mod:`repro.krylov.engine`: the restarted-Arnoldi
machinery lives in :class:`~repro.krylov.engine.core.ArnoldiScheme`,
and this configuration pairs it with the blocking
:class:`~repro.krylov.engine.orthogonalize.BlockedOrthogonalizer`
(classical Gram-Schmidt with reorthogonalization, CGS2, by default) and
fixed right preconditioning.  The same code runs sequentially (NumPy
vectors) and on the simulated distributed runtime.

Two extension points matter for the resilience work:

* ``iteration_hook(state)`` is called once per inner iteration with a
  :class:`GmresState` view of the solver internals.  The skeptical
  monitor uses it both to *inject* faults (writes into the basis or
  Hessenberg matrix) and to *check* invariants.  ``state.basis[i]``
  remains a writable view of basis vector ``i``, and ``state.basis``
  additionally exposes the whole block as an ndarray (``.array``).
* ``operator`` may be any callable, which is how the SRP layer slips an
  unreliable operator underneath the solver.

Named engine configurations (this one included) are exposed to the
campaign layer by :mod:`repro.krylov.registry`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.krylov.engine import (
    ArnoldiScheme,
    BlockedOrthogonalizer,
    ConvergenceTest,
    GmresState,
    RightPreconditioner,
    SolverEngine,
)
from repro.krylov.engine.resilience import compose_policy
from repro.krylov.result import SolveResult

__all__ = ["gmres", "GmresState"]


def gmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 1000,
    preconditioner=None,
    iteration_hook: Optional[Callable[[GmresState], None]] = None,
    gram_schmidt: str = "cgs2",
    policy=None,
) -> SolveResult:
    """Solve ``A x = b`` with restarted, right-preconditioned GMRES.

    Parameters
    ----------
    operator:
        The matrix ``A`` (:class:`~repro.linalg.csr.CsrMatrix`, dense
        ndarray, callable, or
        :class:`~repro.linalg.distributed.DistributedRowMatrix`).
    b:
        Right-hand side (NumPy vector or
        :class:`~repro.linalg.distributed.DistributedVector`).
    x0:
        Initial guess (defaults to zero).
    tol, atol:
        Convergence when ``|r| <= max(tol * |b|, atol)``.
    restart:
        Maximum Krylov subspace dimension per cycle.
    maxiter:
        Maximum total inner iterations.
    preconditioner:
        Right preconditioner ``M`` applied as ``A M^{-1} y = b``.
    iteration_hook:
        Callback invoked after every inner iteration with a
        :class:`GmresState`; may mutate ``basis``/``hessenberg`` (that
        is how faults are injected for the SDC experiments).
    gram_schmidt:
        ``"cgs2"`` (default; classical Gram-Schmidt with
        reorthogonalization, the blocked BLAS-2 kernel),
        ``"classical"`` (one CGS pass) or ``"modified"`` (legacy
        one-vector-at-a-time MGS, kept for comparison runs).
    policy:
        Optional :class:`~repro.krylov.engine.resilience.ResiliencePolicy`
        observing every iteration; composed with ``iteration_hook``
        when both are given.

    Returns
    -------
    SolveResult
        ``info["kernels"]`` carries per-kernel call counts and
        wall-clock seconds (matvec, orthogonalization, preconditioner).
    """
    if restart <= 0:
        raise ValueError("restart must be positive")
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    engine = SolverEngine(
        operator,
        ArnoldiScheme(
            BlockedOrthogonalizer(gram_schmidt),
            RightPreconditioner(preconditioner),
            restart=restart,
            maxiter=maxiter,
            update_on_breakdown=True,
        ),
        convergence=ConvergenceTest(tol=tol, atol=atol),
        policy=compose_policy(policy, iteration_hook, "state"),
    )
    return engine.solve(b, x0)
