"""Restarted GMRES with right preconditioning and iteration hooks.

This is the baseline nonsymmetric solver of the toolkit.  It is written
against the :mod:`repro.krylov.ops` dispatch layer so the same code
runs sequentially (NumPy vectors) and on the simulated distributed
runtime.  Two extension points matter for the resilience work:

* ``iteration_hook(state)`` is called once per inner iteration with a
  :class:`GmresState` view of the solver internals.  The skeptical
  monitor uses it both to *inject* faults (writes into the basis or
  Hessenberg matrix) and to *check* invariants.
* ``operator`` may be any callable, which is how the SRP layer slips an
  unreliable operator underneath the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.result import SolveResult
from repro.linalg.blas import apply_givens, back_substitution, givens_rotation

__all__ = ["gmres", "GmresState"]


@dataclass
class GmresState:
    """Mutable view of the GMRES internals passed to iteration hooks.

    Attributes
    ----------
    outer:
        Restart cycle number (0-based).
    inner:
        Inner iteration within the cycle (0-based).
    total_iteration:
        Global iteration counter across restarts.
    basis:
        List of Krylov basis vectors built so far in this cycle
        (``inner + 2`` entries after the current step).
    hessenberg:
        The ``(m+1) x m`` Hessenberg array of this cycle.
    residual_norm:
        Current (recurrence-based) residual norm estimate.
    """

    outer: int
    inner: int
    total_iteration: int
    basis: List[Any]
    hessenberg: np.ndarray
    residual_norm: float


def gmres(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    restart: int = 30,
    maxiter: int = 1000,
    preconditioner=None,
    iteration_hook: Optional[Callable[[GmresState], None]] = None,
    gram_schmidt: str = "modified",
) -> SolveResult:
    """Solve ``A x = b`` with restarted, right-preconditioned GMRES.

    Parameters
    ----------
    operator:
        The matrix ``A`` (:class:`~repro.linalg.csr.CsrMatrix`, dense
        ndarray, callable, or
        :class:`~repro.linalg.distributed.DistributedRowMatrix`).
    b:
        Right-hand side (NumPy vector or
        :class:`~repro.linalg.distributed.DistributedVector`).
    x0:
        Initial guess (defaults to zero).
    tol, atol:
        Convergence when ``|r| <= max(tol * |b|, atol)``.
    restart:
        Maximum Krylov subspace dimension per cycle.
    maxiter:
        Maximum total inner iterations.
    preconditioner:
        Right preconditioner ``M`` applied as ``A M^{-1} y = b``.
    iteration_hook:
        Callback invoked after every inner iteration with a
        :class:`GmresState`; may mutate ``basis``/``hessenberg`` (that
        is how faults are injected for the SDC experiments).
    gram_schmidt:
        ``"modified"`` or ``"classical"`` orthogonalization.

    Returns
    -------
    SolveResult
    """
    if restart <= 0:
        raise ValueError("restart must be positive")
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    if gram_schmidt not in ("modified", "classical"):
        raise ValueError("gram_schmidt must be 'modified' or 'classical'")

    b_norm = ops.norm(b)
    target = max(tol * b_norm, atol)
    if target == 0.0:
        target = tol

    x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
    residual_norms: List[float] = []
    total_iteration = 0
    breakdown = False
    converged = False

    outer = 0
    while total_iteration < maxiter and not converged and not breakdown:
        # Residual of the current iterate.
        r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
        beta = ops.norm(r)
        if not residual_norms:
            residual_norms.append(beta)
        if beta <= target:
            converged = True
            break
        m = min(restart, maxiter - total_iteration)
        basis: List[Any] = [ops.scale(1.0 / beta, r)]
        hessenberg = np.zeros((m + 1, m), dtype=np.float64)
        givens: List[tuple] = []
        g = np.zeros(m + 1, dtype=np.float64)
        g[0] = beta
        inner_used = 0
        cycle_residual = beta

        for j in range(m):
            # Arnoldi step with right preconditioning: w = A M^{-1} v_j.
            z = ops.apply_preconditioner(preconditioner, basis[j])
            w = ops.matvec(operator, z)
            for i in range(j + 1):
                hessenberg[i, j] = ops.dot(basis[i], w)
                w = ops.axpby(1.0, w, -hessenberg[i, j], basis[i])
            h_next = ops.norm(w)
            hessenberg[j + 1, j] = h_next
            happy = h_next <= 1e-14 * max(cycle_residual, 1.0)
            if not happy:
                basis.append(ops.scale(1.0 / h_next, w))
            else:
                basis.append(ops.zeros_like(w))

            # Apply previous Givens rotations to the new column.
            for i, (c, s) in enumerate(givens):
                hessenberg[i, j], hessenberg[i + 1, j] = apply_givens(
                    c, s, hessenberg[i, j], hessenberg[i + 1, j]
                )
            c, s = givens_rotation(hessenberg[j, j], hessenberg[j + 1, j])
            givens.append((c, s))
            hessenberg[j, j], hessenberg[j + 1, j] = apply_givens(
                c, s, hessenberg[j, j], hessenberg[j + 1, j]
            )
            g[j], g[j + 1] = apply_givens(c, s, g[j], g[j + 1])
            cycle_residual = abs(g[j + 1])

            inner_used = j + 1
            total_iteration += 1
            residual_norms.append(cycle_residual)

            if iteration_hook is not None:
                iteration_hook(
                    GmresState(
                        outer=outer,
                        inner=j,
                        total_iteration=total_iteration,
                        basis=basis,
                        hessenberg=hessenberg,
                        residual_norm=cycle_residual,
                    )
                )

            if not np.isfinite(cycle_residual):
                breakdown = True
                break
            if cycle_residual <= target or happy:
                break
            if total_iteration >= maxiter:
                break

        # Form the cycle's correction: solve the small least-squares system.
        if inner_used > 0:
            try:
                y = back_substitution(hessenberg[:inner_used, :inner_used], g[:inner_used])
            except np.linalg.LinAlgError:
                breakdown = True
                y = None
            if y is not None and np.all(np.isfinite(y)):
                update = ops.zeros_like(x)
                for i in range(inner_used):
                    update = ops.axpby(1.0, update, float(y[i]), basis[i])
                update = ops.apply_preconditioner(preconditioner, update)
                x = ops.axpby(1.0, x, 1.0, update)
            else:
                breakdown = True

        # True residual check at the cycle boundary.
        true_residual = ops.norm(ops.axpby(1.0, b, -1.0, ops.matvec(operator, x)))
        residual_norms[-1] = true_residual
        if true_residual <= target:
            converged = True
        outer += 1

    return SolveResult(
        x=x,
        converged=converged,
        iterations=total_iteration,
        residual_norms=residual_norms,
        breakdown=breakdown,
        info={
            "restarts": outer,
            "target": target,
            "gram_schmidt": gram_schmidt,
        },
    )
