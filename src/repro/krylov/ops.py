"""Type-dispatch layer and block kernels for the Krylov solvers.

The solvers are written once against these helpers and therefore run
unchanged on

* plain NumPy vectors with a :class:`~repro.linalg.csr.CsrMatrix`,
  dense ndarray or callable operator (sequential execution), and
* :class:`~repro.linalg.distributed.DistributedVector` operands with a
  :class:`~repro.linalg.distributed.DistributedRowMatrix` operator
  (execution over any :class:`~repro.comm.base.BaseCommunicator`
  backend -- the simulated MPI runtime, where every global reduction
  pays the collective cost of the machine model, or the shared-memory
  multiprocess runtime, where the reductions are real inter-process
  collectives with the identical ascending-rank reduction order).

Besides the single-vector helpers, this module provides the
:class:`KrylovBasis` block store used by every Arnoldi-type solver: the
basis is preallocated as one contiguous 2-D array, so orthogonalization
is two BLAS-2 calls (``h = V_kᵀ w; w -= V_k h``, run twice for CGS2)
instead of an interpreted-Python loop of ``j`` dot/axpy round trips,
and the restart correction is a single ``V_k @ y``.  Fault injectors
keep working because :meth:`KrylovBasis.column` returns a writable view
of the stored vector (sequential execution), exactly like the mutable
list entries of the pre-block implementation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.linalg.csr import CsrMatrix
from repro.linalg.distributed import DistributedRowMatrix, DistributedVector
from repro.simmpi.ops import SUM
from repro.simmpi.requests import CompletedRequest

__all__ = [
    "is_distributed",
    "as_float",
    "matvec",
    "dot",
    "idot",
    "fused_dots",
    "norm",
    "axpby",
    "scale",
    "copy_vector",
    "zeros_like",
    "to_local",
    "apply_preconditioner",
    "vector_size",
    "KrylovBasis",
    "allocate_basis",
]

Operator = Union[CsrMatrix, np.ndarray, Callable, DistributedRowMatrix]
Vector = Union[np.ndarray, DistributedVector]


def is_distributed(vector: Any) -> bool:
    """Whether ``vector`` is a distributed vector."""
    return isinstance(vector, DistributedVector)


def as_float(x) -> np.ndarray:
    """Coerce to a floating ndarray, preserving a reduced compute dtype.

    This is the dtype-dispatch point of the kernel layer: float64 input
    passes through as the usual no-op view (so the default path is
    bit-identical to the old blanket ``np.asarray(x, dtype=np.float64)``
    coercions), float32 input *stays* float32 instead of being silently
    upcast, float16 widens to float32 (no kernel here accumulates in
    half precision), and everything else -- ints, lists, generic
    objects -- coerces to float64 exactly as before.
    """
    arr = np.asarray(x)
    if arr.dtype == np.float64 or arr.dtype == np.float32:
        return arr
    if arr.dtype == np.float16:
        return arr.astype(np.float32)
    return np.asarray(arr, dtype=np.float64)


def matvec(operator: Operator, x: Vector) -> Vector:
    """Apply the operator to a vector, dispatching on types."""
    if isinstance(x, DistributedVector):
        if isinstance(operator, DistributedRowMatrix):
            return operator.matvec(x)
        if callable(operator):
            return operator(x)
        raise TypeError(
            "distributed vectors require a DistributedRowMatrix or callable operator"
        )
    if isinstance(operator, CsrMatrix):
        return operator.matvec(as_float(x))
    if isinstance(operator, np.ndarray):
        return operator @ as_float(x)
    if callable(operator):
        return operator(x)
    raise TypeError(f"unsupported operator type {type(operator).__name__}")


def dot(x: Vector, y: Vector) -> float:
    """Global inner product."""
    if isinstance(x, DistributedVector):
        return x.dot(y)
    return float(as_float(x) @ as_float(y))


def idot(x: Vector, y: Vector):
    """Non-blocking global inner product.

    Returns an object with ``.wait()``; sequential vectors return a
    pre-completed request so solver code can be written uniformly.
    """
    if isinstance(x, DistributedVector):
        return x.idot(y)
    return CompletedRequest(dot(x, y), operation="idot")


def fused_dots(pairs: Sequence[Tuple[Vector, Vector]]):
    """Start several inner products as ONE non-blocking reduction.

    ``pairs`` is a sequence of ``(x, y)`` vector pairs; the returned
    request's ``wait()`` yields a 1-D array with one dot product per
    pair.  On the simulated runtime this is a single ``iallreduce`` of
    the stacked local partial sums -- the fused reduction wave the
    pipelined solvers are built around -- instead of one collective per
    inner product.
    """
    first = pairs[0][0]
    if isinstance(first, DistributedVector):
        comm = first.comm
        local = np.empty(len(pairs), dtype=np.float64)
        for i, (x, y) in enumerate(pairs):
            local[i] = float(x.local @ y.local)
            comm.compute(2.0 * x.local_size)
        return comm.iallreduce(local, op=SUM)
    values = np.array([dot(x, y) for x, y in pairs], dtype=np.float64)
    return CompletedRequest(values, operation="fused_dots")


def norm(x: Vector) -> float:
    """Global 2-norm."""
    if isinstance(x, DistributedVector):
        return x.norm()
    x = as_float(x)
    # sqrt(x . x) is what np.linalg.norm computes for 1-D input, minus
    # the generic-dispatch overhead that matters at small n.
    return float(np.sqrt(x @ x))


def axpby(alpha: float, x: Vector, beta: float, y: Vector) -> Vector:
    """Return ``alpha * x + beta * y`` as a new vector."""
    if isinstance(x, DistributedVector):
        result = x.copy().scale(alpha)
        result.axpy(beta, y)
        return result
    # Python-float scalars do not upcast float32 arrays under NumPy
    # promotion, so a reduced-precision pair stays reduced here.
    return alpha * as_float(x) + beta * as_float(y)


def scale(alpha: float, x: Vector) -> Vector:
    """Return ``alpha * x`` as a new vector."""
    if isinstance(x, DistributedVector):
        return x.copy().scale(alpha)
    return alpha * as_float(x)


def copy_vector(x: Vector) -> Vector:
    """Deep copy."""
    if isinstance(x, DistributedVector):
        return x.copy()
    return as_float(x).copy()


def zeros_like(x: Vector) -> Vector:
    """A zero vector with the same shape/distribution as ``x``."""
    if isinstance(x, DistributedVector):
        return DistributedVector.zeros_like(x)
    return np.zeros_like(as_float(x))


def to_local(x: Vector) -> np.ndarray:
    """Return the local (or full, for sequential) NumPy data of ``x``."""
    if isinstance(x, DistributedVector):
        return x.local
    return as_float(x)


def vector_size(x: Vector) -> int:
    """Global length of the vector."""
    if isinstance(x, DistributedVector):
        return x.global_size
    return int(np.asarray(x).size)


class KrylovBasis:
    """Preallocated block of Krylov basis vectors with BLAS-2 kernels.

    The vectors live in one contiguous ``(max_vectors, n)`` array (row
    ``j`` is vector ``j``, so every vector is a contiguous slice; the
    column-oriented view of the same memory is exposed as
    :attr:`array`).  All orthogonalization traffic goes through two
    block kernels --

    * :meth:`block_dot`: ``h = V_kᵀ w`` (one gemv; on the simulated
      runtime one fused allreduce of the ``k`` coefficients), and
    * :meth:`block_axpy`: ``w -= V_k h`` (one gemv);

    classical Gram-Schmidt with reorthogonalization (CGS2) is these two
    calls run twice.  :meth:`lincomb` forms the restart correction
    ``V_k y`` with a single gemv.

    The fault-injection surface is preserved: ``basis[j]`` /
    :meth:`column` return a *writable, contiguous* NumPy view of vector
    ``j`` in the sequential case, so hooks that corrupt
    ``state.basis[i]`` in place keep hitting the live solver state.
    """

    def __init__(self, max_vectors: int, local_size: int, dtype=np.float64):
        self._rows = np.zeros((int(max_vectors), int(local_size)), dtype=dtype)
        self.n_columns = 0

    @property
    def dtype(self) -> np.dtype:
        """Dtype the basis block is stored (and orthogonalized) in."""
        return self._rows.dtype

    # -- storage -------------------------------------------------------
    @property
    def max_vectors(self) -> int:
        """Capacity of the block (``restart + 1`` for GMRES)."""
        return self._rows.shape[0]

    @property
    def array(self) -> np.ndarray:
        """The basis as an ``(n_local, max_vectors)`` ndarray view.

        Columns are basis vectors (the ``V`` of the textbooks); the
        view shares memory with the solver state, so reads always see
        the current basis and writes corrupt it -- which is exactly
        what fault-injection campaigns need.
        """
        return self._rows.T

    def matrix(self, k: Optional[int] = None) -> np.ndarray:
        """View of the first ``k`` (default: all stored) basis vectors
        as the columns of an ``(n_local, k)`` array."""
        k = self.n_columns if k is None else int(k)
        return self._rows[:k].T

    def local_row(self, j: int) -> np.ndarray:
        """Writable, contiguous local storage of vector ``j``."""
        return self._rows[j]

    def __len__(self) -> int:
        return self.n_columns

    def __getitem__(self, j: int):
        return self.column(j)

    def __iter__(self) -> Iterator:
        for j in range(self.n_columns):
            yield self.column(j)

    def append_zero(self):
        """Store a zero vector (the happy-breakdown placeholder)."""
        self._rows[self.n_columns].fill(0.0)
        self.n_columns += 1
        return self.column(self.n_columns - 1)

    # -- implemented by subclasses -------------------------------------
    def column(self, j: int):
        """Vector ``j`` in the solver's native vector type."""
        raise NotImplementedError

    def append(self, vec, scale: float = 1.0):
        """Store ``scale * vec`` as the next basis vector."""
        raise NotImplementedError

    def block_dot(self, w, k: Optional[int] = None) -> np.ndarray:
        """``V_kᵀ w`` as a length-``k`` array (one fused reduction)."""
        raise NotImplementedError

    def block_axpy(self, coefficients: np.ndarray, w, k: Optional[int] = None):
        """``w - V_k @ coefficients`` as a new vector (one gemv)."""
        raise NotImplementedError

    def lincomb(self, coefficients: np.ndarray, k: Optional[int] = None):
        """``V_k @ coefficients`` as a new vector."""
        raise NotImplementedError

    def fused_projection(self, w, k: Optional[int] = None):
        """Start ONE reduction producing ``[V_kᵀ w, |w|²]``.

        Returns a request whose ``wait()`` yields a length ``k + 1``
        array: the ``k`` CGS coefficients followed by the squared norm
        of ``w``.  This is the single synchronization wave of the
        latency-tolerant GMRES variants.
        """
        raise NotImplementedError

    # -- shared orthogonalization kernels ------------------------------
    def orthogonalize(self, w, method: str = "cgs2", k: Optional[int] = None):
        """Orthogonalize ``w`` against the first ``k`` stored vectors.

        ``method`` is ``"cgs2"`` (classical Gram-Schmidt run twice --
        the default block kernel, as robust as MGS at BLAS-2 speed),
        ``"classical"`` (one CGS pass) or ``"modified"`` (the legacy
        one-vector-at-a-time MGS recurrence, kept for comparison runs).
        Returns ``(w_orth, coefficients)``; the coefficient vector is
        the accumulated Hessenberg column.
        """
        k = self.n_columns if k is None else int(k)
        if method == "modified":
            return self._mgs(w, k)
        coefficients = self.block_dot(w, k)
        w = self.block_axpy(coefficients, w, k)
        if method == "cgs2":
            correction = self.block_dot(w, k)
            w = self.block_axpy(correction, w, k)
            coefficients = coefficients + correction
        return w, coefficients

    def _mgs(self, w, k: int):
        raise NotImplementedError


class _DenseKrylovBasis(KrylovBasis):
    """Sequential (NumPy ndarray) backend."""

    def column(self, j: int) -> np.ndarray:
        return self._rows[j]

    def orthogonalize(self, w, method: str = "cgs2", k: Optional[int] = None):
        # Specialized to the minimal number of NumPy calls: at small n
        # the interpreter round trips cost more than the gemvs.
        k = self.n_columns if k is None else int(k)
        if method == "modified":
            return self._mgs(w, k)
        rows = self._rows[:k]
        coefficients = rows @ w
        w = w - coefficients @ rows
        if method == "cgs2":
            correction = rows @ w
            w -= correction @ rows  # in place: w was freshly allocated above
            coefficients = coefficients + correction
        return w, coefficients

    def append(self, vec, scale: float = 1.0):
        row = self._rows[self.n_columns]
        np.multiply(float(scale), as_float(vec), out=row)
        self.n_columns += 1
        return row

    def block_dot(self, w, k: Optional[int] = None) -> np.ndarray:
        k = self.n_columns if k is None else int(k)
        return self._rows[:k] @ w

    def block_axpy(self, coefficients, w, k: Optional[int] = None):
        k = self.n_columns if k is None else int(k)
        return w - coefficients @ self._rows[:k]

    def lincomb(self, coefficients, k: Optional[int] = None) -> np.ndarray:
        k = self.n_columns if k is None else int(k)
        # Match the basis dtype: a float64 coefficient vector against a
        # float32 basis would otherwise upcast the whole (k, n) block
        # for one gemv, throwing away the memory-traffic win.
        return np.asarray(coefficients, dtype=self._rows.dtype) @ self._rows[:k]

    def fused_projection(self, w, k: Optional[int] = None):
        k = self.n_columns if k is None else int(k)
        payload = np.empty(k + 1, dtype=np.float64)
        payload[:k] = self._rows[:k] @ w
        payload[k] = float(w @ w)
        return CompletedRequest(payload, operation="fused_projection")

    def _mgs(self, w, k: int):
        w = as_float(w).copy()
        coefficients = np.zeros(k, dtype=np.float64)
        for i in range(k):
            v = self._rows[i]
            coefficients[i] = float(v @ w)
            w -= coefficients[i] * v
        return w, coefficients


class _DistributedKrylovBasis(KrylovBasis):
    """Distributed backend: one fused allreduce per block reduction."""

    def __init__(self, max_vectors: int, template: DistributedVector):
        super().__init__(max_vectors, template.local_size)
        self._comm = template.comm
        self._global_size = template.global_size
        self._offset = template.offset

    def _wrap(self, local: np.ndarray) -> DistributedVector:
        # No-copy wrap: for columns this keeps the returned vector live
        # solver state (hooks mutating state.basis[i].local corrupt the
        # actual basis, as with the old list-of-vectors layout); for
        # freshly computed locals (lincomb, block_axpy) the alias is
        # exclusive anyway.
        return DistributedVector.from_local_view(
            self._comm, local, self._global_size, self._offset
        )

    def column(self, j: int) -> DistributedVector:
        return self._wrap(self._rows[j])

    def append(self, vec: DistributedVector, scale: float = 1.0):
        row = self._rows[self.n_columns]
        np.multiply(float(scale), vec.local, out=row)
        self.n_columns += 1
        return row

    def block_dot(self, w: DistributedVector, k: Optional[int] = None) -> np.ndarray:
        k = self.n_columns if k is None else int(k)
        local = self._rows[:k] @ w.local
        self._comm.compute(2.0 * k * w.local_size)
        return np.asarray(self._comm.allreduce(local, op=SUM), dtype=np.float64)

    def block_axpy(self, coefficients, w: DistributedVector, k: Optional[int] = None):
        k = self.n_columns if k is None else int(k)
        self._comm.compute(2.0 * k * w.local_size)
        return self._wrap(w.local - coefficients @ self._rows[:k])

    def lincomb(self, coefficients, k: Optional[int] = None) -> DistributedVector:
        k = self.n_columns if k is None else int(k)
        local = np.asarray(coefficients, dtype=np.float64) @ self._rows[:k]
        self._comm.compute(2.0 * k * self._rows.shape[1])
        return self._wrap(local)

    def fused_projection(self, w: DistributedVector, k: Optional[int] = None):
        k = self.n_columns if k is None else int(k)
        payload = np.empty(k + 1, dtype=np.float64)
        payload[:k] = self._rows[:k] @ w.local
        payload[k] = float(w.local @ w.local)
        self._comm.compute(2.0 * (k + 1) * w.local_size)
        return self._comm.iallreduce(payload, op=SUM)

    def _mgs(self, w: DistributedVector, k: int):
        w = w.copy()
        coefficients = np.zeros(k, dtype=np.float64)
        for i in range(k):
            coefficients[i] = self.column(i).dot(w)
            w.local -= coefficients[i] * self._rows[i]
        return w, coefficients


def allocate_basis(template: Vector, max_vectors: int) -> KrylovBasis:
    """Allocate an empty :class:`KrylovBasis` shaped like ``template``.

    ``template`` fixes the vector type (NumPy or distributed) and the
    (local) length; ``max_vectors`` is the capacity, ``restart + 1``
    for a GMRES cycle.
    """
    if int(max_vectors) <= 0:
        raise ValueError("max_vectors must be positive")
    if isinstance(template, DistributedVector):
        return _DistributedKrylovBasis(max_vectors, template)
    local = as_float(template)
    if local.ndim != 1:
        raise ValueError("template vector must be 1-D")
    return _DenseKrylovBasis(max_vectors, local.size, dtype=local.dtype)


def apply_preconditioner(preconditioner, x: Vector) -> Vector:
    """Apply ``M^{-1}`` to a vector, handling the no-preconditioner case.

    For distributed vectors the preconditioner must itself accept and
    return :class:`DistributedVector` (e.g. a diagonal preconditioner
    built from :meth:`DistributedRowMatrix.diagonal`); callables are
    applied directly in both cases.
    """
    if preconditioner is None:
        return copy_vector(x)
    if callable(preconditioner) and not hasattr(preconditioner, "apply"):
        return preconditioner(x)
    if isinstance(x, DistributedVector):
        return preconditioner(x) if callable(preconditioner) else preconditioner.apply(x)
    return preconditioner.apply(to_local(x)) if hasattr(preconditioner, "apply") else preconditioner(x)
