"""Type-dispatch layer for the Krylov solvers.

The solvers are written once against these helpers and therefore run
unchanged on

* plain NumPy vectors with a :class:`~repro.linalg.csr.CsrMatrix`,
  dense ndarray or callable operator (sequential execution), and
* :class:`~repro.linalg.distributed.DistributedVector` operands with a
  :class:`~repro.linalg.distributed.DistributedRowMatrix` operator
  (execution over the simulated MPI runtime, with every global
  reduction paying the collective cost of the machine model).

Only the operations the solvers need are provided; anything fancier
belongs in :mod:`repro.linalg`.
"""

from __future__ import annotations

from typing import Any, Callable, Union

import numpy as np

from repro.linalg.csr import CsrMatrix
from repro.linalg.distributed import DistributedRowMatrix, DistributedVector
from repro.simmpi.requests import CompletedRequest

__all__ = [
    "is_distributed",
    "matvec",
    "dot",
    "idot",
    "norm",
    "axpby",
    "scale",
    "copy_vector",
    "zeros_like",
    "to_local",
    "apply_preconditioner",
    "vector_size",
]

Operator = Union[CsrMatrix, np.ndarray, Callable, DistributedRowMatrix]
Vector = Union[np.ndarray, DistributedVector]


def is_distributed(vector: Any) -> bool:
    """Whether ``vector`` is a distributed vector."""
    return isinstance(vector, DistributedVector)


def matvec(operator: Operator, x: Vector) -> Vector:
    """Apply the operator to a vector, dispatching on types."""
    if isinstance(x, DistributedVector):
        if isinstance(operator, DistributedRowMatrix):
            return operator.matvec(x)
        if callable(operator):
            return operator(x)
        raise TypeError(
            "distributed vectors require a DistributedRowMatrix or callable operator"
        )
    if isinstance(operator, CsrMatrix):
        return operator.matvec(np.asarray(x, dtype=np.float64))
    if isinstance(operator, np.ndarray):
        return operator @ np.asarray(x, dtype=np.float64)
    if callable(operator):
        return operator(x)
    raise TypeError(f"unsupported operator type {type(operator).__name__}")


def dot(x: Vector, y: Vector) -> float:
    """Global inner product."""
    if isinstance(x, DistributedVector):
        return x.dot(y)
    return float(np.asarray(x, dtype=np.float64) @ np.asarray(y, dtype=np.float64))


def idot(x: Vector, y: Vector):
    """Non-blocking global inner product.

    Returns an object with ``.wait()``; sequential vectors return a
    pre-completed request so solver code can be written uniformly.
    """
    if isinstance(x, DistributedVector):
        return x.idot(y)
    return CompletedRequest(dot(x, y), operation="idot")


def norm(x: Vector) -> float:
    """Global 2-norm."""
    if isinstance(x, DistributedVector):
        return x.norm()
    return float(np.linalg.norm(np.asarray(x, dtype=np.float64)))


def axpby(alpha: float, x: Vector, beta: float, y: Vector) -> Vector:
    """Return ``alpha * x + beta * y`` as a new vector."""
    if isinstance(x, DistributedVector):
        result = x.copy().scale(alpha)
        result.axpy(beta, y)
        return result
    return alpha * np.asarray(x, dtype=np.float64) + beta * np.asarray(y, dtype=np.float64)


def scale(alpha: float, x: Vector) -> Vector:
    """Return ``alpha * x`` as a new vector."""
    if isinstance(x, DistributedVector):
        return x.copy().scale(alpha)
    return alpha * np.asarray(x, dtype=np.float64)


def copy_vector(x: Vector) -> Vector:
    """Deep copy."""
    if isinstance(x, DistributedVector):
        return x.copy()
    return np.array(x, dtype=np.float64, copy=True)


def zeros_like(x: Vector) -> Vector:
    """A zero vector with the same shape/distribution as ``x``."""
    if isinstance(x, DistributedVector):
        return DistributedVector.zeros_like(x)
    return np.zeros_like(np.asarray(x, dtype=np.float64))


def to_local(x: Vector) -> np.ndarray:
    """Return the local (or full, for sequential) NumPy data of ``x``."""
    if isinstance(x, DistributedVector):
        return x.local
    return np.asarray(x, dtype=np.float64)


def vector_size(x: Vector) -> int:
    """Global length of the vector."""
    if isinstance(x, DistributedVector):
        return x.global_size
    return int(np.asarray(x).size)


def apply_preconditioner(preconditioner, x: Vector) -> Vector:
    """Apply ``M^{-1}`` to a vector, handling the no-preconditioner case.

    For distributed vectors the preconditioner must itself accept and
    return :class:`DistributedVector` (e.g. a diagonal preconditioner
    built from :meth:`DistributedRowMatrix.diagonal`); callables are
    applied directly in both cases.
    """
    if preconditioner is None:
        return copy_vector(x)
    if callable(preconditioner) and not hasattr(preconditioner, "apply"):
        return preconditioner(x)
    if isinstance(x, DistributedVector):
        return preconditioner(x) if callable(preconditioner) else preconditioner.apply(x)
    return preconditioner.apply(to_local(x)) if hasattr(preconditioner, "apply") else preconditioner(x)
