"""Common solver result type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x:
        The computed solution (NumPy array or
        :class:`~repro.linalg.distributed.DistributedVector`, matching
        the input type).
    converged:
        Whether the requested tolerance was reached.
    iterations:
        Number of iterations performed (total inner iterations for
        restarted / outer-inner methods).
    residual_norms:
        History of (preconditioned) residual norms, starting with the
        initial residual.
    breakdown:
        Set when the method terminated because of a numerical breakdown
        (e.g. a zero pivot or a non-finite value) rather than
        convergence or iteration exhaustion.
    detected_faults:
        Number of faults flagged by resilience checks during the solve
        (zero for the plain solvers).
    info:
        Free-form extra information (per-solver counters, restart
        history, fault logs...).
    """

    x: Any
    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)
    breakdown: bool = False
    detected_faults: int = 0
    info: Dict[str, Any] = field(default_factory=dict)

    @property
    def final_residual(self) -> Optional[float]:
        """Last recorded residual norm (``None`` if no history)."""
        return self.residual_norms[-1] if self.residual_norms else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolveResult(converged={self.converged}, iterations={self.iterations}, "
            f"final_residual={self.final_residual!r}, breakdown={self.breakdown})"
        )
