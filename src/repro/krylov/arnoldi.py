"""The Arnoldi process.

One Arnoldi step -- multiply the newest basis vector by the operator,
orthogonalize against the existing basis, normalize -- is the kernel
GMRES is built from, and it is also where the SDC-detecting GMRES of
the skeptical-programming layer attaches its invariant checks (the
Hessenberg entries bound the operator norm, and the basis should stay
orthonormal).

The implementation here operates on a dense NumPy basis (columns are
basis vectors) because the SkP checks need cheap access to the basis as
a matrix; the generic (possibly distributed) GMRES in
:mod:`repro.krylov.gmres` carries its basis as a list of vectors
instead and inlines the same recurrence through the ops layer.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.linalg.blas import (
    cgs2_step,
    classical_gram_schmidt_step,
    modified_gram_schmidt_step,
)

__all__ = ["ArnoldiBreakdown", "arnoldi_step"]


class ArnoldiBreakdown(Exception):
    """The new Krylov vector vanished (happy or unhappy breakdown)."""

    def __init__(self, step: int, norm: float):
        super().__init__(f"Arnoldi breakdown at step {step}: |w| = {norm:.3e}")
        self.step = step
        self.norm = norm


def arnoldi_step(
    apply_operator: Callable[[np.ndarray], np.ndarray],
    basis: np.ndarray,
    hessenberg: np.ndarray,
    step: int,
    *,
    reorthogonalize: bool = False,
    gram_schmidt: str = "modified",
    breakdown_tol: float = 1e-14,
    perturb: Optional[Callable[[np.ndarray, int], np.ndarray]] = None,
) -> float:
    """Perform Arnoldi step ``step`` in place.

    Parameters
    ----------
    apply_operator:
        Function computing ``A @ v`` for a 1-D vector.
    basis:
        ``n x (m+1)`` array whose first ``step+1`` columns hold the
        current orthonormal basis; column ``step+1`` receives the new
        vector.
    hessenberg:
        ``(m+1) x m`` upper-Hessenberg array; column ``step`` receives
        the new coefficients.
    step:
        Zero-based iteration index.
    reorthogonalize:
        Perform a second orthogonalization pass (more robust to rounding
        and to small injected errors).  Implied by ``"cgs2"``.
    gram_schmidt:
        ``"modified"`` (default), ``"classical"``, or ``"cgs2"``
        (classical Gram-Schmidt with built-in reorthogonalization --
        the blocked BLAS-2 kernel the GMRES solvers use).
    breakdown_tol:
        Relative tolerance below which the new vector counts as zero.
    perturb:
        Optional hook called with ``(w, step)`` after the operator
        application and before orthogonalization; fault injectors use it
        to corrupt the computation exactly where a bit flip in the
        matvec would land.

    Returns
    -------
    float
        The norm ``h[step+1, step]`` of the orthogonalized vector.

    Raises
    ------
    ArnoldiBreakdown
        If the new vector's norm falls below ``breakdown_tol`` times the
        norm of ``A v`` (the caller decides whether this is a happy
        breakdown, i.e. the solution has been found).
    """
    if gram_schmidt not in ("modified", "classical", "cgs2"):
        raise ValueError("gram_schmidt must be 'modified', 'classical' or 'cgs2'")
    n_basis = step + 1
    v = basis[:, step]
    w = np.asarray(apply_operator(v), dtype=np.float64)
    if w.shape != v.shape:
        raise ValueError("operator changed the vector length")
    if perturb is not None:
        w = np.asarray(perturb(w, step), dtype=np.float64)
    norm_before = float(np.linalg.norm(w))
    if gram_schmidt == "modified":
        step_fn = modified_gram_schmidt_step
    elif gram_schmidt == "classical":
        step_fn = classical_gram_schmidt_step
    else:
        step_fn = cgs2_step
        reorthogonalize = False  # cgs2 already runs two passes
    w, coefficients = step_fn(basis, w, n_basis)
    hessenberg[:n_basis, step] = coefficients
    if reorthogonalize:
        w, extra = step_fn(basis, w, n_basis)
        hessenberg[:n_basis, step] += extra
    h_next = float(np.linalg.norm(w))
    hessenberg[n_basis, step] = h_next
    if not np.isfinite(h_next) or h_next <= breakdown_tol * max(norm_before, 1.0):
        raise ArnoldiBreakdown(step, h_next)
    basis[:, step + 1] = w / h_next
    return h_next
