"""Preconditioned conjugate gradients.

The symmetric-positive-definite workhorse, used by the implicit PDE
time stepper (backward Euler on the heat equation) and as the baseline
against which :mod:`repro.krylov.pipelined_cg` is compared.  Each
iteration performs **two** blocking global reductions (the
``r^T z`` and ``p^T A p`` inner products) plus one for the convergence
norm -- the synchronization pattern whose latency sensitivity motivates
the RBSP model.

Thin wrapper over the :mod:`repro.krylov.engine` running
:class:`~repro.krylov.engine.cg.CgScheme`, so CG reports the same
kernel-counter schema and accepts the same resilience policies as the
GMRES family.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.krylov.engine import CgScheme, ConvergenceTest, SolverEngine
from repro.krylov.engine.resilience import compose_policy
from repro.krylov.result import SolveResult

__all__ = ["cg"]


def cg(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    maxiter: int = 1000,
    preconditioner=None,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
    policy=None,
) -> SolveResult:
    """Solve the SPD system ``A x = b`` with preconditioned CG.

    Parameters
    ----------
    operator, b, x0, tol, atol, maxiter, preconditioner:
        As in :func:`repro.krylov.gmres.gmres` (the preconditioner is
        applied symmetrically through the standard PCG recurrence).
    iteration_hook:
        Optional callback ``hook(iteration, residual_norm)``.
    policy:
        Optional :class:`~repro.krylov.engine.resilience.ResiliencePolicy`.

    Returns
    -------
    SolveResult
        ``info["alphas"]`` and ``info["betas"]`` record the CG
        coefficients; skeptical checks use their positivity as an SPD
        invariant.
    """
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    engine = SolverEngine(
        operator,
        CgScheme(preconditioner, maxiter=maxiter),
        convergence=ConvergenceTest(tol=tol, atol=atol),
        policy=compose_policy(policy, iteration_hook, "scalar"),
    )
    return engine.solve(b, x0)
