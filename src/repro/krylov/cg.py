"""Preconditioned conjugate gradients.

The symmetric-positive-definite workhorse, used by the implicit PDE
time stepper (backward Euler on the heat equation) and as the baseline
against which :mod:`repro.krylov.pipelined_cg` is compared.  Each
iteration performs **two** blocking global reductions (the
``r^T z`` and ``p^T A p`` inner products) plus one for the convergence
norm -- the synchronization pattern whose latency sensitivity motivates
the RBSP model.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.krylov import ops
from repro.krylov.result import SolveResult
from repro.utils.timing import KernelCounters

__all__ = ["cg"]


def cg(
    operator,
    b,
    x0=None,
    *,
    tol: float = 1e-8,
    atol: float = 0.0,
    maxiter: int = 1000,
    preconditioner=None,
    iteration_hook: Optional[Callable[[int, float], None]] = None,
) -> SolveResult:
    """Solve the SPD system ``A x = b`` with preconditioned CG.

    Parameters
    ----------
    operator, b, x0, tol, atol, maxiter, preconditioner:
        As in :func:`repro.krylov.gmres.gmres` (the preconditioner is
        applied symmetrically through the standard PCG recurrence).
    iteration_hook:
        Optional callback ``hook(iteration, residual_norm)``.

    Returns
    -------
    SolveResult
        ``info["alphas"]`` and ``info["betas"]`` record the CG
        coefficients; skeptical checks use their positivity as an SPD
        invariant.
    """
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    kernels = KernelCounters()
    b_norm = ops.norm(b)
    target = max(tol * b_norm, atol)
    if target == 0.0:
        target = tol

    x = ops.copy_vector(x0) if x0 is not None else ops.zeros_like(b)
    t0 = kernels.tick()
    r = ops.axpby(1.0, b, -1.0, ops.matvec(operator, x))
    kernels.charge("matvec", t0)
    z = ops.apply_preconditioner(preconditioner, r)
    p = ops.copy_vector(z)
    rz = ops.dot(r, z)
    residual = ops.norm(r)
    residual_norms: List[float] = [residual]
    alphas: List[float] = []
    betas: List[float] = []
    converged = residual <= target
    breakdown = False
    iteration = 0

    while not converged and not breakdown and iteration < maxiter:
        t0 = kernels.tick()
        ap = ops.matvec(operator, p)
        kernels.charge("matvec", t0)
        p_ap = ops.dot(p, ap)
        if p_ap <= 0.0 or not np.isfinite(p_ap):
            # Loss of positive definiteness: either the operator is not
            # SPD or a fault corrupted the recurrence.
            breakdown = True
            break
        alpha = rz / p_ap
        alphas.append(float(alpha))
        x = ops.axpby(1.0, x, float(alpha), p)
        r = ops.axpby(1.0, r, -float(alpha), ap)
        residual = ops.norm(r)
        iteration += 1
        residual_norms.append(residual)
        if iteration_hook is not None:
            iteration_hook(iteration, residual)
        if not np.isfinite(residual):
            breakdown = True
            break
        if residual <= target:
            converged = True
            break
        t0 = kernels.tick()
        z = ops.apply_preconditioner(preconditioner, r)
        kernels.charge("preconditioner", t0)
        rz_next = ops.dot(r, z)
        if not np.isfinite(rz_next):
            breakdown = True
            break
        beta = rz_next / rz
        betas.append(float(beta))
        rz = rz_next
        p = ops.axpby(1.0, z, float(beta), p)

    return SolveResult(
        x=x,
        converged=converged,
        iterations=iteration,
        residual_norms=residual_norms,
        breakdown=breakdown,
        info={
            "alphas": alphas,
            "betas": betas,
            "target": target,
            "kernels": kernels.as_dict(),
        },
    )
