"""Shared utilities for the :mod:`repro` toolkit.

The utilities layer is intentionally dependency-light (NumPy only) and
is used by every other subpackage:

* :mod:`repro.utils.rng` -- reproducible random-number stream factory.
* :mod:`repro.utils.validation` -- argument-checking helpers with
  consistent error messages.
* :mod:`repro.utils.timing` -- wall-clock timers and simple counters
  used by the experiment harness.
* :mod:`repro.utils.tables` -- plain-text table formatting used by the
  experiment and benchmark drivers so the reproduced "tables" print in
  a uniform layout.
* :mod:`repro.utils.logging` -- a tiny structured event log used by
  fault injectors and resilience managers.
* :mod:`repro.utils.serialization` -- JSON normalization used by the
  campaign result store and scenario keys.
"""

from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.tables import Table
from repro.utils.timing import Stopwatch, Counter
from repro.utils.validation import (
    require,
    check_positive,
    check_non_negative,
    check_probability,
    check_in,
    check_array_1d,
    check_square_matrix,
)
from repro.utils.logging import EventLog, Event
from repro.utils.serialization import jsonify

__all__ = [
    "RngFactory",
    "spawn_rng",
    "jsonify",
    "Table",
    "Stopwatch",
    "Counter",
    "require",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "check_array_1d",
    "check_square_matrix",
    "EventLog",
    "Event",
]
