"""Plain-text table formatting for experiment and benchmark output.

Every experiment in :mod:`repro.experiments` produces a
:class:`Table`; benchmarks print it so that the reproduced results can
be compared side-by-side with the qualitative claims recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["Table", "one_line"]


def one_line(text: str, max_width: Optional[int] = None) -> str:
    """Render ``text`` on one physical line, optionally truncated.

    Backslashes, newlines and tabs are escaped (``\\\\``, ``\\n``,
    ``\\t``) so an embedded break can never smuggle extra lines into a
    table cell, parameter listing or CLI digest; when ``max_width`` is
    given, longer results are cut with a ``...`` suffix.  This is the
    single escaping rule shared by ``ExperimentResult.render``, the
    campaign CLI listings and the campaign report.
    """
    text = text.replace("\\", "\\\\").replace("\n", "\\n").replace("\t", "\\t")
    if max_width is not None and len(text) > max_width:
        text = text[: max_width - 3] + "..."
    return text


def _format_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


class Table:
    """A small column-oriented table with aligned plain-text rendering.

    Parameters
    ----------
    columns:
        Column headers, in display order.
    title:
        Optional title printed above the table.
    float_fmt:
        Format specification applied to float cells (default ``.4g``).

    Examples
    --------
    >>> t = Table(["n", "error"], title="demo")
    >>> t.add_row(10, 1.25e-3)
    >>> t.add_row(20, 3.1e-4)
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    def __init__(
        self,
        columns: Sequence[str],
        *,
        title: Optional[str] = None,
        float_fmt: str = ".4g",
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns: List[str] = list(columns)
        self.title = title
        self.float_fmt = float_fmt
        self.rows: List[List[Any]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row, given positionally or by column name."""
        if values and named:
            raise ValueError("pass either positional or named cells, not both")
        if named:
            unknown = set(named) - set(self.columns)
            if unknown:
                raise ValueError(f"unknown columns: {sorted(unknown)}")
            row = [named.get(col, "") for col in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"expected {len(self.columns)} cells, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many positional rows."""
        for row in rows:
            self.add_row(*row)

    def column(self, name: str) -> List[Any]:
        """Return the raw values of one column."""
        try:
            idx = self.columns.index(name)
        except ValueError as exc:
            raise KeyError(name) from exc
        return [row[idx] for row in self.rows]

    def to_dicts(self) -> List[dict]:
        """Return the rows as a list of ``{column: value}`` dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_dict(self) -> dict:
        """Return a JSON-compatible description of the whole table.

        The inverse of :meth:`from_dict`; cell values are normalized
        with :func:`repro.utils.serialization.jsonify` so the result
        can be fed to ``json.dumps`` directly.
        """
        from repro.utils.serialization import jsonify

        return {
            "columns": list(self.columns),
            "title": self.title,
            "float_fmt": self.float_fmt,
            "rows": [jsonify(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Table":
        """Rebuild a table from :meth:`to_dict` output."""
        table = cls(
            data["columns"],
            title=data.get("title"),
            float_fmt=data.get("float_fmt", ".4g"),
        )
        for row in data.get("rows", []):
            table.add_row(*row)
        return table

    def render(self) -> str:
        """Render the table as aligned plain text."""
        cells = [
            [_format_cell(v, self.float_fmt) for v in row] for row in self.rows
        ]
        widths = [
            max(len(self.columns[j]), *(len(r[j]) for r in cells)) if cells
            else len(self.columns[j])
            for j in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            col.ljust(widths[j]) for j, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(row[j].ljust(widths[j]) for j in range(len(row))))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return self.render()
