"""Reproducible random-number-generator management.

Every stochastic component in :mod:`repro` (fault schedules, noise
models, workload generators) draws its randomness from a
:class:`numpy.random.Generator` obtained through this module, so that

* a single integer seed reproduces an entire experiment, and
* independent components receive *statistically independent* streams
  (via :class:`numpy.random.SeedSequence` spawning) even when they are
  created in different orders.

The typical pattern is::

    factory = RngFactory(seed=1234)
    rng_faults = factory.spawn("faults")
    rng_noise = factory.spawn("noise")

Named spawning is deterministic: the same ``(seed, name)`` pair always
produces the same stream, regardless of how many other streams were
spawned in between.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

__all__ = ["RngFactory", "spawn_rng", "as_generator"]


def _name_to_key(name: str) -> int:
    """Map an arbitrary string to a stable 64-bit integer key.

    The mapping uses SHA-256 so that distinct names essentially never
    collide and the result does not depend on Python's per-process
    string hashing.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Factory of independent, reproducible random streams.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  ``None`` produces
        non-reproducible entropy (allowed, but discouraged in tests and
        benchmarks).

    Notes
    -----
    Streams created via :meth:`spawn` with the same name are
    *identical*; streams with different names are independent.  The
    factory also supports anonymous sequential spawning via
    :meth:`spawn_sequential` for components that are created in a fixed
    order.
    """

    def __init__(self, seed: Optional[int] = None):
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._sequential_count = 0

    @property
    def seed(self) -> Optional[int]:
        """Root seed this factory was created with."""
        return self._seed

    def spawn(self, name: str) -> np.random.Generator:
        """Return a generator keyed by ``name``.

        The same ``(seed, name)`` pair always yields the same stream.
        """
        key = _name_to_key(name)
        seq = np.random.SeedSequence(entropy=self._root.entropy, spawn_key=(key,))
        return np.random.default_rng(seq)

    def spawn_sequential(self) -> np.random.Generator:
        """Return the next anonymous stream in creation order."""
        self._sequential_count += 1
        seq = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(0xFFFF, self._sequential_count)
        )
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RngFactory":
        """Return a sub-factory whose streams are independent of this one.

        Useful when a subsystem needs to create its own named streams
        (e.g. one stream per simulated rank).
        """
        key = _name_to_key("child:" + name)
        child = RngFactory.__new__(RngFactory)
        child._seed = None
        child._root = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(key, 0x1234)
        )
        child._sequential_count = 0
        return child

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed!r})"


def spawn_rng(seed: Optional[int], name: str = "default") -> np.random.Generator:
    """Convenience wrapper: one-shot named stream from an integer seed."""
    return RngFactory(seed).spawn(name)


def as_generator(
    rng: Union[None, int, np.random.Generator]
) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).  This is the standard argument
    normalization used across the toolkit.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"expected None, int or numpy Generator, got {type(rng).__name__}"
    )
