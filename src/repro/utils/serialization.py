"""JSON-friendly normalization of experiment data.

The campaign result store (:mod:`repro.campaign.store`) persists
:class:`~repro.experiments.common.ExperimentResult` objects as JSON
lines.  Experiment tables and summaries freely mix Python scalars with
NumPy scalars and arrays, and parameters are often tuples; ``jsonify``
maps all of those onto the plain JSON value model so that

* ``json.dumps`` never raises on an experiment result, and
* two logically equal values always serialize to the same text (which
  is what makes scenario keys stable -- see
  :func:`repro.campaign.spec.scenario_key`).

The mapping is lossy only in ways round-tripping does not care about:
tuples come back as lists and NumPy scalars come back as Python
scalars.  Float values are preserved exactly (``json`` round-trips
IEEE-754 doubles bit-for-bit).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["jsonify"]


def jsonify(value: Any) -> Any:
    """Recursively convert ``value`` to plain JSON-compatible types.

    Handles NumPy scalars and arrays, tuples/lists/sets, mappings with
    non-string keys (coerced via ``str``), and the basic Python
    scalars.  Anything else falls back to ``str(value)`` so that
    serialization never fails on incidental payload (the fallback is
    applied to *values*, never silently to containers).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (set, frozenset)):
        # Sort by repr so mixed-type sets (unorderable in Python 3)
        # still serialize, and element order stays deterministic.
        return sorted((jsonify(v) for v in value), key=repr)
    return str(value)
