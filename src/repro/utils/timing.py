"""Timers and counters used by the experiment harness.

Wall-clock timing in this toolkit is only ever used for *reporting
overheads of the reproduction itself* (e.g. how long a benchmark takes
to run).  All performance results that reproduce the paper's claims use
the *virtual* time maintained by :mod:`repro.simmpi.clock` and the
analytic models in :mod:`repro.machine`, so they are deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Stopwatch", "Counter", "KernelCounters"]


class Stopwatch:
    """A simple start/stop wall-clock stopwatch with lap support.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0
        self._laps: list = []

    def start(self) -> "Stopwatch":
        """Start (or resume) the stopwatch."""
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return total elapsed seconds."""
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def lap(self) -> float:
        """Record a lap time (seconds since start/last lap) and return it."""
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        now = time.perf_counter()
        lap = now - self._start - sum(self._laps)
        self._laps.append(lap)
        return lap

    @property
    def elapsed(self) -> float:
        """Total elapsed time, including the running segment if any."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running

    @property
    def laps(self) -> list:
        """List of recorded lap durations."""
        return list(self._laps)

    def reset(self) -> None:
        """Reset the stopwatch to its initial state."""
        self._start = None
        self._elapsed = 0.0
        self._laps = []

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.stop()


class KernelCounters:
    """Wall-clock and call-count accounting for solver hot-path kernels.

    The Krylov solvers charge every matvec, orthogonalization pass and
    preconditioner application here and attach the totals to
    ``SolveResult.info["kernels"]``, so experiments and benchmarks can
    report *where* solve time goes rather than only how much there is.
    The bookkeeping is two dict updates per charge (``perf_counter``
    pairs), cheap enough for inner loops.

    Examples
    --------
    >>> kernels = KernelCounters()
    >>> t0 = kernels.tick()
    >>> _ = sum(range(100))
    >>> kernels.charge("matvec", t0)
    >>> kernels.counts["matvec"]
    1
    """

    __slots__ = ("counts", "seconds")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    @staticmethod
    def tick() -> float:
        """Return a timestamp to later pass to :meth:`charge`."""
        return time.perf_counter()

    def charge(self, kernel: str, since: float, *, calls: int = 1) -> None:
        """Add elapsed time since ``since`` (and ``calls`` calls) to ``kernel``."""
        self.seconds[kernel] = self.seconds.get(kernel, 0.0) + (
            time.perf_counter() - since
        )
        self.counts[kernel] = self.counts.get(kernel, 0) + calls

    def add(self, kernel: str, seconds: float, *, calls: int = 1) -> None:
        """Add a pre-measured duration to ``kernel``.

        Hot loops sample :meth:`tick` once between adjacent kernels and
        charge the deltas, halving the timer calls versus one
        tick/charge pair per kernel.
        """
        self.seconds[kernel] = self.seconds.get(kernel, 0.0) + seconds
        self.counts[kernel] = self.counts.get(kernel, 0) + calls

    def count(self, kernel: str, calls: int = 1) -> None:
        """Bump the call counter of ``kernel`` without charging time."""
        self.counts[kernel] = self.counts.get(kernel, 0) + calls

    def merge(self, other: "KernelCounters") -> None:
        """Fold another counter set into this one (outer/inner solvers)."""
        for key, value in other.seconds.items():
            self.seconds[key] = self.seconds.get(key, 0.0) + value
        for key, value in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + value

    def merge_dict(self, payload: Dict[str, Dict[str, float]]) -> None:
        """Fold an :meth:`as_dict`-shaped payload into this counter set.

        This is how composite solvers aggregate the
        ``info["kernels"]`` dictionaries of the solves they drive.
        """
        for key, value in payload.get("seconds", {}).items():
            self.seconds[key] = self.seconds.get(key, 0.0) + value
        for key, value in payload.get("counts", {}).items():
            self.counts[key] = self.counts.get(key, 0) + value

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{"counts": {...}, "seconds": {...}}`` for ``SolveResult.info``."""
        return {"counts": dict(self.counts), "seconds": dict(self.seconds)}


@dataclass
class Counter:
    """Named integer counters (e.g. flops, messages, detections).

    The counter is a thin wrapper over a dictionary with convenience
    arithmetic; it is used throughout the solvers to report work and
    communication volumes that feed the machine model.
    """

    counts: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self.counts[name] = self.counts.get(name, 0) + amount

    def get(self, name: str) -> float:
        """Return the value of counter ``name`` (0 if never touched)."""
        return self.counts.get(name, 0)

    def merge(self, other: "Counter") -> "Counter":
        """Return a new counter with the element-wise sum of both."""
        merged = Counter(dict(self.counts))
        for key, value in other.counts.items():
            merged.add(key, value)
        return merged

    def reset(self) -> None:
        """Clear all counters."""
        self.counts.clear()

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the underlying dictionary."""
        return dict(self.counts)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.counts
