"""Argument-validation helpers.

All public entry points of the toolkit validate their arguments through
these helpers so that error messages are consistent and informative.
Each helper raises ``ValueError`` (or ``TypeError`` where appropriate)
with a message that names the offending parameter.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
    "check_array_1d",
    "check_square_matrix",
    "check_same_shape",
    "check_integer",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_integer(value: Any, name: str) -> int:
    """Check that ``value`` is an integer (bools rejected) and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    return int(value)


def check_positive(value: Any, name: str) -> float:
    """Check that ``value`` is a strictly positive finite number."""
    val = float(value)
    if not np.isfinite(val) or val <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return val


def check_non_negative(value: Any, name: str) -> float:
    """Check that ``value`` is a non-negative finite number."""
    val = float(value)
    if not np.isfinite(val) or val < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return val


def check_probability(value: Any, name: str) -> float:
    """Check that ``value`` lies in the closed interval [0, 1]."""
    val = float(value)
    if not (0.0 <= val <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return val


def check_in(value: Any, options: Iterable[Any], name: str) -> Any:
    """Check that ``value`` is one of ``options``."""
    options = tuple(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def check_array_1d(array: Any, name: str, *, dtype=None) -> np.ndarray:
    """Coerce to a 1-D NumPy array, raising if the input is not 1-D."""
    arr = np.asarray(array, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def check_square_matrix(matrix: Any, name: str) -> np.ndarray:
    """Coerce to a square 2-D NumPy array."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be a square matrix, got shape {arr.shape}")
    return arr


def check_same_shape(a: np.ndarray, b: np.ndarray, names: Sequence[str]) -> None:
    """Check that two arrays have identical shapes."""
    if np.shape(a) != np.shape(b):
        raise ValueError(
            f"{names[0]} and {names[1]} must have the same shape, "
            f"got {np.shape(a)} and {np.shape(b)}"
        )
