"""Structured event logging.

Fault injectors, skeptical monitors and resilience managers record what
happened (a flip was injected, a check fired, a rank died, recovery
completed) as :class:`Event` records in an :class:`EventLog`.  Tests
and experiments then assert on the log rather than on printed output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """A single structured log record.

    Attributes
    ----------
    kind:
        Short machine-readable category, e.g. ``"bitflip"``,
        ``"check_failed"``, ``"rank_failure"``, ``"recovery"``.
    time:
        Virtual time at which the event occurred (seconds), or ``None``
        when the producing component has no notion of time.
    rank:
        Simulated rank associated with the event, or ``None``.
    details:
        Free-form dictionary with event-specific fields.
    """

    kind: str
    time: Optional[float] = None
    rank: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def matches(self, kind: Optional[str] = None, rank: Optional[int] = None) -> bool:
        """Return ``True`` if the event matches the given filters."""
        if kind is not None and self.kind != kind:
            return False
        if rank is not None and self.rank != rank:
            return False
        return True


class EventLog:
    """An append-only list of :class:`Event` records with query helpers."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(
        self,
        kind: str,
        *,
        time: Optional[float] = None,
        rank: Optional[int] = None,
        **details: Any,
    ) -> Event:
        """Create, store and return a new event."""
        event = Event(kind=kind, time=time, rank=rank, details=dict(details))
        self._events.append(event)
        return event

    def append(self, event: Event) -> None:
        """Append an existing event record."""
        if not isinstance(event, Event):
            raise TypeError("EventLog.append expects an Event")
        self._events.append(event)

    def extend(self, other: "EventLog") -> None:
        """Append all events of another log."""
        self._events.extend(other._events)

    def select(
        self,
        kind: Optional[str] = None,
        rank: Optional[int] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> List[Event]:
        """Return events matching the given filters."""
        out = []
        for event in self._events:
            if not event.matches(kind=kind, rank=rank):
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def count(self, kind: Optional[str] = None, rank: Optional[int] = None) -> int:
        """Count events matching the filters."""
        return len(self.select(kind=kind, rank=rank))

    def kinds(self) -> List[str]:
        """Return the distinct event kinds, in first-seen order."""
        seen: List[str] = []
        for event in self._events:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen

    def clear(self) -> None:
        """Remove all events."""
        self._events.clear()

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]
