"""Relaxed Bulk-Synchronous Programming (RBSP) -- paper §II-B and §III-B.

RBSP is bulk-synchronous programming with the synchronization relaxed:
MPI-3 style non-blocking (neighborhood and global) collectives let an
algorithm start a reduction, do useful work, and only then wait.  The
pipelined Krylov solvers in :mod:`repro.krylov` are the flagship
algorithms; this subpackage provides the supporting pieces:

* :mod:`repro.rbsp.async_ops` -- overlap helpers over the simulated
  communicator (`overlapped_allreduce`, `LazyNorm`), measuring how much
  of the collective latency was actually hidden.
* :mod:`repro.rbsp.variability` -- the analytic scaling study behind
  experiment E3: time-per-iteration models of synchronous versus
  pipelined Krylov methods under performance variability, evaluated at
  process counts far beyond what the threaded runtime can simulate.
"""

from repro.rbsp.async_ops import overlapped_allreduce, LazyNorm, OverlapReport
from repro.rbsp.variability import (
    IterationTimeModel,
    synchronous_iteration_time,
    pipelined_iteration_time,
    scaling_study,
)

__all__ = [
    "overlapped_allreduce",
    "LazyNorm",
    "OverlapReport",
    "IterationTimeModel",
    "synchronous_iteration_time",
    "pipelined_iteration_time",
    "scaling_study",
]
