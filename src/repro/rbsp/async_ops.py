"""Overlap helpers over the simulated communicator.

These utilities make the RBSP pattern -- start a collective, do work,
wait -- explicit and measurable.  They are small by design: the point
of the programming model is that *algorithms* change, not that a big
new runtime API appears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.simmpi.comm import Comm
from repro.simmpi.ops import ReduceOp, SUM

__all__ = ["OverlapReport", "overlapped_allreduce", "LazyNorm"]


@dataclass
class OverlapReport:
    """Timing account of one overlapped collective.

    Attributes
    ----------
    start_time:
        Virtual time at which the collective was posted.
    work_done_time:
        Virtual time when the overlapped local work finished.
    completion_time:
        Virtual time at which the collective's result was available
        (i.e. after the wait).
    exposed_latency:
        Collective time *not* hidden behind the overlapped work
        (zero means the latency was fully hidden).
    """

    start_time: float
    work_done_time: float
    completion_time: float

    @property
    def exposed_latency(self) -> float:
        return max(self.completion_time - self.work_done_time, 0.0)

    @property
    def hidden_latency(self) -> float:
        """Portion of the collective hidden behind the overlapped work."""
        total = self.completion_time - self.start_time
        return max(total - self.exposed_latency, 0.0)


def overlapped_allreduce(
    comm: Comm,
    value: Any,
    work: Callable[[], Any],
    op: ReduceOp = SUM,
):
    """Perform ``allreduce(value)`` overlapped with ``work()``.

    Returns ``(reduced_value, work_result, report)``.  The ``work``
    callable should advance the rank's virtual clock (e.g. by calling
    ``comm.compute``); whatever part of the collective completes during
    that interval is latency hidden from the application -- the RBSP
    payoff the paper describes.
    """
    start = comm.now()
    request = comm.iallreduce(value, op=op)
    work_result = work()
    work_done = comm.now()
    reduced = request.wait()
    completion = comm.now()
    return reduced, work_result, OverlapReport(
        start_time=start, work_done_time=work_done, completion_time=completion
    )


class LazyNorm:
    """A norm whose global reduction is deferred until the value is needed.

    The classic RBSP trick for convergence tests: post the reduction for
    ``||r||^2`` now, keep computing, and only block when the loop
    actually branches on the norm.  If enough work happened in between,
    the reduction is already complete and the branch pays no latency.
    """

    def __init__(self, comm: Optional[Comm], local_square: float):
        self._value: Optional[float] = None
        if comm is None or comm.single_rank():
            self._value = float(local_square) ** 0.5
            self._request = None
        else:
            self._request = comm.iallreduce(float(local_square), op=SUM)

    @property
    def available(self) -> bool:
        """Whether the norm can be read without blocking."""
        return self._value is not None or (
            self._request is not None and self._request.completed
        )

    def value(self) -> float:
        """Block (if needed) and return the global 2-norm."""
        if self._value is None:
            total = self._request.wait()
            self._value = float(max(total, 0.0)) ** 0.5
        return self._value
