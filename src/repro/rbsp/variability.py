"""Analytic scaling of synchronous vs pipelined Krylov iterations (E3).

Section II-B of the paper argues that performance variability plus
frequent synchronous collectives "leads to severe limitations in
scalability, especially as we go to a million or more processes", and
Section III-B that pipelined Krylov methods restore scalability by
hiding the collective latency behind useful work.  The threaded
simulator cannot run a million ranks, so experiment E3 evaluates the
standard analytic model at large P (this module), anchored by the
iteration counts and per-iteration operation mix measured from the
actual solver implementations at small scale.

Model of one Krylov iteration in a weak-scaling regime (fixed rows per
rank):

* local work: sparse matvec + vector updates, time ``t_flops``;
* ``n_reductions`` global reductions, each ``allreduce_time(P)``;
* synchronous variant: each reduction also waits for the slowest rank's
  noise (expected maximum over P of the per-operation noise, which for
  exponential-type noise grows like the harmonic number H_P);
* pipelined variant: the reductions of one iteration are fused into
  ``n_waves`` non-blocking waves overlapped with an overlap window of
  length ``overlap``; only the *exposed* part (cost - overlap, if
  positive) is paid, and the straggler penalty is paid once per wave
  rather than once per reduction.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.machine.collective_cost import allreduce_time
from repro.machine.model import MachineModel
from repro.utils.tables import Table
from repro.utils.validation import check_integer, check_non_negative

__all__ = [
    "IterationTimeModel",
    "synchronous_iteration_time",
    "pipelined_iteration_time",
    "scaling_study",
]


#: Euler-Mascheroni constant for the asymptotic harmonic expansion.
_EULER_GAMMA = 0.57721566490153286060651209008240243


@functools.lru_cache(maxsize=None)
def _harmonic(n: int) -> float:
    """Harmonic number ``H_n``.

    The scaling study evaluates this at every process count up to 2^20;
    a term-by-term Python sum is O(n) interpreted work per call and
    dominated experiment E3's wall clock.  Small ``n`` uses an exact
    vectorized sum; large ``n`` the Euler-Maclaurin expansion
    ``H_n = ln n + gamma + 1/(2n) - 1/(12 n^2) + 1/(120 n^4)``, whose
    truncation error (< 1/(252 n^6)) is far below double rounding noise
    at the crossover.
    """
    n = max(int(n), 1)
    if n <= 4096:
        return float(np.reciprocal(np.arange(1, n + 1, dtype=np.float64)).sum())
    inv = 1.0 / n
    return (
        math.log(n)
        + _EULER_GAMMA
        + 0.5 * inv
        - (inv * inv) / 12.0
        + (inv * inv * inv * inv) / 120.0
    )


@dataclass
class IterationTimeModel:
    """Per-iteration workload description of a Krylov method.

    Attributes
    ----------
    local_flops:
        Flops of local work per rank per iteration (matvec + axpys).
    n_reductions:
        Number of global reductions a synchronous iteration performs
        (CG: 2-3; MGS-GMRES at Krylov dimension j: j + 2).
    reduction_bytes:
        Payload of each reduction.
    pipeline_waves:
        Number of fused non-blocking reduction waves the pipelined
        variant performs per iteration (1 for pipelined CG and
        single-reduce GMRES; 2 with re-orthogonalization).
    overlap_fraction:
        Fraction of the local work available to overlap each wave with
        (the pipelined algorithms overlap the reduction with the next
        matvec, so ~1.0; a conservative 0.8 is the default).
    """

    local_flops: float
    n_reductions: int = 2
    reduction_bytes: float = 8.0
    pipeline_waves: int = 1
    overlap_fraction: float = 0.8

    def __post_init__(self) -> None:
        check_non_negative(self.local_flops, "local_flops")
        check_integer(self.n_reductions, "n_reductions")
        check_integer(self.pipeline_waves, "pipeline_waves")
        if self.n_reductions < 0 or self.pipeline_waves <= 0:
            raise ValueError("n_reductions must be >= 0 and pipeline_waves >= 1")
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must lie in [0, 1]")


def synchronous_iteration_time(
    machine: MachineModel, model: IterationTimeModel, n_ranks: int
) -> float:
    """Expected time of one synchronous (blocking-collective) iteration."""
    check_integer(n_ranks, "n_ranks")
    compute = model.local_flops / machine.flop_rate
    noise_mean = machine.noise.mean_overhead(compute)
    straggler = noise_mean * _harmonic(n_ranks)
    reduction = allreduce_time(machine, n_ranks, model.reduction_bytes)
    # Every blocking reduction is a synchronization point: it pays the
    # collective latency plus the wait for the slowest rank.
    return compute + model.n_reductions * (reduction + straggler)


def pipelined_iteration_time(
    machine: MachineModel, model: IterationTimeModel, n_ranks: int
) -> float:
    """Expected time of one pipelined (overlapped-collective) iteration."""
    check_integer(n_ranks, "n_ranks")
    compute = model.local_flops / machine.flop_rate
    noise_mean = machine.noise.mean_overhead(compute)
    straggler = noise_mean * _harmonic(n_ranks)
    reduction = allreduce_time(machine, n_ranks, model.reduction_bytes)
    overlap_window = model.overlap_fraction * compute / model.pipeline_waves
    exposed_per_wave = max(reduction + straggler - overlap_window, 0.0)
    return compute + model.pipeline_waves * exposed_per_wave


def scaling_study(
    machine: MachineModel,
    model: IterationTimeModel,
    rank_counts: Sequence[int],
    *,
    iterations: int = 100,
) -> Table:
    """Tabulate synchronous vs pipelined solve time across process counts.

    Returns a :class:`~repro.utils.tables.Table` with, per process
    count, the per-iteration and total times of both variants, the
    speedup, and the parallel efficiency of each relative to its own
    single-process-group baseline -- the series experiment E3 plots.
    """
    check_integer(iterations, "iterations")
    counts: List[int] = [int(p) for p in rank_counts]
    if not counts or any(p <= 0 for p in counts):
        raise ValueError("rank_counts must be positive integers")
    table = Table(
        [
            "ranks",
            "sync_iter_time",
            "pipe_iter_time",
            "speedup",
            "sync_efficiency",
            "pipe_efficiency",
            "sync_total",
            "pipe_total",
        ],
        title="Synchronous vs pipelined Krylov iteration (weak scaling)",
    )
    base_sync = synchronous_iteration_time(machine, model, counts[0])
    base_pipe = pipelined_iteration_time(machine, model, counts[0])
    for p in counts:
        sync_t = synchronous_iteration_time(machine, model, p)
        pipe_t = pipelined_iteration_time(machine, model, p)
        table.add_row(
            p,
            sync_t,
            pipe_t,
            sync_t / pipe_t if pipe_t > 0 else float("inf"),
            base_sync / sync_t if sync_t > 0 else 0.0,
            base_pipe / pipe_t if pipe_t > 0 else 0.0,
            sync_t * iterations,
            pipe_t * iterations,
        )
    return table
