"""Backend-neutral communicator errors.

Every backend reports the same two failure conditions through the same
exception types, so recovery layers and the conformance suite are
backend-agnostic:

* :class:`ProcFailure` -- an operation depended on a rank that is gone.
  This *is* :class:`repro.simmpi.errors.RankFailedError` (the simulated
  runtime's ULFM-style notification); the shared-memory backend raises
  the identical type when a peer OS process has been SIGKILLed, so
  ``except RankFailedError`` written against the simulator keeps
  working unchanged on real processes.
* :class:`CommTimeoutError` -- a bounded wait expired with no progress.
  It subclasses :class:`repro.simmpi.errors.SimDeadlockError` (the
  simulator's watchdog verdict), so "deadlock-freedom under timeout"
  is one assertion on every backend: the operation raises, it never
  hangs.

:mod:`repro.simmpi.errors` is pure stdlib (no numpy, no runtime state),
so importing it here cannot create an import cycle with the backends.
"""

from __future__ import annotations

from repro.simmpi.errors import RankFailedError, SimDeadlockError, SimMpiError

__all__ = [
    "BackendUnavailableError",
    "CommTimeoutError",
    "ProcFailure",
    "RankFailedError",
    "SimMpiError",
]

#: The backend-neutral name for "a rank this operation depends on is
#: dead".  Survivors of a SIGKILLed shmem rank and survivors of a
#: simulated hard fault both catch exactly this type.
ProcFailure = RankFailedError


class CommTimeoutError(SimDeadlockError):
    """A bounded communicator wait expired without completing.

    Raised by the shared-memory backend when a blocking receive or a
    collective exceeds its deadline (mismatched communication in the
    program, or a peer wedged without dying).  Subclassing the
    simulator's :class:`~repro.simmpi.errors.SimDeadlockError` lets the
    conformance suite assert the same exception on every backend.
    """


class BackendUnavailableError(SimMpiError):
    """A registered backend cannot run in this environment.

    The registry keeps the entry visible (so listings and specs stay
    stable across machines) but :meth:`launch` fails loudly, e.g. the
    ``mpi4py`` backend on a machine without the package installed.
    """

    def __init__(self, name: str, reason: str):
        super().__init__(f"communicator backend {name!r} unavailable: {reason}")
        self.name = name
        self.reason = reason
