"""Named communicator-backend registry: the backend axis.

Mirrors :mod:`repro.reliability.registry`: each entry names one
backend under a stable key, so experiment drivers, the campaign CLI
and the conformance suite resolve backends *by spec* (``"sim"``,
``"shmem:procs=8"``) instead of hard-wiring a runtime.

:func:`resolve_backend` is the one resolution entry point: it accepts
a compact spec string, a dict, a :class:`~repro.comm.spec.CommSpec`
or ``None`` (the default ``"sim"``), and returns the registry entry
bound to that spec, ready to :meth:`~BoundBackend.launch` SPMD
functions under the uniform launch contract::

    values = resolve_backend("shmem:procs=4").launch(my_rank_func)

Entries stay *registered* even when the environment cannot run them
(``mpi4py`` without the package): listings and persisted specs remain
stable across machines, and only ``launch`` fails -- loudly, with
:class:`~repro.comm.errors.BackendUnavailableError`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.comm.errors import BackendUnavailableError
from repro.comm.spec import CommSpec

__all__ = [
    "RegisteredBackend",
    "BoundBackend",
    "BackendRegistry",
    "default_backend_registry",
    "backend_names",
    "resolve_backend",
]


@dataclass(frozen=True)
class RegisteredBackend:
    """One named communicator backend.

    Attributes
    ----------
    name:
        Stable registry key, identical to the spec kind (``"sim"``,
        ``"shmem"``, ``"mpi4py"``).
    title:
        One-line human description for listings.
    ordered_reduction:
        Whether reductions combine contributions in ascending-rank
        order, left to right.  Backends sharing this flag produce
        **bit-identical** reduction results; against backends without
        it, differential gates must compare under norm tolerances.
    module:
        Dotted module path holding the launcher (imported lazily, so
        listing backends never imports e.g. ``mpi4py``).
    launcher:
        Attribute name of the launch callable in ``module``.
    checker:
        Optional attribute name of an availability probe in ``module``
        returning ``(ok, reason)``; ``None`` means always available.
    """

    name: str
    title: str
    ordered_reduction: bool
    module: str
    launcher: str
    checker: Optional[str] = None

    def available(self) -> Tuple[bool, str]:
        """Whether this backend can run here, plus the reason when not."""
        if self.checker is None:
            return True, ""
        probe = getattr(importlib.import_module(self.module), self.checker)
        return probe()

    def _launch_callable(self) -> Callable[..., List[Any]]:
        ok, reason = self.available()
        if not ok:
            raise BackendUnavailableError(self.name, reason)
        return getattr(importlib.import_module(self.module), self.launcher)

    def bind(self, spec: CommSpec) -> "BoundBackend":
        """Pair this entry with a concrete parameterization."""
        return BoundBackend(self, spec)


@dataclass(frozen=True)
class BoundBackend:
    """A registry entry bound to one :class:`CommSpec`.

    The object experiment drivers actually hold: it knows the rank
    count and timeouts the spec requested, and exposes the uniform
    launch contract.
    """

    entry: RegisteredBackend
    spec: CommSpec

    @property
    def name(self) -> str:
        return self.entry.name

    @property
    def ordered_reduction(self) -> bool:
        return self.entry.ordered_reduction

    @property
    def procs(self) -> int:
        return self.spec.procs

    def launch(
        self,
        func: Callable[..., Any],
        *args: Any,
        n_ranks: Optional[int] = None,
        machine=None,
        failure_plan=None,
        faults=None,
        fault_seed: Optional[int] = None,
        **kwargs: Any,
    ) -> List[Any]:
        """Run ``func(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank return values in rank order (``None`` for
        ranks killed by an injected hard fault).  ``n_ranks`` defaults
        to the spec's ``procs``; the spec's ``watchdog``/``timeout``
        parameter becomes the backend's per-wait bound.
        """
        launch = self.entry._launch_callable()
        timeout = self.spec.get("timeout", self.spec.get("watchdog"))
        if timeout is not None:
            kwargs.setdefault("timeout", float(timeout))
        return launch(
            n_ranks if n_ranks is not None else self.procs,
            func,
            *args,
            machine=machine,
            failure_plan=failure_plan,
            faults=faults,
            fault_seed=fault_seed,
            **kwargs,
        )


class BackendRegistry:
    """Index of named communicator backends."""

    def __init__(self, entries: Optional[List[RegisteredBackend]] = None):
        self._by_name: Dict[str, RegisteredBackend] = {}
        for entry in entries if entries is not None else _builtin_backends():
            self.add(entry)

    def add(self, entry: RegisteredBackend) -> None:
        key = entry.name.lower()
        if key in self._by_name:
            raise ValueError(f"duplicate backend name {key!r}")
        self._by_name[key] = entry

    def get(self, name: str) -> RegisteredBackend:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown communicator backend {name!r} "
                f"(known: {', '.join(self.names())})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._by_name

    def __iter__(self):
        return iter(sorted(self._by_name.values(), key=lambda e: e.name))

    def __len__(self) -> int:
        return len(self._by_name)


def _builtin_backends() -> List[RegisteredBackend]:
    return [
        RegisteredBackend(
            name="sim",
            title="Deterministic simulated runtime (threads + virtual clock)",
            ordered_reduction=True,
            module="repro.comm.sim",
            launcher="launch_sim",
        ),
        RegisteredBackend(
            name="shmem",
            title="Shared-memory multiprocess runtime (forked ranks + pipes)",
            ordered_reduction=True,
            module="repro.comm.shmem",
            launcher="launch_shmem",
        ),
        RegisteredBackend(
            name="mpi4py",
            title="Real MPI via mpi4py (requires mpiexec; import-gated)",
            ordered_reduction=False,
            module="repro.comm.mpi",
            launcher="launch_mpi",
            checker="mpi4py_available",
        ),
    ]


_DEFAULT: Optional[BackendRegistry] = None


def default_backend_registry() -> BackendRegistry:
    """The process-wide registry of built-in backends."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BackendRegistry()
    return _DEFAULT


def backend_names() -> List[str]:
    """Sorted names of all registered backends."""
    return default_backend_registry().names()


def resolve_backend(
    value: Union[None, str, dict, CommSpec, BoundBackend],
) -> BoundBackend:
    """Resolve anything backend-shaped into a ready :class:`BoundBackend`.

    ``None`` resolves to the default ``"sim"`` backend; strings, dicts
    and :class:`CommSpec` objects are parsed and looked up by kind.
    """
    if isinstance(value, BoundBackend):
        return value
    spec = CommSpec.parse(value if value is not None else "sim")
    return default_backend_registry().get(spec.kind).bind(spec)
