"""The deterministic simulated backend (``"sim"``), adapted unchanged.

The simulator *is* the reference implementation the abstract interface
was extracted from, so this module contains no reimplementation at all:
:class:`repro.simmpi.comm.Comm` is virtually registered as a
:class:`~repro.comm.base.BaseCommunicator` (``ABC.register`` -- no
subclassing, no behavioural change, bit-identical goldens), and
:func:`launch_sim` is a thin spec-aware shim over
:func:`repro.simmpi.runtime.run_spmd`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.comm.base import BaseCommunicator
from repro.simmpi.comm import Comm
from repro.simmpi.runtime import run_spmd

__all__ = ["launch_sim"]

# The simulator's Comm satisfies the extracted contract by
# construction; virtual registration keeps repro.simmpi import-free of
# this package (no cycle) and byte-for-byte untouched.
BaseCommunicator.register(Comm)


def launch_sim(
    n_ranks: int,
    func: Callable[..., Any],
    *args: Any,
    machine=None,
    failure_plan=None,
    faults=None,
    fault_seed: Optional[int] = None,
    timeout: Optional[float] = None,
    **kwargs: Any,
) -> List[Any]:
    """Run ``func`` on the simulated runtime (uniform launch contract).

    ``timeout`` -- the backend-neutral per-wait bound -- maps onto the
    simulator's wall-clock ``watchdog``; everything else forwards to
    :func:`~repro.simmpi.runtime.run_spmd` verbatim.
    """
    extra = {}
    if timeout is not None:
        extra["watchdog"] = timeout
    return run_spmd(
        n_ranks,
        func,
        *args,
        machine=machine,
        failure_plan=failure_plan,
        faults=faults,
        fault_seed=fault_seed,
        **extra,
        **kwargs,
    )
