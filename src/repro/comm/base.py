"""The abstract communicator interface every backend implements.

:class:`BaseCommunicator` is the contract extracted from
:class:`repro.simmpi.comm.Comm` -- the surface the distributed kernel
layer (:mod:`repro.linalg.distributed`, :mod:`repro.krylov.ops`)
actually uses, written down as an ABC so new backends implement it
deliberately and the conformance suite (``tests/test_comm_conformance``)
can exercise every registered backend against one parametrized test
body.

The simulator's :class:`~repro.simmpi.comm.Comm` is *virtually*
registered (``BaseCommunicator.register``) rather than subclassed: the
simulated runtime stays byte-for-byte untouched by the abstraction, and
no import cycle forms between :mod:`repro.simmpi` and this package.

Semantics shared by all backends:

* ``rank`` / ``size`` identify this participant;
* point-to-point sends are buffered (eager): a send never detects the
  death of its destination -- failure surfaces at receives and
  collectives, the operations that genuinely depend on the peer;
* any operation depending on a dead rank raises
  :class:`~repro.comm.errors.ProcFailure` (ULFM-style notification);
* a bounded wait that expires raises
  :class:`~repro.comm.errors.CommTimeoutError` -- no backend is
  permitted to hang;
* ``allreduce``/``reduce`` apply the reduction in ascending-rank order,
  left to right, when the backend declares ``ordered_reduction`` in its
  registry entry -- the property that makes sim and shmem results
  bit-identical;
* ``compute(flops)`` / ``advance(seconds)`` drive the backend's notion
  of *program time*: virtual seconds on the simulator, a logical clock
  on real-process backends (used only to schedule ``proc_fail``
  injection, never to slow the process down).
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence

from repro.simmpi.ops import ReduceOp, SUM
from repro.simmpi.requests import Request

__all__ = ["BaseCommunicator"]


class BaseCommunicator(abc.ABC):
    """Abstract SPMD communicator (the mpi4py lower-case subset).

    Concrete backends: :class:`repro.simmpi.comm.Comm` (virtually
    registered), :class:`repro.comm.shmem.ShmemComm`.  Rank functions
    receive an instance as their first argument and must treat it as
    the *only* channel between ranks.
    """

    # -- identity ------------------------------------------------------
    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """This participant's rank in ``[0, size)``."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of ranks the communicator was created with."""

    def single_rank(self) -> bool:
        """True when the communicator has exactly one rank."""
        return self.size == 1

    # -- program time --------------------------------------------------
    @abc.abstractmethod
    def now(self) -> float:
        """Current program time of this rank (seconds)."""

    @abc.abstractmethod
    def compute(self, flops: float) -> float:
        """Account for local computation; returns the new program time.

        A ``proc_fail`` fault scheduled to strike within the accounted
        interval kills this rank at the interval's end, on every
        backend (virtually on the simulator, via real SIGKILL on the
        shared-memory backend).
        """

    @abc.abstractmethod
    def advance(self, seconds: float) -> float:
        """Advance program time by an explicit busy interval."""

    # -- failure notification ------------------------------------------
    @abc.abstractmethod
    def alive_ranks(self) -> List[int]:
        """Sorted ranks currently believed alive."""

    @abc.abstractmethod
    def dead_ranks(self) -> List[int]:
        """Sorted ranks known to have failed."""

    @abc.abstractmethod
    def is_alive(self, rank: int) -> bool:
        """Whether ``rank`` is currently believed alive."""

    # -- point-to-point ------------------------------------------------
    @abc.abstractmethod
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking buffered send (never detects destination death)."""

    @abc.abstractmethod
    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive; raises ``ProcFailure`` if ``source`` died."""

    @abc.abstractmethod
    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; returns a waitable request."""

    @abc.abstractmethod
    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; the payload arrives at ``wait()``."""

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
    ) -> Any:
        """Combined send and receive (the halo-exchange workhorse)."""
        req = self.isend(sendobj, dest, tag=sendtag)
        received = self.recv(source, tag=recvtag)
        req.wait()
        return received

    # -- collectives ---------------------------------------------------
    @abc.abstractmethod
    def barrier(self) -> None:
        """Synchronize all live ranks."""

    @abc.abstractmethod
    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root``; all ranks return it."""

    @abc.abstractmethod
    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        """Reduce to ``root``; non-root ranks return ``None``."""

    @abc.abstractmethod
    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Reduce and deliver the result to every rank."""

    @abc.abstractmethod
    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather per-rank values into a rank-ordered list at ``root``."""

    @abc.abstractmethod
    def allgather(self, value: Any) -> List[Any]:
        """Gather per-rank values into a rank-ordered list everywhere."""

    @abc.abstractmethod
    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter a sequence from ``root``; each rank gets one element."""

    # -- non-blocking collectives --------------------------------------
    @abc.abstractmethod
    def iallreduce(self, value: Any, op: ReduceOp = SUM) -> Request:
        """Non-blocking allreduce (the pipelined-Krylov workhorse)."""

    @abc.abstractmethod
    def ibarrier(self) -> Request:
        """Non-blocking barrier."""

    @abc.abstractmethod
    def iallgather(self, value: Any) -> Request:
        """Non-blocking allgather."""

    @abc.abstractmethod
    def ibcast(self, value: Any, root: int = 0) -> Request:
        """Non-blocking broadcast."""
