"""Pluggable communicator backends behind one abstract interface.

This package extracts the SPMD communicator contract from the
simulated runtime (:class:`repro.simmpi.comm.Comm`) into
:class:`~repro.comm.base.BaseCommunicator`, and puts interchangeable
backends behind a serializable :class:`~repro.comm.spec.CommSpec`:

========  ==========================================================
``sim``    the deterministic simulator, unchanged and bit-identical
``shmem``  real OS processes over pipes + ``shared_memory`` buffers
``mpi4py`` real MPI, import-gated (listing-stable, launch-gated)
========  ==========================================================

The same :class:`FaultSpec` strings drive fault injection on every
backend -- ``proc_fail`` is a virtual death on ``sim`` and a real
SIGKILL on ``shmem``; ``msg_corrupt`` draws the identical corruption
stream on both -- and ``tests/test_comm_conformance.py`` pins one
contract suite plus a sim-vs-shmem differential across all of them.

Typical use::

    from repro.comm import resolve_backend

    backend = resolve_backend("shmem:procs=4")
    values = backend.launch(my_rank_func, faults="proc_fail:times=0.5,ranks=1")
"""

from repro.comm.base import BaseCommunicator

# Importing the sim adapter virtually registers the simulator's Comm
# with BaseCommunicator, so isinstance checks hold before any backend
# is resolved.
import repro.comm.sim  # noqa: E402,F401  (registration side effect)
from repro.comm.errors import (
    BackendUnavailableError,
    CommTimeoutError,
    ProcFailure,
)
from repro.comm.registry import (
    BackendRegistry,
    BoundBackend,
    RegisteredBackend,
    backend_names,
    default_backend_registry,
    resolve_backend,
)
from repro.comm.spec import COMM_KINDS, CommSpec

__all__ = [
    "BackendRegistry",
    "BackendUnavailableError",
    "BaseCommunicator",
    "BoundBackend",
    "COMM_KINDS",
    "CommSpec",
    "CommTimeoutError",
    "ProcFailure",
    "RegisteredBackend",
    "backend_names",
    "default_backend_registry",
    "resolve_backend",
]
