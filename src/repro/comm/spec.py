"""Declarative, serializable communicator-backend specifications.

A :class:`CommSpec` names one backend *kind* plus its parameters, and
is the unit of the backend axis exactly as :class:`FaultSpec` is for
faults: every experiment driver's ``backend=`` parameter, every
campaign backend axis and every registry entry is a ``CommSpec`` (or
something :meth:`CommSpec.parse` can turn into one).

Three interchangeable wire forms, sharing the compact-string grammar of
:mod:`repro.reliability.spec`::

    SPEC  := KIND [ ":" NAME "=" VALUE ("," NAME "=" VALUE)* ]

* **compact strings** -- ``"sim"``, ``"shmem:procs=8"``, ``"mpi4py"``;
* **dicts** -- ``{"kind": "shmem", "params": {"procs": 8}}`` -- the
  form the JSONL result store persists;
* **CommSpec objects** -- what the registry consumes.

Unlike fault specs there is no ``"+"`` composition: a job runs on
exactly one communicator.  Parsing and formatting round-trip exactly,
so backend specs are usable as campaign scenario-key material.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Union

from repro.reliability.spec import format_kind_params, parse_kind_params

__all__ = ["CommSpec", "COMM_KINDS"]

#: Known backend kinds and the parameter names each accepts.  ``procs``
#: (a positive rank count) is meaningful everywhere; the simulator also
#: takes a ``watchdog`` wall-clock budget, the shared-memory backend a
#: per-operation ``timeout``.
COMM_KINDS: Dict[str, frozenset] = {
    "sim": frozenset({"procs", "watchdog"}),
    "shmem": frozenset({"procs", "timeout"}),
    "mpi4py": frozenset({"procs"}),
}


@dataclass(frozen=True)
class CommSpec:
    """One declarative communicator-backend configuration.

    Attributes
    ----------
    kind:
        Backend kind (``"sim"``, ``"shmem"``, ``"mpi4py"``), resolved
        against :data:`COMM_KINDS`.
    params:
        Backend parameters (read-only mapping of scalars), e.g.
        ``procs`` for the default rank count.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in COMM_KINDS:
            raise ValueError(
                f"unknown communicator backend kind {self.kind!r} "
                f"(known: {sorted(COMM_KINDS)})"
            )
        allowed = COMM_KINDS[self.kind]
        params = dict(self.params)
        for name, value in params.items():
            if name not in allowed:
                raise ValueError(
                    f"backend {self.kind!r} does not accept parameter "
                    f"{name!r} (allowed: {sorted(allowed)})"
                )
            if name == "procs":
                if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
                    raise ValueError(
                        f"procs must be a positive integer, got {value!r}"
                    )
            elif name in ("watchdog", "timeout"):
                if not isinstance(value, (int, float)) or isinstance(value, bool) \
                        or float(value) <= 0:
                    raise ValueError(
                        f"{name} must be a positive number, got {value!r}"
                    )
        object.__setattr__(self, "params", params)

    # -- wire forms ----------------------------------------------------
    @classmethod
    def parse(cls, spec: Union[str, dict, "CommSpec"]) -> "CommSpec":
        """Coerce a compact string, dict, or spec into a ``CommSpec``."""
        if isinstance(spec, CommSpec):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if not isinstance(spec, str):
            raise TypeError(
                f"cannot parse a backend spec from {type(spec).__name__}"
            )
        kind, params = parse_kind_params(spec, label="backend spec")
        return cls(kind, params)

    def to_string(self) -> str:
        """Compact string form, round-tripping through :meth:`parse`."""
        return format_kind_params(self.kind, self.params)

    def to_dict(self) -> dict:
        """JSON-friendly dict form (the result-store shape)."""
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CommSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(str(data["kind"]), dict(data.get("params") or {}))

    # -- convenience ---------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        """Parameter lookup with a default."""
        return self.params.get(name, default)

    @property
    def procs(self) -> int:
        """The rank count this spec requests (default 4)."""
        return int(self.params.get("procs", 4))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_string()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommSpec):
            return NotImplemented
        return self.kind == other.kind and dict(self.params) == dict(other.params)

    def __hash__(self) -> int:
        return hash((self.kind, tuple(sorted(self.params.items()))))
