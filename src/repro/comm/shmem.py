"""Shared-memory multiprocess communicator backend (``"shmem"``).

Ranks are real OS processes, forked by :func:`launch_shmem`, wired with
one single-writer/single-reader duplex of OS pipes per ordered rank
pair plus per-rank result and control pipes back to the launcher.  The
design rules are the PR 6 doctrine the ``process-safety`` analysis rule
enforces:

* **no shared ``multiprocessing.Queue``** -- a queue's writer lock dies
  with whichever killable process holds it and silently wedges every
  sibling; every channel here has exactly one writing process, so a
  SIGKILL can never orphan a lock another rank needs;
* **no unbounded blocking** -- every read is gated behind
  ``Connection.poll(timeout)`` against an explicit deadline, so a
  mismatched program raises :class:`~repro.comm.errors.CommTimeoutError`
  instead of hanging, and a dead peer surfaces as EOF on its pipe,
  reported as :class:`~repro.comm.errors.ProcFailure` (ULFM-style);
* **numpy payloads ride ``multiprocessing.shared_memory``** above a
  size threshold -- the pipe carries a small descriptor, the vector
  data crosses via one shared segment (created by the sender, attached,
  copied and unlinked by the receiver; both sides unregister from the
  resource tracker, which would otherwise double-unlink segments whose
  lifetime is managed here).

Fault injection maps the declarative :class:`FaultSpec` axis onto real
processes, so the same spec strings mean the same thing as on the
simulator:

* ``proc_fail`` -- scheduled failure times from the spec's
  :class:`~repro.reliability.process.FailurePlan` are checked against
  the rank's logical clock (advanced by ``compute``/``advance``/message
  costs through the machine model, mirroring the simulator's virtual
  time in program order); when one strikes, the rank SIGKILLs itself.
* ``msg_corrupt`` -- the spec's ``message_corruptor`` (seeded with the
  identical per-rank stream name ``messages/{rank}``) corrupts each
  outgoing payload at the pipe boundary, after the defensive copy.
  Identical ``fault_seed`` therefore draws the identical corruption
  sequence on sim and shmem.

Collectives run a star protocol through rank 0: contributions are
gathered at the coordinator and reduced in **ascending rank order, left
to right** -- the exact reduction order of
:meth:`repro.simmpi.comm.Comm._maybe_finish_collective` -- which is
what makes distributed solves bit-identical across the two backends
(the conformance suite's differential gate pins this).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
import uuid
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing
import multiprocessing.resource_tracker
from multiprocessing import shared_memory
from multiprocessing.connection import Connection

import numpy as np

from repro.comm.base import BaseCommunicator
from repro.comm.errors import CommTimeoutError, ProcFailure
from repro.machine.model import MachineModel
from repro.simmpi.comm import payload_nbytes
from repro.simmpi.errors import InvalidRankError, SimMpiError
from repro.simmpi.ops import ReduceOp, SUM
from repro.simmpi.requests import CompletedRequest, Request

__all__ = ["ShmemComm", "launch_shmem", "SHM_THRESHOLD_BYTES"]

#: Payloads at or above this many bytes travel through a shared-memory
#: segment instead of the pipe itself.  Below it, pickling through the
#: pipe is faster and -- crucially -- stays under the kernel pipe
#: buffer, so buffered sends do not block the sender.
SHM_THRESHOLD_BYTES = 32768

#: Default wall-clock budget (seconds) for one blocking operation.
DEFAULT_OP_TIMEOUT = 30.0


def _copy_payload(obj: Any) -> Any:
    """Defensive copy so corruption/aliasing never reaches sender state."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (int, float, complex, bool, str, bytes, type(None), np.generic)):
        return obj
    import copy

    return copy.deepcopy(obj)


def _untrack_shm(name: str) -> None:
    """Opt the *creator* out of the resource tracker's implicit cleanup.

    Creating (and, through CPython 3.12, attaching) registers the
    segment with the resource tracker, whose at-exit unlink would race
    the explicit receiver-side unlink this module performs.  Only the
    creation-time registration needs manual balancing: on the receiver
    side ``SharedMemory.unlink()`` itself unregisters, pairing with the
    attach-time registration.
    """
    try:
        multiprocessing.resource_tracker.unregister(
            "/" + name.lstrip("/"), "shared_memory"
        )
    except (KeyError, FileNotFoundError):  # pragma: no cover - tracker detail
        pass


class ShmemComm(BaseCommunicator):
    """Communicator bound to one forked rank process.

    Instances are created by :func:`launch_shmem` inside the child
    after ``fork``; user code receives one as the first argument of the
    SPMD function, exactly like the simulator's ``Comm``.

    Parameters
    ----------
    rank, size:
        This process's rank and the job's rank count.
    inbound:
        ``source rank -> read Connection`` of the ``source -> rank``
        pipes (this process is the only reader of each).
    outbound:
        ``dest rank -> write Connection`` of the ``rank -> dest`` pipes
        (this process is the only writer of each).
    machine:
        Machine model driving the logical clock (fault scheduling only;
        the process never sleeps on it).
    failure_times:
        Sorted logical times at which this rank SIGKILLs itself
        (the ``proc_fail`` mapping).
    message_corruptor:
        Optional ``(payload, dest, tag) -> payload`` hook applied to
        every outgoing point-to-point payload after the defensive copy
        (the ``msg_corrupt`` mapping).
    timeout:
        Wall-clock budget per blocking operation; expiry raises
        :class:`CommTimeoutError` rather than hanging.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        inbound: Dict[int, Connection],
        outbound: Dict[int, Connection],
        machine: Optional[MachineModel] = None,
        failure_times: Sequence[float] = (),
        message_corruptor: Optional[Callable[[Any, int, int], Any]] = None,
        timeout: float = DEFAULT_OP_TIMEOUT,
        shm_prefix: str = "repro",
    ):
        self._rank = int(rank)
        self._size = int(size)
        self._in = inbound
        self._out = outbound
        self._machine = machine if machine is not None else MachineModel.ideal()
        self._failure_times = deque(sorted(float(t) for t in failure_times))
        self._message_corruptor = message_corruptor
        self.timeout = float(timeout)
        self._clock = 0.0
        self._coll_seq = 0
        self._shm_seq = 0
        self._shm_prefix = shm_prefix
        self._dead: set = set()
        self._pending: Dict[int, deque] = {r: deque() for r in inbound}
        #: Segments this rank created; swept by :meth:`finalize` in case
        #: a killed receiver never attached (normally already unlinked).
        self._shm_created: List[str] = []

    # -- identity ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    @property
    def machine(self) -> MachineModel:
        """The machine model driving the logical clock."""
        return self._machine

    # -- program time / fault scheduling -------------------------------
    def now(self) -> float:
        return self._clock

    def _check_own_failure(self) -> None:
        if self._failure_times and self._failure_times[0] <= self._clock:
            # The proc_fail mapping: a real hard fault, observable by
            # survivors only through broken pipes -- exactly what the
            # ULFM notification contract is about.
            os.kill(os.getpid(), signal.SIGKILL)

    def compute(self, flops: float) -> float:
        self._check_own_failure()
        self._clock += self._machine.compute_time(flops, rank=self._rank)
        self._check_own_failure()
        return self._clock

    def advance(self, seconds: float) -> float:
        self._check_own_failure()
        self._clock += float(seconds)
        self._check_own_failure()
        return self._clock

    # -- failure notification ------------------------------------------
    def alive_ranks(self) -> List[int]:
        return sorted(set(range(self._size)) - self._dead)

    def dead_ranks(self) -> List[int]:
        """Ranks *observed* dead so far (EOF or a coordinator report).

        Real processes have no shared failure oracle; knowledge spreads
        through failed operations, so a rank can be dead before it
        appears here.
        """
        return sorted(self._dead)

    def is_alive(self, rank: int) -> bool:
        self._check_rank(rank)
        return rank not in self._dead

    def _check_rank(self, rank: int) -> None:
        if not isinstance(rank, (int, np.integer)) or isinstance(rank, bool):
            raise InvalidRankError(f"rank must be an integer, got {rank!r}")
        if not 0 <= rank < self._size:
            raise InvalidRankError(
                f"rank {rank} out of range for communicator of size {self._size}"
            )

    # -- payload encoding ----------------------------------------------
    def _encode_payload(self, obj: Any) -> Tuple:
        """Inline small payloads; stage large ndarrays in shared memory."""
        if isinstance(obj, np.ndarray) and obj.nbytes >= SHM_THRESHOLD_BYTES:
            name = f"{self._shm_prefix}-{self._rank}-{self._shm_seq}"
            self._shm_seq += 1
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(obj.nbytes, 1)
            )
            _untrack_shm(segment.name)
            staged = np.ndarray(obj.shape, dtype=obj.dtype, buffer=segment.buf)
            staged[...] = obj
            segment.close()
            self._shm_created.append(name)
            return ("shm", name, str(obj.dtype), obj.shape)
        return ("inline", obj)

    @staticmethod
    def _decode_payload(desc: Tuple) -> Any:
        if desc[0] == "inline":
            return desc[1]
        _, name, dtype, shape = desc
        segment = shared_memory.SharedMemory(name=name)
        try:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
            value = view.copy()
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - sender swept first
                pass
        return value

    def finalize(self) -> None:
        """Sweep shared-memory segments no receiver consumed.

        Called by the launcher's shutdown handshake, *after* every rank
        has returned -- so any surviving receiver has already attached
        and unlinked its segments, and whatever is left belongs to
        receivers that died before attaching.
        """
        for name in self._shm_created:
            try:
                leftover = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            leftover.close()
            leftover.unlink()
        self._shm_created.clear()

    # -- wire protocol -------------------------------------------------
    def _post(self, dest: int, message: Tuple) -> None:
        """Buffered send of one framed message; never detects peer death.

        Mirrors the simulator's eager-send semantics: a broken pipe
        (dead destination) is recorded but not raised -- failure
        surfaces at the operations that depend on the peer.
        """
        try:
            self._out[dest].send_bytes(pickle.dumps(message))
        except (BrokenPipeError, OSError):
            self._dead.add(dest)

    def _next_from(
        self,
        source: int,
        match: Callable[[Tuple], bool],
        operation: str,
        deadline: float,
    ) -> Tuple:
        """Next message from ``source`` satisfying ``match``.

        Non-matching traffic (e.g. a collective contribution arriving
        while we wait for a differently-tagged point-to-point message)
        is buffered in arrival order, preserving per-(source, tag) FIFO
        delivery.  Bounded: raises :class:`CommTimeoutError` at the
        deadline and :class:`ProcFailure` on EOF (dead peer) once no
        buffered message matches.
        """
        pending = self._pending[source]
        for i, message in enumerate(pending):
            if match(message):
                del pending[i]
                return message
        conn = self._in[source]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeoutError(self._rank, operation, self.timeout)
            try:
                if conn.poll(min(remaining, 0.25)):
                    message = pickle.loads(conn.recv_bytes())
                    if match(message):
                        return message
                    pending.append(message)
            except (EOFError, OSError):
                self._dead.add(source)
                raise ProcFailure([source], operation, detected_at=self._clock)

    # -- point-to-point ------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_own_failure()
        self._check_rank(dest)
        if dest == self._rank:
            raise InvalidRankError("send to self is not supported; use local state")
        payload = _copy_payload(obj)
        if self._message_corruptor is not None:
            payload = self._message_corruptor(payload, dest, int(tag))
        self._post(dest, ("p2p", int(tag), self._encode_payload(payload)))
        # Same program-time accounting as the simulator's eager send.
        self._clock += self._machine.message_time(payload_nbytes(obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_own_failure()
        self._check_rank(source)
        if source == self._rank:
            raise InvalidRankError("recv from self is not supported")
        wanted = int(tag)
        message = self._next_from(
            source,
            lambda m: m[0] == "p2p" and m[1] == wanted,
            f"recv(src={source})",
            time.monotonic() + self.timeout,
        )
        return self._decode_payload(message[2])

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        # Sends are buffered, so the eager form completes immediately.
        self.send(obj, dest, tag=tag)
        return CompletedRequest(None, operation="isend")

    def irecv(self, source: int, tag: int = 0) -> Request:
        self._check_own_failure()
        self._check_rank(source)
        if source == self._rank:
            raise InvalidRankError("recv from self is not supported")
        return Request(lambda _req: self.recv(source, tag), operation="irecv")

    # -- collectives ---------------------------------------------------
    def _finish_collective(
        self,
        kind: str,
        contributions: Dict[int, Any],
        op: Optional[ReduceOp],
        root: Optional[int],
    ) -> Dict[int, Any]:
        """Per-rank results once every contribution is in.

        Reductions run over ascending ranks, left to right -- the
        simulator's exact order, hence bit-identical results.
        """
        participants = sorted(contributions)
        values = [contributions[r] for r in participants]
        if kind in ("allreduce", "reduce"):
            reducer = op if op is not None else SUM
            result = reducer.reduce(values)
            if kind == "reduce":
                return {r: (result if r == root else None) for r in participants}
            return {r: result for r in participants}
        if kind == "barrier":
            return {r: None for r in participants}
        if kind == "bcast":
            return {r: contributions.get(root) for r in participants}
        if kind in ("gather", "allgather"):
            if kind == "gather":
                return {r: (values if r == root else None) for r in participants}
            return {r: list(values) for r in participants}
        if kind == "scatter":
            chunks = contributions.get(root)
            if chunks is None or len(chunks) < len(participants):
                raise ValueError(
                    "scatter root must provide one chunk per participant"
                )
            return {r: chunks[i] for i, r in enumerate(participants)}
        raise ValueError(f"unknown collective kind {kind!r}")  # pragma: no cover

    def _collective(
        self,
        kind: str,
        value: Any,
        *,
        op: Optional[ReduceOp] = None,
        root: Optional[int] = None,
    ) -> Any:
        """Star-protocol collective through the rank-0 coordinator.

        A missing contributor (EOF on its pipe) fails the collective:
        the coordinator reports the failed set to every survivor before
        raising, so all participants observe the same
        :class:`ProcFailure` and nobody hangs; a coordinator death
        surfaces as EOF to every non-root rank.  Contributions that
        reached the pipe before the sender died still count (pipes are
        FIFO), matching the simulator's posted-before-death semantics.
        """
        self._check_own_failure()
        seq = self._coll_seq
        self._coll_seq += 1
        deadline = time.monotonic() + self.timeout
        operation = f"{kind}[{seq}]"
        nbytes = payload_nbytes(value)

        if self._rank == 0:
            contributions: Dict[int, Any] = {0: _copy_payload(value)}
            failed: set = set()
            for source in range(1, self._size):
                try:
                    message = self._next_from(
                        source,
                        lambda m: m[0] == "coll" and m[1] == seq,
                        operation,
                        deadline,
                    )
                except ProcFailure:
                    failed.add(source)
                    continue
                contributions[source] = self._decode_payload(message[2])
            if failed:
                for dest in range(1, self._size):
                    if dest not in failed:
                        self._post(dest, ("collfail", seq, sorted(failed)))
                raise ProcFailure(failed, kind, detected_at=self._clock)
            results = self._finish_collective(kind, contributions, op, root)
            for dest in range(1, self._size):
                self._post(dest, ("collres", seq, self._encode_payload(results[dest])))
            result = results[0]
        else:
            self._post(0, ("coll", seq, self._encode_payload(_copy_payload(value))))
            message = self._next_from(
                0,
                lambda m: m[0] in ("collres", "collfail") and m[1] == seq,
                operation,
                deadline,
            )
            if message[0] == "collfail":
                self._dead.update(message[2])
                raise ProcFailure(message[2], kind, detected_at=self._clock)
            result = self._decode_payload(message[2])
        # Logical-time accounting mirrors the simulator's cost model so
        # proc_fail schedules strike at comparable program points.
        self._clock += self._collective_cost(kind, nbytes)
        return result

    def _collective_cost(self, kind: str, nbytes: float) -> float:
        from repro.machine.collective_cost import (
            allreduce_time,
            barrier_time,
            broadcast_time,
        )

        if kind == "barrier":
            return barrier_time(self._machine, self._size)
        if kind in ("bcast", "scatter", "gather", "allgather"):
            return broadcast_time(self._machine, self._size, nbytes)
        return allreduce_time(self._machine, self._size, nbytes)

    # -- blocking forms -------------------------------------------------
    def barrier(self) -> None:
        self._collective("barrier", None)

    def bcast(self, value: Any, root: int = 0) -> Any:
        self._check_rank(root)
        return self._collective(
            "bcast", value if self._rank == root else None, root=root
        )

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        self._check_rank(root)
        return self._collective("reduce", value, op=op, root=root)

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        return self._collective("allreduce", value, op=op)

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        self._check_rank(root)
        return self._collective("gather", value, root=root)

    def allgather(self, value: Any) -> List[Any]:
        return self._collective("allgather", value)

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Any:
        self._check_rank(root)
        payload = list(values) if (self._rank == root and values is not None) else None
        return self._collective("scatter", payload, root=root)

    # -- non-blocking collectives ---------------------------------------
    # Real processes complete these eagerly: the star protocol finishes
    # inside the call and a completed request carries the result.  SPMD
    # programs sequence their collectives identically on every rank, so
    # eager completion preserves correctness (and bit-identity); only
    # the overlap the simulator *models* is not realized.
    def iallreduce(self, value: Any, op: ReduceOp = SUM) -> Request:
        return CompletedRequest(self.allreduce(value, op=op), operation="iallreduce")

    def ibarrier(self) -> Request:
        self.barrier()
        return CompletedRequest(None, operation="ibarrier")

    def iallgather(self, value: Any) -> Request:
        return CompletedRequest(self.allgather(value), operation="iallgather")

    def ibcast(self, value: Any, root: int = 0) -> Request:
        return CompletedRequest(self.bcast(value, root=root), operation="ibcast")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShmemComm(rank={self._rank}, size={self._size}, "
            f"pid={os.getpid()}, t={self._clock:.6g})"
        )


# ----------------------------------------------------------------------
# Launcher
# ----------------------------------------------------------------------
def _close_quietly(conn: Connection) -> None:
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


def _child_main(
    rank: int,
    size: int,
    channels: Dict[Tuple[int, int], Tuple[Connection, Connection]],
    results: Dict[int, Tuple[Connection, Connection]],
    controls: Dict[int, Tuple[Connection, Connection]],
    func: Callable[..., Any],
    args: Tuple,
    kwargs: Dict[str, Any],
    comm_kwargs: Dict[str, Any],
) -> None:
    """Body of one forked rank; never returns (``os._exit``)."""
    exit_code = 0
    try:
        # Close every inherited pipe end this rank does not own.  The
        # single-owner discipline is what makes death observable: a
        # SIGKILLed rank closes the *only* write end of its outgoing
        # pipes, so peers see EOF instead of waiting forever.
        inbound: Dict[int, Connection] = {}
        outbound: Dict[int, Connection] = {}
        for (src, dst), (read_end, write_end) in channels.items():
            if dst == rank:
                inbound[src] = read_end
            else:
                _close_quietly(read_end)
            if src == rank:
                outbound[dst] = write_end
            else:
                _close_quietly(write_end)
        for other, (read_end, write_end) in results.items():
            _close_quietly(read_end)
            if other != rank:
                _close_quietly(write_end)
        for other, (read_end, write_end) in controls.items():
            _close_quietly(write_end)
            if other != rank:
                _close_quietly(read_end)
        result_conn = results[rank][1]
        control_conn = controls[rank][0]

        comm = ShmemComm(rank, size, inbound, outbound, **comm_kwargs)
        try:
            outcome = ("ok", func(comm, *args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - reported to the launcher
            exit_code = 1
            try:
                pickle.dumps(exc)
            except Exception:  # noqa: BLE001 - unpicklable exception payload
                exc = SimMpiError(f"rank {rank} raised unpicklable {exc!r}")
            outcome = ("error", exc)
        try:
            result_conn.send_bytes(pickle.dumps(outcome))
        except (BrokenPipeError, OSError):  # pragma: no cover - launcher gone
            exit_code = 1
        # Shutdown handshake: hold shared-memory segments (and our pipe
        # ends) until the launcher has collected every outcome, so
        # receivers still draining messages can attach first.  Bounded:
        # a vanished launcher (EOF) releases us too.
        try:
            control_conn.poll(comm.timeout)
        except (EOFError, OSError):  # pragma: no cover - launcher died
            pass
        comm.finalize()
    finally:
        os._exit(exit_code)


def launch_shmem(
    n_ranks: int,
    func: Callable[..., Any],
    *args: Any,
    machine: Optional[MachineModel] = None,
    failure_plan=None,
    faults=None,
    fault_seed: Optional[int] = None,
    timeout: float = DEFAULT_OP_TIMEOUT,
    join_timeout: float = 120.0,
    **kwargs: Any,
) -> List[Any]:
    """Run ``func(comm, *args, **kwargs)`` on ``n_ranks`` OS processes.

    The shmem counterpart of :func:`repro.simmpi.runtime.run_spmd`, with
    the same fault-axis surface: ``faults``/``failure_plan`` map
    ``proc_fail`` components to scheduled self-SIGKILLs and
    ``msg_corrupt`` components to pipe-boundary payload corruption,
    seeded identically to the simulator.  Returns the per-rank return
    values in rank order; a rank killed by a hard fault yields ``None``
    (mirroring the simulator's died-rank reporting), and a rank that
    *raised* re-raises in the caller.

    Children are created with raw ``os.fork`` rather than
    ``multiprocessing.Process``: rank processes must stay spawnable
    from inside the campaign executor's (daemonic) workers, and the
    launcher does its own supervision -- per-rank result pipes with
    bounded waits, explicit ``waitpid`` reaping, and a shutdown
    handshake that keeps shared-memory segments alive until every
    outcome is in.
    """
    n_ranks = int(n_ranks)
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    # Resolve the fault axis exactly like SimRuntime does.
    from repro.simmpi.runtime import coerce_failure_plan

    corruptor_factory = None
    if faults is not None:
        from repro.reliability.registry import resolve_faults

        fault_model = resolve_faults(faults)
        if failure_plan is None:
            failure_plan = coerce_failure_plan(fault_model, n_ranks, seed=fault_seed)
        msg_model = fault_model.component("msg_corrupt")
        if msg_model is not None:
            def corruptor_factory(rank: int, _model=msg_model):
                # Identical stream naming to SimRuntime, so (fault_seed,
                # rank) replays the same corruption draws on any backend.
                return _model.message_corruptor(
                    seed=fault_seed, name=f"messages/{rank}"
                )
    plan = coerce_failure_plan(failure_plan, n_ranks, seed=fault_seed)
    machine = machine if machine is not None else MachineModel.ideal()
    job = uuid.uuid4().hex[:12]

    channels: Dict[Tuple[int, int], Tuple[Connection, Connection]] = {}
    for src in range(n_ranks):
        for dst in range(n_ranks):
            if src != dst:
                channels[(src, dst)] = multiprocessing.Pipe(duplex=False)
    results = {r: multiprocessing.Pipe(duplex=False) for r in range(n_ranks)}
    controls = {r: multiprocessing.Pipe(duplex=False) for r in range(n_ranks)}

    pids: Dict[int, int] = {}
    for rank in range(n_ranks):
        comm_kwargs = dict(
            machine=machine,
            failure_times=[f.time for f in plan.failures_for_rank(rank)],
            timeout=timeout,
            shm_prefix=f"repro-{job}",
        )
        pid = os.fork()
        if pid == 0:
            if corruptor_factory is not None:
                comm_kwargs["message_corruptor"] = corruptor_factory(rank)
            _child_main(
                rank, n_ranks, channels, results, controls,
                func, args, kwargs, comm_kwargs,
            )
            os._exit(1)  # pragma: no cover - _child_main never returns
        pids[rank] = pid

    # The launcher owns only the result read ends and control write
    # ends; releasing the channel ends is what lets EOF semantics work.
    for read_end, write_end in channels.values():
        _close_quietly(read_end)
        _close_quietly(write_end)
    for _read_end, write_end in results.values():
        _close_quietly(write_end)
    for read_end, _write_end in controls.values():
        _close_quietly(read_end)

    outcomes: Dict[int, Tuple[str, Any]] = {}
    conn_ranks = {results[r][0]: r for r in range(n_ranks)}
    deadline = time.monotonic() + join_timeout
    try:
        while len(outcomes) < n_ranks:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise SimMpiError(
                    f"shmem ranks {sorted(set(pids) - set(outcomes))} did not "
                    f"finish within {join_timeout}s of wall time"
                )
            ready = multiprocessing.connection.wait(
                [results[r][0] for r in range(n_ranks) if r not in outcomes],
                timeout=min(remaining, 0.5),
            )
            for conn in ready:
                rank = conn_ranks[conn]
                try:
                    outcomes[rank] = pickle.loads(conn.recv_bytes())
                except (EOFError, OSError):
                    # The rank died (e.g. proc_fail SIGKILL) before
                    # reporting: the simulator reports died ranks as
                    # value None, and so do we.
                    outcomes[rank] = ("died", None)
    finally:
        # Release the children (shutdown handshake), then reap.
        for rank in range(n_ranks):
            try:
                controls[rank][1].send_bytes(b"shutdown")
            except (BrokenPipeError, OSError):
                pass
        reap_deadline = time.monotonic() + 10.0
        for rank, pid in pids.items():
            while True:
                try:
                    reaped, _status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:  # pragma: no cover - reaped elsewhere
                    break
                if reaped:
                    break
                if time.monotonic() > reap_deadline:
                    os.kill(pid, signal.SIGKILL)
                    os.waitpid(pid, 0)
                    break
                time.sleep(0.005)
        for read_end, write_end in list(results.values()) + list(controls.values()):
            _close_quietly(read_end)
            _close_quietly(write_end)

    for rank in range(n_ranks):
        status, value = outcomes[rank]
        if status == "error":
            raise value
    return [outcomes[rank][1] for rank in range(n_ranks)]
