"""Optional ``mpi4py`` backend, import-gated.

The entry exists so that backend specs, listings and campaign configs
written on a machine *with* MPI stay parseable everywhere; on machines
without ``mpi4py`` the registry reports the backend unavailable and
:func:`launch_mpi` raises :class:`BackendUnavailableError` instead of
an ``ImportError`` from deep inside a sweep.

When ``mpi4py`` *is* importable the adapter wraps ``MPI.COMM_WORLD``
in the :class:`~repro.comm.base.BaseCommunicator` surface.  Two honest
caveats, stated rather than papered over:

* the process must already run under ``mpiexec`` with the requested
  rank count -- a single-process driver cannot fork an MPI job, so
  :func:`launch_mpi` refuses when the world size does not match;
* ``proc_fail`` injection is not mapped: killing real MPI ranks
  requires ULFM support, which stock MPI builds lack.  Fault-injection
  experiments belong on the ``sim`` and ``shmem`` backends.
"""

from __future__ import annotations

import importlib.util
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.comm.base import BaseCommunicator
from repro.comm.errors import BackendUnavailableError
from repro.machine.model import MachineModel
from repro.simmpi.ops import ReduceOp, SUM
from repro.simmpi.requests import CompletedRequest, Request

__all__ = ["mpi4py_available", "launch_mpi", "Mpi4pyComm"]


def mpi4py_available() -> Tuple[bool, str]:
    """Whether ``mpi4py`` is importable, plus the reason when not."""
    if importlib.util.find_spec("mpi4py") is None:
        return False, "the mpi4py package is not installed"
    return True, ""


class Mpi4pyComm(BaseCommunicator):
    """``MPI.COMM_WORLD`` behind the backend-neutral contract.

    Only constructed when ``mpi4py`` imports; the reductions delegate
    to MPI's own (unordered) implementations, so this backend does
    *not* declare ``ordered_reduction`` -- differential gates compare
    it under norm tolerances, never byte identity.
    """

    def __init__(self, mpi_comm, machine: Optional[MachineModel] = None):
        self._comm = mpi_comm
        self._machine = machine if machine is not None else MachineModel.ideal()
        self._clock = 0.0

    @property
    def rank(self) -> int:
        return self._comm.Get_rank()

    @property
    def size(self) -> int:
        return self._comm.Get_size()

    def now(self) -> float:
        return self._clock

    def compute(self, flops: float) -> float:
        self._clock += self._machine.compute_time(flops, rank=self.rank)
        return self._clock

    def advance(self, seconds: float) -> float:
        self._clock += float(seconds)
        return self._clock

    def alive_ranks(self) -> List[int]:
        return list(range(self.size))

    def dead_ranks(self) -> List[int]:
        return []

    def is_alive(self, rank: int) -> bool:
        return 0 <= rank < self.size

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._comm.send(obj, dest=dest, tag=tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        return self._comm.recv(source=source, tag=tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        req = self._comm.isend(obj, dest=dest, tag=tag)
        return Request(lambda _r: req.wait(), operation="isend")

    def irecv(self, source: int, tag: int = 0) -> Request:
        req = self._comm.irecv(source=source, tag=tag)
        return Request(lambda _r: req.wait(), operation="irecv")

    def _mpi_op(self, op: ReduceOp):
        from mpi4py import MPI

        table = {
            "sum": MPI.SUM,
            "max": MPI.MAX,
            "min": MPI.MIN,
            "prod": MPI.PROD,
            "land": MPI.LAND,
            "lor": MPI.LOR,
        }
        try:
            return table[op.name.lower()]
        except KeyError:
            raise BackendUnavailableError(
                "mpi4py", f"reduction op {op.name!r} has no MPI equivalent"
            ) from None

    def barrier(self) -> None:
        self._comm.barrier()

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._comm.bcast(value, root=root)

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        return self._comm.reduce(value, op=self._mpi_op(op), root=root)

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        return self._comm.allreduce(value, op=self._mpi_op(op))

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        return self._comm.gather(value, root=root)

    def allgather(self, value: Any) -> List[Any]:
        return self._comm.allgather(value)

    def scatter(self, values: Optional[Sequence[Any]], root: int = 0) -> Any:
        return self._comm.scatter(values, root=root)

    def iallreduce(self, value: Any, op: ReduceOp = SUM) -> Request:
        return CompletedRequest(self.allreduce(value, op=op), operation="iallreduce")

    def ibarrier(self) -> Request:
        self.barrier()
        return CompletedRequest(None, operation="ibarrier")

    def iallgather(self, value: Any) -> Request:
        return CompletedRequest(self.allgather(value), operation="iallgather")

    def ibcast(self, value: Any, root: int = 0) -> Request:
        return CompletedRequest(self.bcast(value, root=root), operation="ibcast")


def launch_mpi(
    n_ranks: int,
    func: Callable[..., Any],
    *args: Any,
    machine: Optional[MachineModel] = None,
    failure_plan=None,
    faults=None,
    fault_seed: Optional[int] = None,
    timeout: Optional[float] = None,
    **kwargs: Any,
) -> List[Any]:
    """Run ``func`` on ``MPI.COMM_WORLD`` (must match ``n_ranks``)."""
    ok, reason = mpi4py_available()
    if not ok:
        raise BackendUnavailableError("mpi4py", reason)
    if faults is not None or failure_plan is not None:
        raise BackendUnavailableError(
            "mpi4py", "fault injection requires the sim or shmem backend"
        )
    from mpi4py import MPI

    world = MPI.COMM_WORLD
    if world.Get_size() != int(n_ranks):
        raise BackendUnavailableError(
            "mpi4py",
            f"world size {world.Get_size()} != requested {n_ranks}; "
            "run under mpiexec with a matching rank count",
        )
    comm = Mpi4pyComm(world, machine=machine)
    value = func(comm, *args, **kwargs)
    return world.allgather(value)
