"""Declarative scenario sweeps over the experiment drivers.

The campaign subsystem turns the hand-wired ``e*.py`` drivers into a
sweepable scenario space:

* :mod:`repro.campaign.spec` -- :class:`Scenario` (experiment id +
  parameter overrides), grid/zip sweep expansion, and stable scenario
  keys.
* :mod:`repro.campaign.registry` -- auto-discovers every driver that
  implements the ``SPEC`` + ``run(**params) -> ExperimentResult``
  protocol of :mod:`repro.experiments`.
* :mod:`repro.campaign.runner` -- :class:`CampaignRunner`: sequential
  or supervised-multiprocessing execution with deterministic
  per-scenario seeding and memoization against the result store.
* :mod:`repro.campaign.executor` -- the resilient execution layer:
  :class:`SupervisedExecutor` (long-lived workers, per-scenario
  timeouts, crash detection + respawn), :class:`RetryPolicy`
  (deterministic backoff, transient-vs-poison classification,
  quarantine), :class:`FailureLedger` (crash-consistent JSONL attempt
  journal) and :class:`ChaosSpec` (fault injection into the runner's
  own workers).
* :mod:`repro.campaign.store` -- :class:`ResultStore`: a JSONL file of
  completed scenarios, round-tripping
  :class:`~repro.experiments.common.ExperimentResult`.
* :mod:`repro.campaign.report` -- aggregate report rendering,
  including the ledger's failure history.
* :mod:`repro.campaign.builtin` -- named campaigns (``smoke``,
  ``default``).
* ``python -m repro.campaign`` -- the ``list`` / ``run`` / ``report``
  command line (see CAMPAIGNS.md).
"""

from repro.campaign.spec import Scenario, Sweep, grid_sweep, scenario_key, zip_sweep
from repro.campaign.registry import ExperimentRegistry, default_registry
from repro.campaign.store import ResultStore, StoreVerification
from repro.campaign.executor import (
    AttemptRecord,
    ChaosSpec,
    FailureLedger,
    RetryPolicy,
    SupervisedExecutor,
)
from repro.campaign.runner import CampaignRunner, ScenarioOutcome
from repro.campaign.report import render_report
from repro.campaign.builtin import builtin_campaign, builtin_campaign_names

__all__ = [
    "Scenario",
    "Sweep",
    "grid_sweep",
    "zip_sweep",
    "scenario_key",
    "ExperimentRegistry",
    "default_registry",
    "ResultStore",
    "StoreVerification",
    "AttemptRecord",
    "ChaosSpec",
    "FailureLedger",
    "RetryPolicy",
    "SupervisedExecutor",
    "CampaignRunner",
    "ScenarioOutcome",
    "render_report",
    "builtin_campaign",
    "builtin_campaign_names",
]
