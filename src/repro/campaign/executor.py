"""Supervised campaign execution: retries, timeouts, chaos, a ledger.

The paper's thesis is reliable-outer / unreliable-inner computation:
FT-GMRES wraps an inner solver it does not trust and bounds the damage
its faults can do.  This module restates that contract one level up,
for the campaign runner itself.  Worker processes are the unreliable
inner resource -- they can crash, hang, or hand back corrupted bytes --
and the :class:`SupervisedExecutor` is the reliable outer loop that
detects those faults, bounds them (timeouts, attempt budgets) and
recovers (respawn, retry, quarantine) without ever letting one bad
scenario take the campaign down.

Pieces
------
:class:`RetryPolicy`
    Deterministic attempt budget + exponential backoff, with a
    transient-vs-poison classification: crashes, timeouts and corrupt
    results are *transient* (worth retrying -- the environment failed,
    not the scenario), driver exceptions are *poison* by default (the
    same inputs will raise again).  Transient scenarios that exhaust
    their budget are *quarantined*.
:class:`FailureLedger`
    Crash-consistent JSONL sidecar next to the
    :class:`~repro.campaign.store.ResultStore` recording one
    :class:`AttemptRecord` per executed attempt -- successes included
    -- so failure history survives the process and ``campaign run
    --retry-failed`` can re-target exactly the failed/quarantined set.
:class:`ChaosSpec`
    Fault injection for the runner's own workers, reusing the
    reliability layer's spec-string grammar
    (:func:`repro.reliability.spec.parse_kind_params`):
    ``"worker_crash:p=0.1"`` hard-kills the worker (``os._exit``)
    before the scenario runs, ``"worker_hang:p=0.05"`` sleeps past any
    timeout, ``"result_corrupt:p=0.01"`` flips the result payload
    after it was checksummed.  Compose with ``+`` exactly like fault
    specs.  Injection draws are pure functions of ``(chaos_seed,
    scenario key, attempt, kind)``, so chaos runs are reproducible and
    retried attempts see fresh, independent draws.
:class:`SupervisedExecutor`
    Long-lived worker ``Process``\\ es, each driven over its own duplex
    :func:`multiprocessing.Pipe`.  The supervisor dispatches one
    scenario at a time per worker, multiplexes the pipes with
    :func:`multiprocessing.connection.wait`, enforces per-scenario
    deadlines (kill + respawn on expiry), detects hard worker death via
    liveness, verifies result checksums, and applies the retry policy
    until every scenario reaches a terminal state.

    Per-worker pipes are a correctness requirement, not a style choice:
    a shared ``multiprocessing.Queue`` serializes writers through a
    shared lock held briefly by each worker's feeder thread, and a
    worker dying at an arbitrary instant (SIGKILL on timeout, or a
    chaos ``os._exit``) can orphan that lock forever, silently wedging
    every *other* worker's result delivery.  With one pipe per worker
    there is a single writer per channel and no cross-worker shared
    state, so the blast radius of a dying worker is exactly its own
    pipe -- severed, observed as EOF, classified as a crash.

Determinism: scenario parameters (seed included) are resolved *before*
dispatch, so attempt 3 on a respawned worker receives byte-identical
inputs to attempt 1 -- which is what makes a campaign run under
``worker_crash`` converge to a result store byte-identical to a clean
run (the chaos soak test pins this).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
import warnings
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_for_connections
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.campaign.spec import canonical_json
from repro.reliability.spec import (
    format_kind_params,
    parse_kind_params,
    split_composed,
)

__all__ = [
    "RetryPolicy",
    "AttemptRecord",
    "FailureLedger",
    "ChaosSpec",
    "ChaosFault",
    "ExecutionResult",
    "SupervisedExecutor",
    "default_execute",
    "payload_checksum",
    "TRANSIENT_STATUSES",
    "FAILURE_OUTCOMES",
    "BATCH_PARAMS_KEY",
    "BATCH_RESULTS_KEY",
]

# Attempt statuses the retry policy considers environmental: the
# scenario itself is not implicated, so re-running it can succeed.
TRANSIENT_STATUSES = frozenset({"crashed", "timeout", "corrupt"})

# Terminal scenario outcomes that count as failures (what
# ``campaign run --retry-failed`` re-executes).
FAILURE_OUTCOMES = frozenset({"failed", "timeout", "quarantined"})


# ----------------------------------------------------------------------
# Scenario execution (shared by the in-process and worker paths)
# ----------------------------------------------------------------------

# Params key marking a batched unit of work: its value is the list of
# member scenarios' param dicts, executed in one ``run_batch`` call.
BATCH_PARAMS_KEY = "__batch__"

# Result key the batched execution path returns: the list of member
# result dicts, in the same order as the ``__batch__`` params list.
BATCH_RESULTS_KEY = "__batch_results__"


def default_execute(
    experiment: str, params: Mapping[str, Any], attempt: int = 1
) -> Tuple[Optional[dict], Optional[str], float]:
    """Run one scenario (or one batched unit) against the registry.

    Returns ``(result_dict, error_traceback, elapsed)``.  ``attempt``
    is accepted (the executor passes it for test fixtures) but ignored:
    drivers must never see the attempt number, or retried results
    would diverge from first-try ones.  Fault-injection drivers
    intentionally overflow floats, so RuntimeWarnings are silenced here
    exactly as the benchmark harness does.

    When ``params`` carries :data:`BATCH_PARAMS_KEY` (a list of member
    param dicts), the driver's ``run_batch`` executes every member in
    lockstep and the result dict holds their serialized results under
    :data:`BATCH_RESULTS_KEY`, in member order.  The whole unit shares
    one fate: a raising batch fails (and is retried) as one task.
    """
    from repro.campaign.registry import default_registry

    start = time.perf_counter()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            driver = default_registry().get(experiment)
            members = params.get(BATCH_PARAMS_KEY)
            if members is not None:
                if driver.run_batch is None:
                    raise TypeError(
                        f"{driver.experiment} has no run_batch; the runner "
                        "must not dispatch batched units to it"
                    )
                results = driver.run_batch([dict(p) for p in members])
                payload = {BATCH_RESULTS_KEY: [r.to_dict() for r in results]}
                return payload, None, time.perf_counter() - start
            result = driver.run(**params)
        return result.to_dict(), None, time.perf_counter() - start
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - start


def payload_checksum(payload: Any) -> str:
    """SHA-256 digest (16 hex chars) of a result payload's canonical JSON.

    Workers stamp their result with this before it crosses the process
    boundary; the supervisor recomputes it on receipt, and a mismatch
    is classified as a transient ``corrupt`` attempt -- the same
    detect-then-recover move the paper's skeptical outer solvers apply
    to their inner results.
    """
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()[:16]


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic attempt budget with exponential backoff.

    Attributes
    ----------
    max_attempts:
        Total attempts a scenario may consume (first try included).
    backoff:
        Delay in seconds before the second attempt; attempt ``n`` waits
        ``backoff * backoff_factor**(n - 2)``.  Deterministic -- no
        jitter -- so campaign wall-time under chaos is reproducible.
    backoff_factor:
        Exponential growth factor of the backoff.
    retry_errors:
        Whether *poison* attempts (driver exceptions) are retried too.
        Off by default: a deterministic driver raises identically every
        time, so retrying wastes the budget.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    retry_errors: bool = False

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be >= 0 and backoff_factor >= 1")

    def classify(self, status: str) -> str:
        """``"transient"`` (environment failed) or ``"poison"`` (scenario did)."""
        return "transient" if status in TRANSIENT_STATUSES else "poison"

    def delay(self, attempt: int) -> float:
        """Backoff in seconds before ``attempt`` (1-based; first is free)."""
        if attempt <= 1:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 2)

    def should_retry(self, status: str, attempts_used: int) -> bool:
        """Whether a scenario gets another attempt after ``status``."""
        if attempts_used >= self.max_attempts:
            return False
        if self.classify(status) == "transient":
            return True
        return self.retry_errors

    def terminal_outcome(self, status: str) -> str:
        """Terminal scenario outcome once retries are exhausted."""
        if status == "timeout":
            return "timeout"
        if status in TRANSIENT_STATUSES:
            return "quarantined"
        return "failed"


# ----------------------------------------------------------------------
# Failure ledger
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttemptRecord:
    """One executed attempt, as persisted in the failure ledger.

    ``status`` is what happened to *this attempt*: ``"ok"``,
    ``"error"`` (driver raised; ``error`` holds the traceback),
    ``"crashed"`` (worker died), ``"timeout"`` (deadline exceeded;
    worker killed) or ``"corrupt"`` (result checksum mismatch).

    ``outcome`` is set only on a scenario's final attempt:
    ``"completed"``, ``"failed"``, ``"timeout"`` or ``"quarantined"``.
    Records with ``outcome is None`` were retried.
    """

    key: str
    experiment: str
    attempt: int
    status: str
    outcome: Optional[str] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    worker: Optional[int] = None
    wall_time: float = 0.0

    def to_json(self) -> str:
        data = {
            "key": self.key,
            "experiment": self.experiment,
            "attempt": self.attempt,
            "status": self.status,
            "elapsed": self.elapsed,
            "wall_time": self.wall_time,
        }
        if self.outcome is not None:
            data["outcome"] = self.outcome
        if self.error is not None:
            data["error"] = self.error
        if self.worker is not None:
            data["worker"] = self.worker
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "AttemptRecord":
        data = json.loads(line)
        return cls(
            key=data["key"],
            experiment=data["experiment"],
            attempt=int(data["attempt"]),
            status=data["status"],
            outcome=data.get("outcome"),
            error=data.get("error"),
            elapsed=float(data.get("elapsed", 0.0)),
            worker=data.get("worker"),
            wall_time=float(data.get("wall_time", 0.0)),
        )


class FailureLedger:
    """Crash-consistent JSONL journal of every executed attempt.

    One :class:`AttemptRecord` per line, appended (and flushed) as each
    attempt concludes, so a killed campaign leaves a valid ledger
    behind.  The file is created lazily on the first record.  Loading
    tolerates a partial trailing line exactly like the result store.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._records: List[AttemptRecord] = []
        self._load()

    @staticmethod
    def path_for(store_path: str) -> str:
        """The ledger sidecar path for a result-store path.

        ``campaign_results.jsonl`` -> ``campaign_results.ledger.jsonl``.
        """
        base = str(store_path)
        if base.endswith(".jsonl"):
            base = base[: -len(".jsonl")]
        return base + ".ledger.jsonl"

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    self._records.append(AttemptRecord.from_json(line))
                except (json.JSONDecodeError, KeyError, ValueError):
                    # Partial trailing line from an interrupted run.
                    continue

    # ------------------------------------------------------------------
    def record(self, record: AttemptRecord) -> AttemptRecord:
        """Append one attempt to the journal (flushed before return)."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
            handle.flush()
        self._records.append(record)
        return record

    def records(self) -> List[AttemptRecord]:
        """All attempts, in journal (chronological) order."""
        return list(self._records)

    def history(self) -> Dict[str, List[AttemptRecord]]:
        """Attempts grouped per scenario key, in journal order."""
        grouped: Dict[str, List[AttemptRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.key, []).append(record)
        return grouped

    def outcomes(self) -> Dict[str, AttemptRecord]:
        """The latest terminal record per key (``outcome`` set)."""
        latest: Dict[str, AttemptRecord] = {}
        for record in self._records:
            if record.outcome is not None:
                latest[record.key] = record
        return latest

    def failed_keys(self) -> List[str]:
        """Keys whose latest terminal outcome is a failure.

        A later run that completes a previously failed key appends a
        ``"completed"`` record, which clears it from this set -- the
        ledger is append-only history, never rewritten.
        """
        return [
            key
            for key, record in self.outcomes().items()
            if record.outcome in FAILURE_OUTCOMES
        ]

    def mark_completed(self, key: str, experiment: str) -> AttemptRecord:
        """Reconcile a key the result store holds as completed.

        Appends a zero-attempt ``"completed"`` record so the key leaves
        :meth:`failed_keys`.  The runner calls this when it finds a
        stored result for a key whose latest ledger outcome is still a
        failure -- e.g. a scenario quarantined in one run whose batch
        sibling (or a later solo run journaled elsewhere) completed it:
        the store is authoritative for results, and the ledger must not
        keep reporting a completed scenario as failed.
        """
        return self.record(
            AttemptRecord(
                key=key,
                experiment=experiment,
                attempt=0,
                status="reconciled",
                outcome="completed",
                wall_time=time.time(),
            )
        )

    def __len__(self) -> int:
        return len(self._records)


# ----------------------------------------------------------------------
# Chaos specification
# ----------------------------------------------------------------------
CHAOS_KINDS = ("none", "worker_crash", "worker_hang", "result_corrupt")

# Per-kind parameter surface (every kind takes p and attempts).
_CHAOS_PARAMS = {
    "none": frozenset(),
    "worker_crash": frozenset({"p", "attempts"}),
    "worker_hang": frozenset({"p", "attempts", "seconds"}),
    "result_corrupt": frozenset({"p", "attempts"}),
}

# Exit code of a chaos-crashed worker: distinguishable from SIGKILL
# (-9, the supervisor's own timeout kill) in the worker's exitcode.
CHAOS_EXIT_CODE = 83


def _chaos_draw(chaos_seed: int, key: str, attempt: int, kind: str) -> float:
    """Deterministic uniform draw in [0, 1) for one injection decision.

    A pure function of its arguments (SHA-256, no shared RNG state),
    so a chaos campaign replays identically under any worker count or
    completion order, and each retry sees an independent draw.
    """
    digest = hashlib.sha256(
        f"chaos:{chaos_seed}:{key}:{attempt}:{kind}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


@dataclass(frozen=True)
class ChaosFault:
    """One chaos fault: kind plus parameters.

    Parameters (all kinds): ``p`` -- injection probability per attempt
    (default 1.0); ``attempts`` -- inject only on attempts ``<= N``
    (handy for tests that want "fail exactly the first k tries").
    ``worker_hang`` additionally takes ``seconds`` (default 3600.0),
    which must exceed the supervisor timeout to be observed as a hang.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        kind = self.kind.lower()
        if kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r} (known: {list(CHAOS_KINDS)})"
            )
        allowed = _CHAOS_PARAMS[kind]
        unknown = sorted(set(self.params) - allowed)
        if unknown:
            raise ValueError(
                f"chaos kind {kind!r} does not take parameters {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        params = dict(self.params)
        p = params.get("p", 1.0)
        if not 0.0 <= float(p) <= 1.0:
            raise ValueError(f"chaos probability p={p!r} outside [0, 1]")
        if "attempts" in params and int(params["attempts"]) < 1:
            raise ValueError("chaos 'attempts' must be >= 1")
        if "seconds" in params and float(params["seconds"]) <= 0:
            raise ValueError("chaos 'seconds' must be > 0")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "params", params)

    @property
    def p(self) -> float:
        return float(self.params.get("p", 1.0))

    def hits(self, chaos_seed: int, key: str, attempt: int) -> bool:
        """Whether this fault fires on ``attempt`` of scenario ``key``."""
        limit = self.params.get("attempts")
        if limit is not None and attempt > int(limit):
            return False
        if self.p >= 1.0:
            return True
        return _chaos_draw(chaos_seed, key, attempt, self.kind) < self.p

    def to_string(self) -> str:
        return format_kind_params(self.kind, self.params)


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative fault injection for the runner's own workers.

    Reuses the reliability spec-string grammar: ``"worker_crash:p=0.1"``,
    ``"worker_hang:p=0.05,seconds=120"``, ``"result_corrupt:p=0.01"``,
    composed with ``+``.  ``"none"`` is the identity spec.
    """

    faults: Tuple[ChaosFault, ...] = ()

    def __post_init__(self):
        faults = tuple(
            f for f in self.faults if f.kind != "none"
        )
        object.__setattr__(self, "faults", faults)

    # -- parsing / serialization ---------------------------------------
    @classmethod
    def parse(cls, value: Union[str, Mapping, "ChaosSpec", None]) -> "ChaosSpec":
        """Coerce a string, dict, ChaosSpec or None into a ChaosSpec."""
        if value is None:
            return cls(())
        if isinstance(value, ChaosSpec):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, str):
            parts = split_composed(value, "chaos spec")
            return cls(
                tuple(
                    ChaosFault(*parse_kind_params(part, "chaos spec"))
                    for part in parts
                )
            )
        raise TypeError(
            f"cannot parse a chaos spec from {type(value).__name__}"
        )

    def to_string(self) -> str:
        if not self.faults:
            return "none"
        return "+".join(fault.to_string() for fault in self.faults)

    def to_dict(self) -> dict:
        return {
            "faults": [
                {"kind": f.kind, "params": dict(f.params)} for f in self.faults
            ]
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChaosSpec":
        return cls(
            tuple(
                ChaosFault(entry["kind"], entry.get("params", {}))
                for entry in data.get("faults", ())
            )
        )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __str__(self) -> str:
        return self.to_string()

    # -- injection (runs inside the worker) ----------------------------
    def pre_run(self, chaos_seed: int, key: str, attempt: int) -> None:
        """Crash or hang the calling worker, per the injection draws."""
        for fault in self.faults:
            if fault.kind == "worker_crash" and fault.hits(chaos_seed, key, attempt):
                os._exit(CHAOS_EXIT_CODE)
            if fault.kind == "worker_hang" and fault.hits(chaos_seed, key, attempt):
                time.sleep(float(fault.params.get("seconds", 3600.0)))

    def corrupt_result(
        self, result: dict, chaos_seed: int, key: str, attempt: int
    ) -> dict:
        """Corrupt a result payload *after* it was checksummed."""
        for fault in self.faults:
            if fault.kind == "result_corrupt" and fault.hits(chaos_seed, key, attempt):
                corrupted = dict(result)
                corrupted["__chaos_corrupted__"] = attempt
                return corrupted
        return result


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    supervisor_conn,
    execute: Callable,
    chaos_dict: Optional[dict],
    chaos_seed: int,
) -> None:
    """Long-lived worker loop: recv a task on the pipe, send the result back.

    Chaos (when configured) fires *inside* the worker: crashes and
    hangs happen before the driver runs, corruption after the honest
    checksum was computed -- so the supervisor's detection paths are
    exercised end to end, not simulated.

    ``Connection.send`` writes synchronously from this thread -- there
    is no feeder thread and no lock shared with sibling workers, so
    however this process dies (``os._exit``, SIGKILL), the only IPC
    state it can take down is its own pipe.
    """
    if supervisor_conn is not None:
        # Fork start copies the supervisor's end of the pipe into this
        # process; close it so EOF propagates when the supervisor drops
        # its end (and vice versa).
        supervisor_conn.close()
    chaos = ChaosSpec.from_dict(chaos_dict) if chaos_dict else None
    pid = os.getpid()
    while True:
        try:
            # The worker's whole job is to sleep until the supervisor
            # feeds it; an unbounded read of its private pipe is the
            # design, and EOF (supervisor gone) is its shutdown signal.
            task = conn.recv()  # repro: allow(process-safety)
        except (EOFError, OSError):
            return
        if task is None:
            return
        slot, key, attempt, experiment, params = task
        if chaos is not None:
            chaos.pre_run(chaos_seed, key, attempt)
        result, error, elapsed = execute(experiment, params, attempt)
        checksum = payload_checksum(result) if result is not None else None
        if chaos is not None and result is not None:
            result = chaos.corrupt_result(result, chaos_seed, key, attempt)
        try:
            conn.send((slot, attempt, result, error, elapsed, checksum, pid))
        except (BrokenPipeError, OSError):
            return


class _WorkerHandle:
    """One supervised worker: its process plus its private duplex pipe."""

    def __init__(
        self,
        worker_id: int,
        context,
        execute: Callable,
        chaos: Optional[ChaosSpec],
        chaos_seed: int,
    ):
        self.worker_id = worker_id
        self.conn, worker_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(
                worker_conn,
                self.conn,
                execute,
                chaos.to_dict() if chaos else None,
                chaos_seed,
            ),
            daemon=True,
            name=f"campaign-worker-{worker_id}",
        )
        self.process.start()
        # The supervisor's copy of the worker's end: close it so the
        # pipe reads EOF once the worker (its sole writer) is gone.
        worker_conn.close()

    def submit(self, task: tuple) -> None:
        """Send a task; raises OSError if the worker is already gone."""
        self.conn.send(task)

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop (SIGKILL) and reap; used on timeouts."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.conn.close()

    def stop(self, grace: float = 2.0) -> None:
        """Cooperative shutdown; escalates to kill after ``grace``."""
        try:
            self.conn.send(None)
        except (ValueError, OSError):
            pass
        self.process.join(grace)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.conn.close()

    def reap(self) -> None:
        """Join a worker already observed dead (crash path)."""
        self.process.join()
        self.conn.close()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionResult:
    """Terminal state of one supervised task.

    ``status`` is ``"completed"``, ``"failed"`` (poison error),
    ``"timeout"`` (deadline exceeded on the final attempt) or
    ``"quarantined"`` (transient-failure budget exhausted).
    ``attempts`` counts every try, ``history`` their per-attempt
    statuses in order (e.g. ``("crashed", "ok")``).
    """

    key: str
    experiment: str
    status: str
    result: Optional[dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    attempts: int = 1
    history: Tuple[str, ...] = ()


@dataclass
class _TaskState:
    slot: int
    key: str
    experiment: str
    params: dict
    attempts: int = 0
    ready_at: float = 0.0
    history: List[str] = field(default_factory=list)


class SupervisedExecutor:
    """Reliable outer loop over unreliable worker processes.

    Parameters
    ----------
    workers:
        Worker process count (capped at the task count per run).
    timeout:
        Per-scenario wall-clock budget in seconds; ``None`` disables
        deadlines.  An expired worker is SIGKILLed and respawned; the
        attempt is classified ``timeout``.
    retry:
        :class:`RetryPolicy`; defaults to 3 attempts with a 50 ms
        doubling backoff.
    chaos:
        Optional :class:`ChaosSpec` (or spec string/dict) injected into
        the workers themselves.
    chaos_seed:
        Root of the chaos injection draws (pure-function, see
        :func:`_chaos_draw`).
    ledger:
        Optional :class:`FailureLedger`; every attempt is journaled.
    execute:
        Module-level callable ``(experiment, params, attempt) ->
        (result_dict, error, elapsed)`` run inside the workers.
        Defaults to :func:`default_execute` (the experiment registry);
        tests substitute crashing/hanging fixtures.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Union[ChaosSpec, str, Mapping, None] = None,
        chaos_seed: int = 0,
        ledger: Optional[FailureLedger] = None,
        execute: Optional[Callable] = None,
        poll_interval: float = 0.05,
        mp_context=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.workers = int(workers)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = ChaosSpec.parse(chaos) if chaos is not None else ChaosSpec(())
        self.chaos_seed = int(chaos_seed)
        self.ledger = ledger
        self.execute = execute if execute is not None else default_execute
        self.poll_interval = float(poll_interval)
        import multiprocessing

        self._context = mp_context or multiprocessing.get_context()

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[Tuple[str, str, Mapping[str, Any]]],
        completed: Optional[Callable[[int, ExecutionResult], None]] = None,
    ) -> List[ExecutionResult]:
        """Drive every ``(key, experiment, params)`` task to a terminal state.

        Results are returned in input order; ``completed(slot, result)``
        fires as each task concludes (in completion order).
        """
        states = [
            _TaskState(slot, key, experiment, dict(params))
            for slot, (key, experiment, params) in enumerate(tasks)
        ]
        results: List[Optional[ExecutionResult]] = [None] * len(states)
        if not states:
            return []

        worker_count = min(self.workers, len(states))
        self._next_worker_id = 0
        workers: Dict[int, _WorkerHandle] = {}
        for _ in range(worker_count):
            handle = self._spawn()
            workers[handle.worker_id] = handle
        idle: List[int] = sorted(workers)
        pending: List[_TaskState] = list(states)
        inflight: Dict[int, Tuple[_TaskState, Optional[float]]] = {}

        def conclude(state: _TaskState, status: str, *, error=None,
                     elapsed=0.0, result=None, worker_pid=None) -> None:
            state.history.append(status)
            retrying = status != "ok" and self.retry.should_retry(
                status, state.attempts
            )
            outcome: Optional[str] = None
            if status == "ok":
                outcome = "completed"
            elif not retrying:
                outcome = self.retry.terminal_outcome(status)
            self._journal(state, status, outcome, error, elapsed, worker_pid)
            if retrying:
                state.ready_at = (
                    time.monotonic() + self.retry.delay(state.attempts + 1)
                )
                pending.append(state)
                return
            final = ExecutionResult(
                key=state.key,
                experiment=state.experiment,
                status=outcome,
                result=result if status == "ok" else None,
                error=error,
                elapsed=elapsed,
                attempts=state.attempts,
                history=tuple(state.history),
            )
            results[state.slot] = final
            if completed is not None:
                completed(state.slot, final)

        def reclaim_crashed(worker_id: int) -> None:
            """A worker died mid-scenario: reap, respawn, retry its task."""
            entry = inflight.pop(worker_id, None)
            if entry is None:
                return
            state, _ = entry
            handle = workers.pop(worker_id)
            pid = handle.process.pid
            handle.reap()
            exitcode = handle.process.exitcode
            replacement = self._spawn()
            workers[replacement.worker_id] = replacement
            idle.append(replacement.worker_id)
            conclude(state, "crashed", worker_pid=pid,
                     error=f"worker died with exit code {exitcode} "
                           "while running this scenario")

        try:
            while pending or inflight:
                now = time.monotonic()

                # Dispatch every ready task to an idle worker.
                while idle and pending:
                    ready = [s for s in pending if s.ready_at <= now]
                    if not ready:
                        break
                    state = min(ready, key=lambda s: (s.ready_at, s.slot))
                    pending.remove(state)
                    worker_id = idle.pop(0)
                    state.attempts += 1
                    try:
                        workers[worker_id].submit(
                            (state.slot, state.key, state.attempts,
                             state.experiment, state.params)
                        )
                    except OSError:
                        # Worker died between results; the liveness
                        # pass below reclaims the task as a crash.
                        pass
                    deadline = (
                        now + self.timeout if self.timeout is not None else None
                    )
                    inflight[worker_id] = (state, deadline)

                # How long we may block: next deadline, next backoff
                # expiry, or the liveness poll interval.
                wait = self.poll_interval
                for _, deadline in inflight.values():
                    if deadline is not None:
                        wait = min(wait, deadline - now)
                if idle:
                    for state in pending:
                        wait = min(wait, state.ready_at - now)
                wait = max(wait, 0.005)

                # Drain results: multiplex every in-flight worker's
                # pipe.  A severed pipe (EOF) means its sole writer is
                # gone -- the worker died mid-scenario.
                inflight_conns = {
                    workers[worker_id].conn: worker_id
                    for worker_id in inflight
                }
                if inflight_conns:
                    ready_conns = _wait_for_connections(
                        list(inflight_conns), timeout=wait
                    )
                else:
                    time.sleep(wait)
                    ready_conns = []
                for conn in ready_conns:
                    worker_id = inflight_conns[conn]
                    try:
                        # Reads only pipes _wait_for_connections just
                        # reported ready, so this never blocks.
                        message = conn.recv()  # repro: allow(process-safety)
                    except (EOFError, OSError):
                        reclaim_crashed(worker_id)
                        continue
                    entry = inflight.pop(worker_id, None)
                    if entry is None:
                        continue
                    slot, attempt, result, error, elapsed, checksum, pid = message
                    state, _ = entry
                    idle.append(worker_id)
                    if error is not None:
                        conclude(state, "error", error=error,
                                 elapsed=elapsed, worker_pid=pid)
                    elif checksum != payload_checksum(result):
                        conclude(state, "corrupt", elapsed=elapsed,
                                 worker_pid=pid,
                                 error="result checksum mismatch "
                                       f"(expected {checksum})")
                    else:
                        conclude(state, "ok", result=result,
                                 elapsed=elapsed, worker_pid=pid)

                # Deadlines: kill + respawn expired workers.
                now = time.monotonic()
                for worker_id in list(inflight):
                    state, deadline = inflight[worker_id]
                    if deadline is None or now < deadline:
                        continue
                    del inflight[worker_id]
                    handle = workers.pop(worker_id)
                    pid = handle.process.pid
                    handle.kill()
                    replacement = self._spawn()
                    workers[replacement.worker_id] = replacement
                    idle.append(replacement.worker_id)
                    conclude(state, "timeout", elapsed=self.timeout,
                             worker_pid=pid,
                             error=f"scenario exceeded timeout of "
                                   f"{self.timeout}s; worker killed")

                # Liveness: a dead worker with an in-flight task and
                # nothing readable on its pipe crashed mid-scenario.
                # (Usually the pipe's EOF gets there first and the
                # drain above reclaims it; this is the backstop.)
                for worker_id in list(inflight):
                    handle = workers[worker_id]
                    if handle.is_alive() or handle.conn.poll(0):
                        continue
                    reclaim_crashed(worker_id)
        finally:
            for handle in workers.values():
                handle.stop()

        return list(results)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _spawn(self) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        return _WorkerHandle(
            worker_id,
            self._context,
            self.execute,
            self.chaos if self.chaos else None,
            self.chaos_seed,
        )

    def _journal(
        self,
        state: _TaskState,
        status: str,
        outcome: Optional[str],
        error: Optional[str],
        elapsed: float,
        worker_pid: Optional[int],
    ) -> None:
        if self.ledger is None:
            return
        self.ledger.record(
            AttemptRecord(
                key=state.key,
                experiment=state.experiment,
                attempt=state.attempts,
                status=status,
                outcome=outcome,
                error=error,
                elapsed=float(elapsed),
                worker=worker_pid,
                wall_time=time.time(),
            )
        )
