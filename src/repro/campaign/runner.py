"""Campaign execution: sequential or multiprocessing, memoized, seeded.

The :class:`CampaignRunner` takes a list of
:class:`~repro.campaign.spec.Scenario` and

* *resolves* each scenario -- validates its parameters against the
  driver signature and, when the driver accepts a ``seed`` the scenario
  did not pin, injects a deterministic per-scenario seed derived from
  the campaign base seed and the scenario key (so the randomness a
  scenario sees never depends on execution order or worker count);
* *memoizes* against the result store -- scenarios whose resolved key
  is already stored are skipped, which makes re-running a completed
  campaign a no-op;
* *executes* the rest, either in-process or on a ``multiprocessing``
  pool, and appends each result to the store as it arrives.

Workers receive only picklable payloads (experiment id + params) and
return plain dicts, so the pool works under both fork and spawn start
methods.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.campaign.registry import ExperimentRegistry, default_registry
from repro.campaign.spec import Scenario
from repro.campaign.store import ResultStore
from repro.experiments.common import ExperimentResult

# The per-scenario seed derivation is shared with the reliability
# layer (repro.reliability.seeding), so fault models built from a
# scenario seed draw the same streams at every entry point.
from repro.reliability.seeding import derive_seed

__all__ = ["CampaignRunner", "ScenarioOutcome", "derive_seed"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """What happened to one scenario during a campaign run.

    ``status`` is ``"completed"`` (executed this run), ``"cached"``
    (already in the store; skipped), or ``"failed"`` (driver raised;
    ``error`` holds the traceback).  ``result`` is the serialized
    :class:`ExperimentResult` dict for completed/cached scenarios.
    """

    scenario: Scenario
    key: str
    status: str
    result: Optional[dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0

    def experiment_result(self) -> Optional[ExperimentResult]:
        return ExperimentResult.from_dict(self.result) if self.result else None


def _execute_payload(payload: Tuple[str, dict]) -> Tuple[Optional[dict], Optional[str], float]:
    """Run one scenario in a worker; returns (result_dict, error, elapsed).

    Module-level so it pickles under every multiprocessing start
    method.  Fault-injection drivers intentionally overflow floats, so
    RuntimeWarnings are silenced here exactly as the benchmark harness
    does.
    """
    experiment, params = payload
    registry = default_registry()
    start = time.perf_counter()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = registry.get(experiment).run(**params)
        return result.to_dict(), None, time.perf_counter() - start
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - start


def _execute_indexed(indexed: Tuple[int, Tuple[str, dict]]):
    """Pool adapter: carry the submission index through imap_unordered."""
    index, payload = indexed
    return (index, *_execute_payload(payload))


class CampaignRunner:
    """Execute scenarios against a registry, store and worker pool.

    Parameters
    ----------
    store:
        Result store for memoization and persistence; ``None`` disables
        both (every scenario always runs).
    workers:
        ``1`` executes in-process; ``> 1`` uses a
        ``multiprocessing.Pool`` of that size.
    base_seed:
        Root of the per-scenario seed derivation.
    registry:
        Defaults to the auto-discovered experiment registry.
    progress:
        Optional callback invoked with each :class:`ScenarioOutcome`
        as it is produced (the CLI uses this for line-per-scenario
        output).
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        workers: int = 1,
        base_seed: int = 2013,
        registry: Optional[ExperimentRegistry] = None,
        progress: Optional[Callable[[ScenarioOutcome], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = int(workers)
        self.base_seed = int(base_seed)
        self.registry = registry or default_registry()
        self.progress = progress

    # ------------------------------------------------------------------
    def resolve(self, scenario: Scenario) -> Scenario:
        """Validate a scenario and pin its per-scenario seed.

        The seed is derived from the key of the *unseeded* scenario, so
        the resolved scenario (and therefore its store key) is a pure
        function of the campaign base seed and the declared overrides.
        """
        driver = self.registry.get(scenario.experiment)
        driver.validate_params(scenario.params)
        if driver.accepts("seed") and "seed" not in scenario.params:
            return scenario.with_params(
                seed=derive_seed(self.base_seed, scenario.key)
            )
        return scenario

    # ------------------------------------------------------------------
    def run(self, scenarios: Sequence[Scenario]) -> List[ScenarioOutcome]:
        """Execute ``scenarios``; returns outcomes in input order."""
        resolved = [self.resolve(s) for s in scenarios]
        outcomes: List[ScenarioOutcome] = [None] * len(resolved)  # type: ignore

        pending: List[Tuple[int, Scenario]] = []
        for index, scenario in enumerate(resolved):
            key = scenario.key
            record = self.store.get(key) if self.store is not None else None
            if record is not None:
                outcomes[index] = ScenarioOutcome(
                    scenario=scenario, key=key, status="cached",
                    result=record.result, elapsed=record.elapsed,
                )
                self._report(outcomes[index])
            else:
                pending.append((index, scenario))

        payloads = [(s.experiment, dict(s.params)) for _, s in pending]

        def finish(slot: int, result, error, elapsed) -> None:
            # Called as each scenario completes, so the store grows
            # incrementally: killing a long campaign loses only the
            # scenarios still in flight, and the re-run resumes from
            # everything already appended.
            index, scenario = pending[slot]
            key = scenario.key
            if error is not None:
                outcome = ScenarioOutcome(
                    scenario=scenario, key=key, status="failed",
                    error=error, elapsed=elapsed,
                )
            else:
                if self.store is not None:
                    self.store.append(
                        key,
                        experiment=scenario.experiment,
                        tag=scenario.tag,
                        params=scenario.params,
                        result=result,
                        elapsed=elapsed,
                    )
                outcome = ScenarioOutcome(
                    scenario=scenario, key=key, status="completed",
                    result=result, elapsed=elapsed,
                )
            outcomes[index] = outcome
            self._report(outcome)

        if self.workers > 1 and len(payloads) > 1:
            with multiprocessing.Pool(processes=self.workers) as pool:
                for slot, result, error, elapsed in pool.imap_unordered(
                    _execute_indexed, list(enumerate(payloads))
                ):
                    finish(slot, result, error, elapsed)
        else:
            for slot, payload in enumerate(payloads):
                finish(slot, *_execute_payload(payload))
        return outcomes

    # ------------------------------------------------------------------
    def _report(self, outcome: ScenarioOutcome) -> None:
        if self.progress is not None:
            self.progress(outcome)
