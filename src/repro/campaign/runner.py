"""Campaign execution: supervised, memoized, seeded, journaled.

The :class:`CampaignRunner` takes a list of
:class:`~repro.campaign.spec.Scenario` and

* *resolves* each scenario -- validates its parameters against the
  driver signature and, when the driver accepts a ``seed`` the scenario
  did not pin, injects a deterministic per-scenario seed derived from
  the campaign base seed and the scenario key (so the randomness a
  scenario sees never depends on execution order, worker count, or
  which attempt finally succeeds);
* *memoizes* against the result store -- scenarios whose resolved key
  is already stored are skipped, which makes re-running a completed
  campaign a no-op;
* *executes* the rest, either in-process or on the supervised
  multiprocessing executor (:mod:`repro.campaign.executor`), appending
  each success to the store as it arrives;
* *journals* every attempt -- success or failure -- to the
  :class:`~repro.campaign.executor.FailureLedger` sidecar next to the
  store, so failures survive the process and ``campaign run
  --retry-failed`` can re-target exactly the failed/quarantined set.

The supervised executor treats workers the way FT-GMRES treats its
inner solver: an unreliable resource whose faults (crashes, hangs,
corrupted results) are detected, bounded by timeouts and attempt
budgets, and recovered from by respawn + retry.  Workers receive only
picklable payloads (experiment id + params) and return plain dicts, so
execution works under both fork and spawn start methods.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.executor import (
    BATCH_PARAMS_KEY,
    BATCH_RESULTS_KEY,
    FAILURE_OUTCOMES,
    AttemptRecord,
    ChaosSpec,
    ExecutionResult,
    FailureLedger,
    RetryPolicy,
    SupervisedExecutor,
    default_execute,
)
from repro.campaign.registry import ExperimentRegistry, default_registry
from repro.campaign.spec import Scenario, canonical_json, scenario_key
from repro.campaign.store import ResultStore
from repro.experiments.common import ExperimentResult

# The per-scenario seed derivation is shared with the reliability
# layer (repro.reliability.seeding), so fault models built from a
# scenario seed draw the same streams at every entry point.
from repro.reliability.seeding import derive_seed

__all__ = [
    "CampaignRunner",
    "ScenarioOutcome",
    "derive_seed",
    "plan_batch_groups",
    "FAILED_STATUSES",
]

# Outcome statuses that mean a scenario did not produce a result.
FAILED_STATUSES = ("failed", "timeout", "quarantined")


@dataclass(frozen=True)
class ScenarioOutcome:
    """What happened to one scenario during a campaign run.

    ``status`` is ``"completed"`` (executed this run), ``"cached"``
    (already in the store; skipped), ``"failed"`` (driver raised;
    ``error`` holds the traceback), ``"timeout"`` (exceeded the
    per-scenario deadline on its final attempt) or ``"quarantined"``
    (transient failures -- worker crashes, timeouts, corrupt results --
    exhausted the retry budget).  ``result`` is the serialized
    :class:`ExperimentResult` dict for completed/cached scenarios, and
    ``attempts`` how many tries the scenario consumed.
    """

    scenario: Scenario
    key: str
    status: str
    result: Optional[dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    attempts: int = 1

    def experiment_result(self) -> Optional[ExperimentResult]:
        return ExperimentResult.from_dict(self.result) if self.result else None


def _execute_payload(payload: Tuple[str, dict]) -> Tuple[Optional[dict], Optional[str], float]:
    """Run one scenario in-process; returns (result_dict, error, elapsed).

    Thin wrapper over :func:`repro.campaign.executor.default_execute`,
    kept for the sequential path and backwards compatibility.
    """
    experiment, params = payload
    return default_execute(experiment, params)


def plan_batch_groups(
    scenarios: Sequence[Scenario],
    registry: Optional[ExperimentRegistry] = None,
    limit: int = 0,
) -> List[List[int]]:
    """Partition scenario indices into batch-compatible dispatch groups.

    Returns index groups covering every scenario exactly once (no
    drops, no duplicates), ordered by first member.  Scenarios share a
    group exactly when their driver exposes ``run_batch`` and they
    agree on every declared parameter except ``seed`` -- the driver
    batch protocol's compatibility contract -- so a group can be
    executed as one lockstep ``run_batch`` call.  Everything else
    (no batch driver, or a unique parameter signature) stays a
    singleton.  ``limit`` caps the group size (``0`` = unbounded);
    oversized groups split into consecutive chunks.
    """
    registry = registry or default_registry()
    groups: List[List[int]] = []
    slots: Dict[str, int] = {}
    for index, scenario in enumerate(scenarios):
        driver = registry.get(scenario.experiment)
        if driver.run_batch is None:
            groups.append([index])
            continue
        signature = canonical_json(
            {
                "experiment": driver.experiment,
                "params": {
                    k: v for k, v in scenario.params.items() if k != "seed"
                },
            }
        )
        at = slots.get(signature)
        if at is None:
            slots[signature] = len(groups)
            groups.append([index])
        else:
            groups[at].append(index)
    if limit and limit > 0:
        groups = [
            group[start : start + limit]
            for group in groups
            for start in range(0, len(group), limit)
        ]
    return groups


class CampaignRunner:
    """Execute scenarios against a registry, store and supervised workers.

    Parameters
    ----------
    store:
        Result store for memoization and persistence; ``None`` disables
        both (every scenario always runs).
    workers:
        ``1`` executes in-process (unless ``timeout`` or ``chaos``
        require a supervised subprocess); ``> 1`` uses a supervised
        pool of long-lived worker processes.
    base_seed:
        Root of the per-scenario seed derivation (and of the chaos
        injection draws).
    registry:
        Defaults to the auto-discovered experiment registry.
    progress:
        Optional callback invoked with each :class:`ScenarioOutcome`
        as it is produced (the CLI uses this for line-per-scenario
        output).
    timeout:
        Per-scenario wall-clock budget in seconds; expired workers are
        killed and respawned, the attempt classified ``timeout``.
        ``None`` (default) disables deadlines.
    retry:
        :class:`~repro.campaign.executor.RetryPolicy`; defaults to
        3 attempts with a 50 ms doubling backoff.
    chaos:
        Optional :class:`~repro.campaign.executor.ChaosSpec` (or spec
        string such as ``"worker_crash:p=0.1"``) injecting faults into
        the runner's own workers -- the chaos harness.
    ledger:
        Failure-ledger wiring: ``None`` (default) journals to the
        store's sidecar (``<store>.ledger.jsonl``) when a store is
        configured; ``False`` disables journaling; a path or
        :class:`~repro.campaign.executor.FailureLedger` overrides the
        location.
    batch:
        Batched dispatch: ``1`` (default) runs scenario-at-a-time;
        any other value groups pending scenarios that share a driver
        ``run_batch`` and a parameter signature (everything equal
        except ``seed``) into lockstep units of at most ``batch``
        members (``0`` = unbounded), each executed as *one* supervised
        task -- one retry budget, one chaos draw stream, one timeout.
        Results are bit-identical to the sequential path (the driver
        batch protocol guarantees it); the ledger records one terminal
        outcome per member scenario.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        workers: int = 1,
        base_seed: int = 2013,
        registry: Optional[ExperimentRegistry] = None,
        progress: Optional[Callable[[ScenarioOutcome], None]] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Union[ChaosSpec, str, Mapping, None] = None,
        ledger: Union[FailureLedger, str, bool, None] = None,
        batch: int = 1,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch < 0:
            raise ValueError("batch must be >= 0 (0 = unbounded group size)")
        self.store = store
        self.workers = int(workers)
        self.base_seed = int(base_seed)
        self.registry = registry or default_registry()
        self.progress = progress
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = ChaosSpec.parse(chaos) if chaos is not None else ChaosSpec(())
        self.ledger = self._resolve_ledger(ledger)
        self.batch = int(batch)

    def _resolve_ledger(
        self, ledger: Union[FailureLedger, str, bool, None]
    ) -> Optional[FailureLedger]:
        if ledger is False:
            return None
        if isinstance(ledger, FailureLedger):
            return ledger
        if isinstance(ledger, str):
            return FailureLedger(ledger)
        if self.store is not None:
            return FailureLedger(FailureLedger.path_for(self.store.path))
        return None

    # ------------------------------------------------------------------
    def resolve(self, scenario: Scenario) -> Scenario:
        """Validate a scenario and pin its per-scenario seed.

        The seed is derived from the key of the *unseeded* scenario, so
        the resolved scenario (and therefore its store key) is a pure
        function of the campaign base seed and the declared overrides.
        Resolution happens once, before dispatch -- attempt 3 on a
        respawned worker sees byte-identical parameters (seed included)
        to attempt 1, which is what makes retried results bit-identical
        to first-try ones.
        """
        driver = self.registry.get(scenario.experiment)
        driver.validate_params(scenario.params)
        if driver.accepts("seed") and "seed" not in scenario.params:
            return scenario.with_params(
                seed=derive_seed(self.base_seed, scenario.key)
            )
        return scenario

    # ------------------------------------------------------------------
    def run(self, scenarios: Sequence[Scenario]) -> List[ScenarioOutcome]:
        """Execute ``scenarios``; returns outcomes in input order."""
        resolved = [self.resolve(s) for s in scenarios]
        outcomes: List[ScenarioOutcome] = [None] * len(resolved)  # type: ignore

        failed_in_ledger = (
            set(self.ledger.failed_keys()) if self.ledger is not None else set()
        )
        pending: List[Tuple[int, Scenario]] = []
        for index, scenario in enumerate(resolved):
            key = scenario.key
            record = self.store.get(key) if self.store is not None else None
            if record is not None:
                if key in failed_in_ledger:
                    # Store and ledger disagree: the key has a stored
                    # result (completed in some run the ledger did not
                    # see terminally -- e.g. quarantined here, later
                    # completed alongside its batch siblings) but its
                    # latest ledger outcome is still a failure.  The
                    # store is authoritative for results; reconcile so
                    # failed_keys()/--retry-failed stop reporting it.
                    self.ledger.mark_completed(key, scenario.experiment)
                    failed_in_ledger.discard(key)
                outcomes[index] = ScenarioOutcome(
                    scenario=scenario, key=key, status="cached",
                    result=record.result, elapsed=record.elapsed,
                )
                self._report(outcomes[index])
            else:
                pending.append((index, scenario))

        def finish(slot: int, status: str, result, error, elapsed,
                   attempts: int = 1) -> None:
            # Called as each scenario reaches a terminal state, so the
            # store grows incrementally: killing a long campaign loses
            # only the scenarios still in flight, and the re-run
            # resumes from everything already appended.
            index, scenario = pending[slot]
            key = scenario.key
            if status == "completed":
                if self.store is not None:
                    self.store.append(
                        key,
                        experiment=scenario.experiment,
                        tag=scenario.tag,
                        params=scenario.params,
                        result=result,
                        elapsed=elapsed,
                    )
                outcome = ScenarioOutcome(
                    scenario=scenario, key=key, status="completed",
                    result=result, elapsed=elapsed, attempts=attempts,
                )
            else:
                outcome = ScenarioOutcome(
                    scenario=scenario, key=key, status=status,
                    error=error, elapsed=elapsed, attempts=attempts,
                )
            outcomes[index] = outcome
            self._report(outcome)

        supervised = (
            self.workers > 1 or self.timeout is not None or bool(self.chaos)
        )
        batching = self.batch != 1
        if batching:
            units = plan_batch_groups(
                [s for _, s in pending], self.registry, self.batch
            )
        else:
            units = [[slot] for slot in range(len(pending))]

        def unit_task(unit: List[int]) -> Tuple[str, str, dict]:
            if len(unit) == 1:
                scenario = pending[unit[0]][1]
                return (scenario.key, scenario.experiment, dict(scenario.params))
            members = [pending[slot][1] for slot in unit]
            payload = {BATCH_PARAMS_KEY: [dict(m.params) for m in members]}
            # Content-derived unit key: stable across runs, so chaos
            # draws and retry histories of a batched unit reproduce.
            return (
                scenario_key(members[0].experiment, payload),
                members[0].experiment,
                payload,
            )

        def conclude_unit(unit: List[int], final: ExecutionResult) -> None:
            # Fan one unit's terminal state out to its member
            # scenarios: a completed batch unpacks per-member results
            # (in member order); a failed/timeout/quarantined unit
            # fails every member -- the unit shares one fate, exactly
            # like one scenario under the non-batched runner.
            batched = len(unit) > 1
            members_payload = None
            if batched and final.status == "completed":
                members_payload = (final.result or {}).get(BATCH_RESULTS_KEY)
                if (
                    not isinstance(members_payload, list)
                    or len(members_payload) != len(unit)
                ):
                    got = (
                        len(members_payload)
                        if isinstance(members_payload, list) else "no"
                    )
                    final = ExecutionResult(
                        key=final.key, experiment=final.experiment,
                        status="failed",
                        error=f"batched unit returned a malformed result "
                              f"({got} member results for {len(unit)} "
                              f"scenarios)",
                        elapsed=final.elapsed, attempts=final.attempts,
                        history=final.history,
                    )
            # Wall time is a property of the unit; members report an
            # equal share so campaign-level elapsed sums stay honest.
            share = final.elapsed / len(unit) if batched else final.elapsed
            attempt_status = (
                final.history[-1] if final.history
                else ("ok" if final.status == "completed" else "error")
            )
            for position, slot in enumerate(unit):
                scenario = pending[slot][1]
                if batching:
                    # Batch mode journals terminal outcomes per member
                    # (the executor, which only knows unit keys, runs
                    # ledger-less); per-attempt retry history is a
                    # non-batched-run detail.
                    self._journal_terminal(
                        scenario, attempt_status, final.status,
                        final.error, share, final.attempts,
                    )
                if final.status == "completed":
                    member = (
                        members_payload[position]
                        if members_payload is not None else final.result
                    )
                    finish(slot, "completed", member, None, share,
                           final.attempts)
                else:
                    finish(slot, final.status, None, final.error, share,
                           final.attempts)

        if supervised and pending:
            tasks = [unit_task(unit) for unit in units]
            executor = SupervisedExecutor(
                workers=self.workers,
                timeout=self.timeout,
                retry=self.retry,
                chaos=self.chaos,
                chaos_seed=self.base_seed,
                ledger=None if batching else self.ledger,
            )

            def completed(index: int, final: ExecutionResult) -> None:
                conclude_unit(units[index], final)

            executor.run(tasks, completed=completed)
        elif pending:
            for unit in units:
                key, experiment, params = unit_task(unit)
                result, error, elapsed = default_execute(experiment, params)
                status = "completed" if error is None else "failed"
                if not batching:
                    self._journal_inprocess(
                        pending[unit[0]][1], status, error, elapsed
                    )
                conclude_unit(
                    unit,
                    ExecutionResult(
                        key=key, experiment=experiment, status=status,
                        result=result, error=error, elapsed=elapsed,
                        attempts=1,
                        history=("ok" if error is None else "error",),
                    ),
                )
        return outcomes

    # ------------------------------------------------------------------
    def _journal_inprocess(
        self, scenario: Scenario, status: str, error: Optional[str],
        elapsed: float,
    ) -> None:
        """Journal a single-attempt in-process execution to the ledger."""
        self._journal_terminal(
            scenario, "ok" if status == "completed" else "error",
            status, error, elapsed, 1,
        )

    def _journal_terminal(
        self, scenario: Scenario, status: str, outcome: str,
        error: Optional[str], elapsed: float, attempts: int,
    ) -> None:
        """Journal one scenario's terminal outcome to the ledger."""
        if self.ledger is None:
            return
        self.ledger.record(
            AttemptRecord(
                key=scenario.key,
                experiment=scenario.experiment,
                attempt=int(attempts),
                status=status,
                outcome=outcome,
                error=error,
                elapsed=float(elapsed),
                worker=None,
                wall_time=_time.time(),
            )
        )

    # ------------------------------------------------------------------
    def _report(self, outcome: ScenarioOutcome) -> None:
        if self.progress is not None:
            self.progress(outcome)
