"""Campaign execution: supervised, memoized, seeded, journaled.

The :class:`CampaignRunner` takes a list of
:class:`~repro.campaign.spec.Scenario` and

* *resolves* each scenario -- validates its parameters against the
  driver signature and, when the driver accepts a ``seed`` the scenario
  did not pin, injects a deterministic per-scenario seed derived from
  the campaign base seed and the scenario key (so the randomness a
  scenario sees never depends on execution order, worker count, or
  which attempt finally succeeds);
* *memoizes* against the result store -- scenarios whose resolved key
  is already stored are skipped, which makes re-running a completed
  campaign a no-op;
* *executes* the rest, either in-process or on the supervised
  multiprocessing executor (:mod:`repro.campaign.executor`), appending
  each success to the store as it arrives;
* *journals* every attempt -- success or failure -- to the
  :class:`~repro.campaign.executor.FailureLedger` sidecar next to the
  store, so failures survive the process and ``campaign run
  --retry-failed`` can re-target exactly the failed/quarantined set.

The supervised executor treats workers the way FT-GMRES treats its
inner solver: an unreliable resource whose faults (crashes, hangs,
corrupted results) are detected, bounded by timeouts and attempt
budgets, and recovered from by respawn + retry.  Workers receive only
picklable payloads (experiment id + params) and return plain dicts, so
execution works under both fork and spawn start methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.executor import (
    ChaosSpec,
    ExecutionResult,
    FailureLedger,
    RetryPolicy,
    SupervisedExecutor,
    default_execute,
)
from repro.campaign.registry import ExperimentRegistry, default_registry
from repro.campaign.spec import Scenario
from repro.campaign.store import ResultStore
from repro.experiments.common import ExperimentResult

# The per-scenario seed derivation is shared with the reliability
# layer (repro.reliability.seeding), so fault models built from a
# scenario seed draw the same streams at every entry point.
from repro.reliability.seeding import derive_seed

__all__ = ["CampaignRunner", "ScenarioOutcome", "derive_seed", "FAILED_STATUSES"]

# Outcome statuses that mean a scenario did not produce a result.
FAILED_STATUSES = ("failed", "timeout", "quarantined")


@dataclass(frozen=True)
class ScenarioOutcome:
    """What happened to one scenario during a campaign run.

    ``status`` is ``"completed"`` (executed this run), ``"cached"``
    (already in the store; skipped), ``"failed"`` (driver raised;
    ``error`` holds the traceback), ``"timeout"`` (exceeded the
    per-scenario deadline on its final attempt) or ``"quarantined"``
    (transient failures -- worker crashes, timeouts, corrupt results --
    exhausted the retry budget).  ``result`` is the serialized
    :class:`ExperimentResult` dict for completed/cached scenarios, and
    ``attempts`` how many tries the scenario consumed.
    """

    scenario: Scenario
    key: str
    status: str
    result: Optional[dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    attempts: int = 1

    def experiment_result(self) -> Optional[ExperimentResult]:
        return ExperimentResult.from_dict(self.result) if self.result else None


def _execute_payload(payload: Tuple[str, dict]) -> Tuple[Optional[dict], Optional[str], float]:
    """Run one scenario in-process; returns (result_dict, error, elapsed).

    Thin wrapper over :func:`repro.campaign.executor.default_execute`,
    kept for the sequential path and backwards compatibility.
    """
    experiment, params = payload
    return default_execute(experiment, params)


class CampaignRunner:
    """Execute scenarios against a registry, store and supervised workers.

    Parameters
    ----------
    store:
        Result store for memoization and persistence; ``None`` disables
        both (every scenario always runs).
    workers:
        ``1`` executes in-process (unless ``timeout`` or ``chaos``
        require a supervised subprocess); ``> 1`` uses a supervised
        pool of long-lived worker processes.
    base_seed:
        Root of the per-scenario seed derivation (and of the chaos
        injection draws).
    registry:
        Defaults to the auto-discovered experiment registry.
    progress:
        Optional callback invoked with each :class:`ScenarioOutcome`
        as it is produced (the CLI uses this for line-per-scenario
        output).
    timeout:
        Per-scenario wall-clock budget in seconds; expired workers are
        killed and respawned, the attempt classified ``timeout``.
        ``None`` (default) disables deadlines.
    retry:
        :class:`~repro.campaign.executor.RetryPolicy`; defaults to
        3 attempts with a 50 ms doubling backoff.
    chaos:
        Optional :class:`~repro.campaign.executor.ChaosSpec` (or spec
        string such as ``"worker_crash:p=0.1"``) injecting faults into
        the runner's own workers -- the chaos harness.
    ledger:
        Failure-ledger wiring: ``None`` (default) journals to the
        store's sidecar (``<store>.ledger.jsonl``) when a store is
        configured; ``False`` disables journaling; a path or
        :class:`~repro.campaign.executor.FailureLedger` overrides the
        location.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        workers: int = 1,
        base_seed: int = 2013,
        registry: Optional[ExperimentRegistry] = None,
        progress: Optional[Callable[[ScenarioOutcome], None]] = None,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Union[ChaosSpec, str, Mapping, None] = None,
        ledger: Union[FailureLedger, str, bool, None] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = int(workers)
        self.base_seed = int(base_seed)
        self.registry = registry or default_registry()
        self.progress = progress
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = ChaosSpec.parse(chaos) if chaos is not None else ChaosSpec(())
        self.ledger = self._resolve_ledger(ledger)

    def _resolve_ledger(
        self, ledger: Union[FailureLedger, str, bool, None]
    ) -> Optional[FailureLedger]:
        if ledger is False:
            return None
        if isinstance(ledger, FailureLedger):
            return ledger
        if isinstance(ledger, str):
            return FailureLedger(ledger)
        if self.store is not None:
            return FailureLedger(FailureLedger.path_for(self.store.path))
        return None

    # ------------------------------------------------------------------
    def resolve(self, scenario: Scenario) -> Scenario:
        """Validate a scenario and pin its per-scenario seed.

        The seed is derived from the key of the *unseeded* scenario, so
        the resolved scenario (and therefore its store key) is a pure
        function of the campaign base seed and the declared overrides.
        Resolution happens once, before dispatch -- attempt 3 on a
        respawned worker sees byte-identical parameters (seed included)
        to attempt 1, which is what makes retried results bit-identical
        to first-try ones.
        """
        driver = self.registry.get(scenario.experiment)
        driver.validate_params(scenario.params)
        if driver.accepts("seed") and "seed" not in scenario.params:
            return scenario.with_params(
                seed=derive_seed(self.base_seed, scenario.key)
            )
        return scenario

    # ------------------------------------------------------------------
    def run(self, scenarios: Sequence[Scenario]) -> List[ScenarioOutcome]:
        """Execute ``scenarios``; returns outcomes in input order."""
        resolved = [self.resolve(s) for s in scenarios]
        outcomes: List[ScenarioOutcome] = [None] * len(resolved)  # type: ignore

        pending: List[Tuple[int, Scenario]] = []
        for index, scenario in enumerate(resolved):
            key = scenario.key
            record = self.store.get(key) if self.store is not None else None
            if record is not None:
                outcomes[index] = ScenarioOutcome(
                    scenario=scenario, key=key, status="cached",
                    result=record.result, elapsed=record.elapsed,
                )
                self._report(outcomes[index])
            else:
                pending.append((index, scenario))

        def finish(slot: int, status: str, result, error, elapsed,
                   attempts: int = 1) -> None:
            # Called as each scenario reaches a terminal state, so the
            # store grows incrementally: killing a long campaign loses
            # only the scenarios still in flight, and the re-run
            # resumes from everything already appended.
            index, scenario = pending[slot]
            key = scenario.key
            if status == "completed":
                if self.store is not None:
                    self.store.append(
                        key,
                        experiment=scenario.experiment,
                        tag=scenario.tag,
                        params=scenario.params,
                        result=result,
                        elapsed=elapsed,
                    )
                outcome = ScenarioOutcome(
                    scenario=scenario, key=key, status="completed",
                    result=result, elapsed=elapsed, attempts=attempts,
                )
            else:
                outcome = ScenarioOutcome(
                    scenario=scenario, key=key, status=status,
                    error=error, elapsed=elapsed, attempts=attempts,
                )
            outcomes[index] = outcome
            self._report(outcome)

        supervised = (
            self.workers > 1 or self.timeout is not None or bool(self.chaos)
        )
        if supervised and pending:
            tasks = [
                (s.key, s.experiment, dict(s.params)) for _, s in pending
            ]
            executor = SupervisedExecutor(
                workers=self.workers,
                timeout=self.timeout,
                retry=self.retry,
                chaos=self.chaos,
                chaos_seed=self.base_seed,
                ledger=self.ledger,
            )

            def completed(slot: int, final: ExecutionResult) -> None:
                finish(slot, final.status, final.result, final.error,
                       final.elapsed, final.attempts)

            executor.run(tasks, completed=completed)
        else:
            for slot, (_, scenario) in enumerate(pending):
                result, error, elapsed = _execute_payload(
                    (scenario.experiment, dict(scenario.params))
                )
                status = "completed" if error is None else "failed"
                self._journal_inprocess(scenario, status, error, elapsed)
                finish(slot, status, result, error, elapsed)
        return outcomes

    # ------------------------------------------------------------------
    def _journal_inprocess(
        self, scenario: Scenario, status: str, error: Optional[str],
        elapsed: float,
    ) -> None:
        """Journal a single-attempt in-process execution to the ledger."""
        if self.ledger is None:
            return
        import time as _time

        from repro.campaign.executor import AttemptRecord

        self.ledger.record(
            AttemptRecord(
                key=scenario.key,
                experiment=scenario.experiment,
                attempt=1,
                status="ok" if status == "completed" else "error",
                outcome=status,
                error=error,
                elapsed=float(elapsed),
                worker=None,
                wall_time=_time.time(),
            )
        )

    # ------------------------------------------------------------------
    def _report(self, outcome: ScenarioOutcome) -> None:
        if self.progress is not None:
            self.progress(outcome)
