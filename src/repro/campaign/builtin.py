"""Named built-in campaigns.

Three ship with the toolkit:

* ``smoke`` -- every experiment at its :attr:`ExperimentSpec.smoke`
  configuration plus a couple of one-axis sweeps; finishes in seconds
  and is what ``campaign run --smoke`` and the CI verify script
  execute.
* ``default`` -- a broader grid (what a bare ``campaign run``
  executes): solver x fault-schedule x machine-model slices of the
  scenario space the ROADMAP targets, still sized to finish in well
  under a minute.
* ``solvers`` -- the solver-axis sweep over the
  :mod:`repro.krylov.registry`: every registered solver under every
  generic resilience policy, with and without operator faults
  (experiment E8).
* ``precond`` -- the preconditioner-axis sweep over
  :mod:`repro.precond` (experiment E9): every registered solver x
  preconditioner cell under each fault spec, with the fault placed
  either selectively (only ``M^{-1} v`` unreliable) or on the trusted
  operator -- the paper's selective-reliability claim as a grid.
* ``precision`` -- the precision-axis sweep over
  :mod:`repro.reliability.precision` (experiment E10): every default
  solver x precision x preconditioner cell, with the reduced precision
  placed either selectively (only the inner stage -- the FGMRES inner
  solve or ``M^{-1} v`` -- runs low) or on the whole solve -- the
  selective-precision claim as a grid, with and without faults.
* ``replicas`` -- seed-replica sweeps over the batch-capable drivers
  (E1/E8/E9); identical parameters except ``seed``, so ``--batch``
  groups each sweep into one lockstep batch.  The batch benchmark and
  the verify batch-parity gate run this campaign.

Campaigns are plain lists of scenarios produced by declarative
:class:`~repro.campaign.spec.Sweep` specs, so adding a campaign is
data, not code: extend :data:`_BUILDERS`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.campaign.registry import default_registry
from repro.campaign.spec import Scenario, Sweep

__all__ = ["builtin_campaign", "builtin_campaign_names"]


def _smoke() -> List[Scenario]:
    registry = default_registry()
    scenarios: List[Scenario] = []
    # One scenario per discovered driver at its smoke configuration...
    for driver in registry:
        scenarios.extend(
            Sweep(driver.experiment, base=driver.spec.smoke, tag="smoke").expand()
        )
    # ... plus one-axis sweeps on the cheapest knobs.
    e1 = registry.get("E1").spec.smoke
    e3 = registry.get("E3").spec.smoke
    e7 = registry.get("E7").spec.smoke
    scenarios.extend(
        Sweep("E1", axes={"check_period": (2, 4)}, base=e1, tag="smoke").expand()
    )
    scenarios.extend(
        Sweep(
            "E3", axes={"rows_per_rank": (5_000, 20_000)}, base=e3, tag="smoke"
        ).expand()
    )
    scenarios.extend(
        Sweep("E7", axes={"node_mtbf_years": (1.0,)}, base=e7, tag="smoke").expand()
    )
    return scenarios


def _default() -> List[Scenario]:
    sweeps = [
        # SkP: detection-period ablation on a slightly larger problem.
        Sweep(
            "E1",
            axes={"check_period": (1, 2, 4)},
            base={"grid": 10, "n_trials": 4, "inject_at": 6},
            tag="default",
        ),
        # ABFT: problem-size scaling of detection/correction rates.
        Sweep(
            "E2",
            axes={"sizes": ((8, 16), (16, 32))},
            base={"n_trials": 10},
            tag="default",
        ),
        # RBSP: local-work intensity vs synchronization cost.
        Sweep(
            "E3",
            axes={"rows_per_rank": (5_000, 10_000, 20_000)},
            base={"grid": 10, "rank_counts": (16, 1024, 65536), "iterations": 20},
            tag="default",
        ),
        # LFLR vs CPR: checkpoint-interval sensitivity.
        Sweep(
            "E4",
            axes={"checkpoint_interval": (5, 10)},
            base={"n_ranks": 4, "n_global": 32, "n_steps": 20},
            tag="default",
        ),
        # Coarse recovery: resolution sweep.
        Sweep(
            "E5",
            axes={"n_points": (64, 128)},
            base={"steps_before_failure": 10, "coarsening_factors": (2, 4)},
            tag="default",
        ),
        # SRP: inner-solve budget under faults.
        Sweep(
            "E6",
            axes={"inner_maxiter": (10, 15)},
            base={
                "grid": 10,
                "fault_probabilities": (0.0, 0.02, 0.05),
                "n_trials": 2,
                "outer_maxiter": 25,
            },
            tag="default",
        ),
        # Efficiency models: machine reliability x checkpoint cost grid.
        Sweep(
            "E7",
            axes={
                "node_mtbf_years": (1.0, 5.0),
                "checkpoint_time": (60.0, 300.0),
            },
            tag="default",
        ),
    ]
    scenarios: List[Scenario] = []
    for sweep in sweeps:
        scenarios.extend(sweep.expand())
    return scenarios


def _solvers() -> List[Scenario]:
    # The solver x resilience-policy x fault-spec grid of E8: each
    # scenario runs EVERY solver in the krylov registry, so the solver
    # axis is swept inside the driver while policy and fault model are
    # campaign axes.  The fault axis is declarative -- reliability
    # registry names and compact spec strings, resolved by the driver
    # exactly like solver names -- and its "none"/bit-flip values are
    # legacy-equivalent to the old fault_probability grid.
    return Sweep(
        "E8",
        axes={
            "policy": ("none", "guard", "skeptical"),
            "faults": (
                "none",
                "bitflip:p=0.02,bits=52..62",
                "perturb:p=0.01,scale=1000.0",
            ),
        },
        base={"grid": 8, "seed": 2013},
        tag="solvers",
    ).expand()


def _precond() -> List[Scenario]:
    # The solver x preconditioner x fault x reliability-placement grid
    # of E9: each scenario runs every default solver against every
    # registered preconditioner, so those two axes are swept inside the
    # driver while the fault spec and its placement are campaign axes.
    # target="precond" is the selective-reliability wiring (only
    # M^{-1} v passes through the unreliable domain); target="operator"
    # lands the same fault on data the solvers must trust.
    base = {"grid": 8, "seed": 2013}
    scenarios = Sweep(
        "E9", axes={"faults": ("none",)}, base=base, tag="precond"
    ).expand()
    scenarios.extend(
        Sweep(
            "E9",
            axes={
                "faults": (
                    "bitflip:p=0.05,bits=52..62",
                    "perturb:p=0.02,scale=1000.0",
                ),
                "target": ("precond", "operator"),
            },
            base=base,
            tag="precond",
        ).expand()
    )
    return scenarios


def _precision() -> List[Scenario]:
    # The solver x precision x preconditioner x fault x placement grid
    # of E10: solvers, precisions and preconditioners are swept inside
    # the driver while the placement (inner stage vs whole solve) and
    # the fault spec are campaign axes.  target="inner" is the
    # selective-precision wiring (fp64 outer, low-precision inner);
    # target="outer" pins the whole solve to the low dtype's residual
    # floor -- the claim's control.
    base = {
        "grid": 8,
        "precisions": ("fp64", "fp32", "fp32:storage=fp16"),
        "preconds": ("none", "jacobi"),
        "seed": 2013,
    }
    scenarios = Sweep(
        "E10",
        axes={"target": ("inner", "outer")},
        base=dict(base, faults="none"),
        tag="precision",
    ).expand()
    scenarios.extend(
        Sweep(
            "E10",
            axes={"target": ("inner", "outer")},
            base=dict(base, faults="bitflip:p=0.05,bits=52..62"),
            tag="precision",
        ).expand()
    )
    return scenarios


def _replicas() -> List[Scenario]:
    # Seed-replica sweeps over the batchable drivers (E1/E8/E9): every
    # scenario in a sweep shares all parameters except ``seed``, so
    # ``campaign run --campaign replicas --batch 0`` groups each sweep
    # into a single lockstep batch.  This is the shape batch mode is
    # built for -- Monte-Carlo replication of one configuration -- and
    # what the benchmark harness and the verify batch-parity gate run.
    seeds = tuple(range(101, 117))
    sweeps = [
        Sweep(
            "E1",
            axes={"seed": seeds},
            base={"grid": 8, "n_trials": 2, "inject_at": 4},
            tag="replicas",
        ),
        Sweep(
            "E8",
            axes={"seed": seeds},
            base={
                "grid": 8,
                "solvers": ("gmres", "cg", "sdc_gmres"),
                "faults": "bitflip:p=0.02,bits=52..62",
                "policy": "guard",
            },
            tag="replicas",
        ),
        Sweep(
            "E9",
            axes={"seed": seeds},
            base={
                "grid": 8,
                "solvers": ("gmres", "cg"),
                "preconds": ("none", "jacobi"),
                "faults": "bitflip:p=0.05,bits=52..62",
                "target": "precond",
            },
            tag="replicas",
        ),
    ]
    scenarios: List[Scenario] = []
    for sweep in sweeps:
        scenarios.extend(sweep.expand())
    return scenarios


_BUILDERS: Dict[str, Callable[[], List[Scenario]]] = {
    "smoke": _smoke,
    "default": _default,
    "solvers": _solvers,
    "precond": _precond,
    "precision": _precision,
    "replicas": _replicas,
}


def builtin_campaign_names() -> List[str]:
    return sorted(_BUILDERS)


def builtin_campaign(name: str) -> List[Scenario]:
    """Expand a built-in campaign by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r} (known: {builtin_campaign_names()})"
        ) from None
    return builder()
